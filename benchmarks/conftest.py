"""Shared benchmark infrastructure.

Every ``bench_*.py`` regenerates one of the paper's tables or figures.
Default scales are laptop-sized; set ``REPRO_FULL=1`` for the paper's
400-node scale (slower). Traces are cached per scale so the simulation
cost is paid once per session.
"""

import os

import pytest

from repro.analysis.scenarios import paper_scenario
from repro.sim import Simulator

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))

#: default evaluation network (paper: 400 nodes; scaled default: 100).
FIG6_NODES = 400 if FULL else 100
#: network-scale sweep of Fig. 8 (paper: 100 / 225 / 400).
FIG8_SIZES = (100, 225, 400) if FULL else (49, 100, 169)
#: duration of each simulated run, ms.
DURATION_MS = 240_000.0 if FULL else 120_000.0
#: packets whose bounds are LP-solved in bound benchmarks.
BOUND_SAMPLE = 400 if FULL else 80
#: graph cut sizes of Fig. 10 (paper: 5000-20000). Our constraint graph
#: is sparser than the paper's (FIFO pairs are capped per visit), so
#: constraint locality saturates at much smaller cuts; the scaled sweep
#: brackets that saturation point to expose the same tighter-with-larger
#: shape.
FIG10_CUTS = (5_000, 10_000, 20_000) if FULL else (10, 30, 60, 120, 500)
#: default graph cut for Fig. 6/7/8 bound runs — the paper's 10000 is a
#: fraction of its total unknowns; the scaled default keeps the same
#: proportion on the smaller trace.
DEFAULT_CUT = 10_000 if FULL else 1_500

_TRACE_CACHE: dict = {}


def default_domo_config():
    """Substrate-tuned DomoConfig with the bench-scale graph cut size."""
    from repro.analysis.experiments import substrate_domo_config

    return substrate_domo_config(graph_cut_size=DEFAULT_CUT)


def simulated_trace(num_nodes: int = FIG6_NODES, seed: int = 1,
                    duration_ms: float = DURATION_MS):
    """Simulate (or reuse) the standard scenario at a given scale."""
    key = (num_nodes, seed, duration_ms)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = Simulator(
            paper_scenario(
                num_nodes=num_nodes, seed=seed, duration_ms=duration_ms
            )
        ).run()
    return _TRACE_CACHE[key]


@pytest.fixture(scope="session")
def fig6_trace():
    return simulated_trace()
