"""Ablation: FIFO-constraint handling — SDR vs linearized vs none.

DESIGN.md calls out the choice between the paper's faithful semidefinite
relaxation (Eq. (2)-(4)) and the resolved linearization used by default.
This benchmark compares the three modes on one trace: accuracy and
PC-side cost. Expected: linearized ~ SDR in accuracy at a fraction of the
cost (most pairs resolve), and both beat dropping FIFO entirely.
"""

import numpy as np

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig, DomoReconstructor

#: SDR lifts cost O(n^2) variables per window, so the ablation runs on a
#: small trace with small windows.
ABLATION_NODES = 36
ABLATION_DURATION_MS = 60_000.0


def _run_mode(trace, mode):
    config = DomoConfig(
        fifo_mode=mode,
        target_window_packets=20 if mode == "sdr" else 60,
    )
    estimate = DomoReconstructor(config).estimate(trace)
    errors = []
    for packet in trace.received:
        truth = trace.truth_of(packet.packet_id).node_delays()
        errors.extend(
            abs(a - b)
            for a, b in zip(estimate.delays_of(packet.packet_id), truth)
        )
    return float(np.mean(errors)), estimate.time_per_delay_ms, estimate.stats


def _sweep(trace):
    rows = []
    for mode in ("linearized", "sdr", "none"):
        error, ms_per_delay, _ = _run_mode(trace, mode)
        rows.append([mode, error, ms_per_delay])
    return rows


def test_ablation_fifo_modes(benchmark):
    trace = simulated_trace(
        num_nodes=ABLATION_NODES, duration_ms=ABLATION_DURATION_MS
    )
    rows = benchmark.pedantic(_sweep, args=(trace,), rounds=1, iterations=1)
    print()
    print(format_sweep_table(["fifo_mode", "err_ms", "ms_per_delay"], rows))
    by_mode = {row[0]: row for row in rows}
    # The SDR lift must not be catastrophically worse than linearized.
    assert by_mode["sdr"][1] < 3.0 * by_mode["linearized"][1] + 1.0
    # Linearized resolution is the cheap mode.
    assert by_mode["linearized"][2] <= by_mode["sdr"][2] + 1.0


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=ABLATION_NODES, duration_ms=ABLATION_DURATION_MS
    )
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "ablation_fifo",
        config={"nodes": ABLATION_NODES, "packets": trace.num_received},
    ) as bench:
        rows = _sweep(trace)
        bench.record(errors_ms={mode: err for mode, err, _ in rows})
    print(format_sweep_table(
        ["fifo_mode", "err_ms", "ms_per_delay"], rows
    ))


if __name__ == "__main__":
    main()
