"""Figure 8: impact of network scale (paper §VI.B).

The paper evaluates 100 / 225 / 400-node uniform networks. Expected
shape: all methods degrade somewhat with scale (longer paths, more
contention), Domo stays ahead throughout (paper: error 2.36->3.58 ms vs
MNT 4.51->9.33 ms; bounds 12.01->16.11 vs 25.56->40.97; displacement
0.001->0.03 vs 2.97->3.39).

Default sizes are scaled down (49/100/169); set REPRO_FULL=1 for the
paper's sizes.
"""

from benchmarks.conftest import (
    BOUND_SAMPLE,
    FIG8_SIZES,
    default_domo_config,
    simulated_trace,
)
from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.tables import format_sweep_table


def _scale_sweep(sizes):
    rows = []
    for size in sizes:
        trace = simulated_trace(num_nodes=size)
        accuracy = evaluate_accuracy(trace)
        rows.append([size, trace.num_received, accuracy.domo.mean,
                     accuracy.mnt.mean])
    return rows


def test_fig8a_error_vs_scale(benchmark):
    rows = benchmark.pedantic(
        _scale_sweep, args=(FIG8_SIZES,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["nodes", "packets", "domo_err_ms", "mnt_err_ms"], rows
    ))
    print("paper: Domo 2.36->3.58 ms, MNT 4.51->9.33 ms for 100->400 nodes")
    for _, _, domo_err, mnt_err in rows:
        assert domo_err < mnt_err


def test_fig8b_bounds_vs_scale(benchmark):
    def sweep():
        rows = []
        for size in (FIG8_SIZES[0], FIG8_SIZES[-1]):
            trace = simulated_trace(num_nodes=size)
            result = evaluate_bounds(trace, max_packets=BOUND_SAMPLE,
                                     domo_config=default_domo_config())
            rows.append([size, result.domo.mean, result.mnt.mean])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(
        ["nodes", "domo_bound_ms", "mnt_bound_ms"], rows
    ))
    print("paper: Domo 12.01->16.11 ms, MNT 25.56->40.97 ms")
    for _, domo_w, mnt_w in rows:
        assert domo_w < mnt_w


def test_fig8c_displacement_vs_scale(benchmark):
    def sweep():
        rows = []
        for size in (FIG8_SIZES[0], FIG8_SIZES[-1]):
            trace = simulated_trace(num_nodes=size)
            result = evaluate_displacement(trace)
            rows.append(
                [size, result.domo.mean, result.message_tracing.mean]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(["nodes", "domo_disp", "tracing_disp"], rows))
    print("paper: Domo 0.001->0.03, MessageTracing 2.97->3.39")
    for _, domo_d, tracing_d in rows:
        assert domo_d <= tracing_d


def main() -> None:
    from benchmarks.harness import BenchHarness

    with BenchHarness(
        "fig8_network_scale", config={"sizes": list(FIG8_SIZES)}
    ) as bench:
        rows_a, rows_b, rows_c = [], [], []
        for size in FIG8_SIZES:
            trace = simulated_trace(num_nodes=size)
            accuracy = evaluate_accuracy(trace)
            bounds = evaluate_bounds(trace, max_packets=BOUND_SAMPLE,
                                     domo_config=default_domo_config())
            displacement = evaluate_displacement(trace)
            rows_a.append(
                [size, trace.num_received, accuracy.domo.mean,
                 accuracy.mnt.mean]
            )
            rows_b.append([size, bounds.domo.mean, bounds.mnt.mean])
            rows_c.append(
                [size, displacement.domo.mean,
                 displacement.message_tracing.mean]
            )
        bench.record(
            domo_err_ms={str(r[0]): r[2] for r in rows_a},
            domo_bound_ms={str(r[0]): r[1] for r in rows_b},
        )
    print(format_sweep_table(
        ["nodes", "packets", "domo_err_ms", "mnt_err_ms"], rows_a
    ))
    print()
    print(format_sweep_table(["nodes", "domo_bound_ms", "mnt_bound_ms"], rows_b))
    print()
    print(format_sweep_table(["nodes", "domo_disp", "tracing_disp"], rows_c))


if __name__ == "__main__":
    main()
