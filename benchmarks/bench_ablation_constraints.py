"""Ablation: each constraint family's contribution to accuracy.

Removes one family at a time from the estimation problem: FIFO
(fifo_mode='none'), sum-of-delays (no Eq. (6)/(7) rows), and the
similarity objective itself (anchor-only, i.e. interval midpoints).
Expected: the full system wins; the sum-of-delays rows are the strongest
single ingredient (they carry the only sub-interval timing information).
"""

import numpy as np

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.constraints import ConstraintConfig
from repro.core.pipeline import DomoConfig, DomoReconstructor


def _error_of(trace, config):
    estimate = DomoReconstructor(config).estimate(trace)
    errors = []
    for packet in trace.received:
        truth = trace.truth_of(packet.packet_id).node_delays()
        errors.extend(
            abs(a - b)
            for a, b in zip(estimate.delays_of(packet.packet_id), truth)
        )
    return float(np.mean(errors))


def _variants():
    full = DomoConfig()

    no_fifo = DomoConfig(fifo_mode="none")

    no_sum = DomoConfig()
    no_sum.constraints = ConstraintConfig(use_upper_sum=False)
    # Disable the guaranteed-lower rows too by making slack enormous.
    no_sum.constraints.sum_slack_ms = 1e9

    midpoints = DomoConfig(fifo_mode="none")
    midpoints.constraints = ConstraintConfig(
        use_upper_sum=False, sum_slack_ms=1e9, fifo_horizon_ms=0.0
    )
    midpoints.estimator.epsilon_ms = 0.0  # no similarity pairs at all

    return [
        ("full", full),
        ("no_fifo", no_fifo),
        ("no_sum", no_sum),
        ("intervals_only", midpoints),
    ]


def _sweep(trace):
    return [
        [name, _error_of(trace, config)] for name, config in _variants()
    ]


def test_ablation_constraint_families(benchmark, fig6_trace):
    rows = benchmark.pedantic(
        _sweep, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(["variant", "err_ms"], rows))
    by_name = dict(rows)
    assert by_name["full"] <= by_name["intervals_only"], (
        "the full constraint system must beat bare interval midpoints"
    )
    assert by_name["full"] <= by_name["no_sum"] + 0.2, (
        "removing sum-of-delays rows must not help"
    )


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "ablation_constraints", config={"packets": trace.num_received}
    ) as bench:
        rows = _sweep(trace)
        bench.record(errors_ms={name: err for name, err in rows})
    print(format_sweep_table(["variant", "err_ms"], rows))


if __name__ == "__main__":
    main()
