"""Streaming engine throughput: ingest -> seal -> solve -> commit rate.

The streaming engine's value claim is twofold: it sustains the sink's
packet rate (packets/sec through ingest+solve), and it does so in bounded
memory (resident packets track the active-window horizon, not the trace
length). This benchmark drives a sink-arrival-ordered trace through
:class:`repro.stream.StreamingReconstructor` in live-sized chunks and
reports both, plus the seal->commit latency an operator would watch.

The batch pipeline (``DomoReconstructor.estimate``) runs the same trace
for reference — it is "ingest everything, then flush" on the same
engine, so the throughput gap is purely the cost/benefit of incremental
sealing.
"""

from __future__ import annotations

import time

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.stream import StreamingReconstructor

STREAM_NODES = 49
STREAM_DURATION_MS = 60_000.0
CHUNK_SIZE = 64
LATENESS_MS = 4_000.0
#: pinned span so every run solves the same windows (the density
#: heuristic would choose differently from a warmup buffer).
SPAN_MS = 12_000.0


def _stream_run(arrivals, lateness_ms: float):
    """One streaming pass; returns (telemetry, packets/sec, estimates)."""
    config = DomoConfig(window_span_ms=SPAN_MS)
    num_estimates = 0
    started = time.perf_counter()
    with StreamingReconstructor(config, lateness_ms=lateness_ms) as engine:
        for lo in range(0, len(arrivals), CHUNK_SIZE):
            engine.ingest(arrivals[lo:lo + CHUNK_SIZE])
            num_estimates += sum(w.num_estimates for w in engine.poll())
        num_estimates += sum(w.num_estimates for w in engine.flush())
        telemetry = engine.telemetry
    elapsed = time.perf_counter() - started
    return telemetry, len(arrivals) / elapsed, num_estimates


def _throughput_sweep(trace, out=None):
    arrivals = sorted(trace.received, key=lambda p: p.sink_arrival_ms)

    started = time.perf_counter()
    batch = DomoReconstructor(DomoConfig(window_span_ms=SPAN_MS)).estimate(
        trace
    )
    batch_rate = len(arrivals) / (time.perf_counter() - started)

    if out is not None:
        # Deterministic outputs the perf-gate baseline pins exactly.
        out["num_estimates"] = batch.num_estimated
        out["packets"] = len(arrivals)
    rows = [
        ["batch flush", f"{batch_rate:.0f}", len(arrivals), "-",
         batch.num_estimated],
    ]
    for lateness in (LATENESS_MS, 2 * LATENESS_MS):
        telemetry, rate, estimates = _stream_run(arrivals, lateness)
        if out is not None and lateness == LATENESS_MS:
            out["windows_committed"] = telemetry.windows_committed
            out["stream_rate_pps"] = rate
        rows.append([
            f"stream {lateness / 1e3:.0f}s late",
            f"{rate:.0f}",
            telemetry.peak_resident_packets,
            telemetry.max_backlog,
            estimates,
        ])
        assert telemetry.evicted_packets == telemetry.ingested, (
            "streaming run retained packets after flush"
        )
        assert estimates == batch.num_estimated, (
            f"stream committed {estimates} estimates, "
            f"batch {batch.num_estimated}"
        )
    return rows


def test_streaming_throughput(benchmark):
    trace = simulated_trace(
        num_nodes=STREAM_NODES, duration_ms=STREAM_DURATION_MS
    )
    rows = benchmark.pedantic(
        _throughput_sweep, args=(trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["run", "packets/s", "peak resident", "peak backlog", "estimates"],
        rows,
    ))
    stream_rows = rows[1:]
    assert stream_rows, "no streaming run executed"
    # The memory-bound claim: a finite lateness keeps the peak resident
    # set strictly below the full trace.
    assert any(r[2] < len(trace.received) for r in stream_rows), (
        "streaming never evicted below the full trace size"
    )


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=STREAM_NODES, duration_ms=STREAM_DURATION_MS
    )
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "streaming_throughput",
        config={"nodes": STREAM_NODES, "span_ms": SPAN_MS,
                "chunk": CHUNK_SIZE, "lateness_ms": LATENESS_MS},
    ) as bench:
        parity: dict = {}
        rows = _throughput_sweep(trace, out=parity)
        bench.record(**parity)
    print(format_sweep_table(
        ["run", "packets/s", "peak resident", "peak backlog", "estimates"],
        rows,
    ))
    print("\nstream commits match the batch estimate count: OK")


if __name__ == "__main__":
    main()
