"""Figure 9: impact of the effective time window ratio (paper §VI.C).

The ratio controls how much of each overlapping window's solution is
kept. Expected shape (paper Fig. 9): accuracy degrades only mildly as the
ratio grows 0.3 -> 0.9, while execution time per delay *decreases*
(fewer windows). The paper settles on 0.5 at ~15 ms per delay.
"""

from benchmarks.conftest import simulated_trace
from repro.analysis.experiments import evaluate_accuracy
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig

RATIOS = (0.3, 0.5, 0.7, 0.9)


def _ratio_sweep(trace, ratios=RATIOS):
    rows = []
    for ratio in ratios:
        config = DomoConfig(effective_window_ratio=ratio)
        result = evaluate_accuracy(trace, domo_config=config)
        rows.append([ratio, result.domo.mean, result.domo_time_per_delay_ms])
    return rows


def test_fig9_window_ratio(benchmark, fig6_trace):
    rows = benchmark.pedantic(
        _ratio_sweep, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["ratio", "domo_err_ms", "ms_per_delay"], rows
    ))
    print("paper: error rises mildly with ratio; time per delay falls;")
    print("       at ratio 0.5 the paper measures ~15 ms per delay")

    errors = [r[1] for r in rows]
    times = [r[2] for r in rows]
    # Shape: the ratio's accuracy impact is mild (paper: 'not very
    # significant') and larger ratios never cost more time per delay.
    assert max(errors) < 2.0 * min(errors) + 0.5
    assert times[-1] <= times[0] * 1.5


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "fig9_window_ratio", config={"ratios": list(RATIOS)}
    ) as bench:
        rows = _ratio_sweep(trace)
        bench.record(domo_err_ms={str(r[0]): r[1] for r in rows})
    print(format_sweep_table(
        ["ratio", "domo_err_ms", "ms_per_delay"], rows
    ))


if __name__ == "__main__":
    main()
