"""Perf-gate: compare BENCH_*.json reports against checked-in baselines.

Each baseline in ``benchmarks/baselines/<name>.json`` pins

* ``wall_time_s`` — the reference wall time of the bench body (the root
  ``run`` span of its ``domo.run_report/1`` report). The gate fails when
  the current run is slower than ``baseline * (1 + tolerance)``.
* ``tolerance`` — allowed fractional slowdown. The default 0.30 (30%)
  absorbs runner-to-runner jitter on shared CI hardware while still
  catching the 2x-style regressions the gate exists for; override per
  run with ``$PERF_GATE_TOLERANCE`` (e.g. after a runner change).
* ``parity`` — deterministic output counts (committed estimates,
  windows) from the seeded trace. These must match *exactly*: any drift
  means reconstruction behavior changed, not just speed.

Usage::

    python -m benchmarks.check_regression BENCH_parallel_scaling.json ...
    python -m benchmarks.check_regression --update BENCH_*.json   # re-pin

Exit codes: 0 pass, 1 regression/parity failure, 2 operational error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")
BASELINE_SCHEMA = "domo.bench_baseline/1"
DEFAULT_TOLERANCE = 0.30


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def bench_name(report: dict) -> str:
    command = report.get("command", "")
    if not command.startswith("bench:"):
        raise ValueError(
            f"not a bench report (command={command!r}); expected the "
            "BENCH_*.json written by benchmarks.harness"
        )
    return command[len("bench:"):]


def baseline_path(name: str) -> str:
    return os.path.join(BASELINE_DIR, f"{name}.json")


def check_report(report: dict, baseline: dict,
                 tolerance: float | None = None) -> list[str]:
    """All gate violations of one report against its baseline."""
    problems: list[str] = []
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    base_wall = float(baseline.get("wall_time_s", 0.0))
    wall = float(report.get("wall_time_s", 0.0))
    limit = base_wall * (1.0 + tolerance)
    if base_wall > 0.0 and wall > limit:
        problems.append(
            f"wall time regression: {wall:.3f}s vs baseline "
            f"{base_wall:.3f}s (+{100 * (wall / base_wall - 1):.0f}%, "
            f"allowed +{100 * tolerance:.0f}%)"
        )
    stats = report.get("stats", {})
    for key, expected in baseline.get("parity", {}).items():
        actual = stats.get(key)
        if actual != expected:
            problems.append(
                f"parity break: stats[{key!r}] = {actual!r}, "
                f"baseline pinned {expected!r}"
            )
    return problems


def make_baseline(report: dict, parity_keys: list[str],
                  tolerance: float = DEFAULT_TOLERANCE) -> dict:
    stats = report.get("stats", {})
    return {
        "schema": BASELINE_SCHEMA,
        "bench": bench_name(report),
        "wall_time_s": report.get("wall_time_s", 0.0),
        "tolerance": tolerance,
        "parity": {key: stats.get(key) for key in parity_keys},
        "notes": (
            "wall_time_s is the reference duration of the bench body; "
            "the gate fails above wall_time_s * (1 + tolerance). parity "
            "values are deterministic seeded outputs and must match "
            "exactly. Re-pin with: python -m benchmarks.check_regression "
            "--update BENCH_<bench>.json"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare bench reports against checked-in baselines"
    )
    parser.add_argument("reports", nargs="+",
                        help="BENCH_*.json files written by the harness")
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite each baseline from the given report instead of "
             "checking (keeps the existing parity keys and tolerance)")
    parser.add_argument(
        "--tolerance", type=float,
        default=os.environ.get("PERF_GATE_TOLERANCE"),
        help="override the baseline's wall-time tolerance "
             "(also via $PERF_GATE_TOLERANCE)")
    args = parser.parse_args(argv)
    tolerance = None if args.tolerance is None else float(args.tolerance)

    failed = False
    for path in args.reports:
        try:
            report = _load(path)
            name = bench_name(report)
        except (OSError, ValueError) as exc:
            print(f"check_regression: error: {path}: {exc}",
                  file=sys.stderr)
            return 2
        base_path = baseline_path(name)
        if args.update:
            try:
                previous = _load(base_path)
                parity_keys = list(previous.get("parity", {}))
                tol = float(previous.get("tolerance", DEFAULT_TOLERANCE))
            except OSError:
                parity_keys = sorted(report.get("stats", {}))
                tol = DEFAULT_TOLERANCE
            os.makedirs(BASELINE_DIR, exist_ok=True)
            with open(base_path, "w", encoding="utf-8") as handle:
                json.dump(make_baseline(report, parity_keys, tol),
                          handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"{name}: baseline updated -> {base_path}")
            continue
        try:
            baseline = _load(base_path)
        except OSError as exc:
            print(f"check_regression: error: no baseline for {name!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
        problems = check_report(report, baseline, tolerance)
        if problems:
            failed = True
            print(f"{name}: FAIL")
            for problem in problems:
                print(f"  {problem}")
        else:
            wall = report.get("wall_time_s", 0.0)
            print(f"{name}: ok (wall {wall:.3f}s vs baseline "
                  f"{baseline.get('wall_time_s', 0.0):.3f}s)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
