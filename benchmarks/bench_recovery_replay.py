"""Recovery throughput: how fast a crashed durable stream comes back.

The durability layer's claim is that crash recovery is replay-bounded:
a killed server restores each stream from the latest snapshot plus the
WAL suffix, and the restored stream is bit-identical to one that never
crashed. This benchmark feeds a seeded trace into a durable
:class:`repro.serve.session.SessionManager`, abandons it without drain
(simulated SIGKILL — the WAL tail is exactly what a dead process leaves
behind), then times ``recover_all()`` in both recovery modes:

* **wal replay** — no snapshots; every ingest batch is re-fed.
* **snapshot+wal** — periodic snapshots bound the replayed suffix.

Parity values pinned by the perf gate are deterministic: packet count,
committed window count (identical to the uncrashed reference, which is
asserted bit-for-bit inside the sweep), and the WAL records replayed by
each mode (a pure function of the seeded trace, the batch size and the
snapshot cadence).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig
from repro.serve.durability import DurabilityConfig
from repro.serve.session import SessionManager

RECOVERY_NODES = 49
RECOVERY_DURATION_MS = 60_000.0
#: finite watermark: results depend on batching, so replay must re-feed
#: the exact WAL batches — the property this bench exercises.
LATENESS_MS = 5_000.0
CHUNK = 16
SNAPSHOT_INTERVAL = 8

#: (table label, parity key prefix, snapshot_interval)
MODES = (
    ("wal replay", "wal_only", 0),
    ("snapshot+wal", "snapshot", SNAPSHOT_INTERVAL),
)


def _manager(wal_dir=None, snapshot_interval=0):
    durability = None
    if wal_dir is not None:
        durability = DurabilityConfig(
            wal_dir=Path(wal_dir), snapshot_interval=snapshot_interval
        )
    return SessionManager(
        DomoConfig(), lateness_ms=LATENESS_MS, durability=durability
    )


def _batches(arrivals):
    return [arrivals[i:i + CHUNK] for i in range(0, len(arrivals), CHUNK)]


def _reference_rows(batches):
    """Committed rows of an uncrashed, non-durable run."""
    manager = _manager()
    try:
        session = manager.get_or_create("bench")
        for batch in batches:
            session.ingest(batch)
        session.flush()
        return list(session.results)
    finally:
        manager.close()


def _crash_then_recover(batches, wal_dir, snapshot_interval):
    """Feed everything, abandon without drain, time ``recover_all``."""
    crashed = _manager(wal_dir, snapshot_interval)
    session = crashed.get_or_create("bench")
    for batch in batches:
        session.ingest(batch)
    crashed.pool.close()  # simulated death: no flush, no drain, no close

    recovered = _manager(wal_dir, snapshot_interval)
    try:
        started = time.perf_counter()
        summary = recovered.recover_all()["bench"]
        elapsed = time.perf_counter() - started
        assert summary["failed"] is None, summary
        session = recovered.get("bench")
        session.flush()
        rows = list(session.results)
    finally:
        recovered.close()
    return elapsed, summary, rows


def _replay_sweep(trace, out=None):
    arrivals = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    batches = _batches(arrivals)
    expected = _reference_rows(batches)

    rows = []
    for label, key, snapshot_interval in MODES:
        with tempfile.TemporaryDirectory() as tmp:
            elapsed, summary, recovered_rows = _crash_then_recover(
                batches, tmp, snapshot_interval
            )
        assert recovered_rows == expected, (
            f"{label}: recovered results diverged from the uncrashed run"
        )
        rate = summary["records_durable"] / elapsed
        rows.append([
            label,
            f"{rate:.0f}",
            summary["wal_records_replayed"],
            summary["packets_replayed"],
            len(recovered_rows),
        ])
        if out is not None:
            out[f"{key}_records_replayed"] = summary["wal_records_replayed"]
            out[f"{key}_recovery_rate_pps"] = rate
    if out is not None:
        # Deterministic outputs the perf-gate baseline pins exactly.
        out["packets"] = len(arrivals)
        out["windows_committed"] = len(expected)
    return rows


def test_recovery_replay(benchmark):
    trace = simulated_trace(
        num_nodes=RECOVERY_NODES, duration_ms=RECOVERY_DURATION_MS
    )
    rows = benchmark.pedantic(
        _replay_sweep, args=(trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["recovery", "packets/s", "records replayed", "packets replayed",
         "windows"],
        rows,
    ))
    # Parity with the uncrashed run is asserted inside the sweep; here we
    # only require that the snapshot actually bounded the replay.
    assert rows[1][2] < rows[0][2]


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=RECOVERY_NODES, duration_ms=RECOVERY_DURATION_MS
    )
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "recovery_replay",
        config={"nodes": RECOVERY_NODES, "chunk": CHUNK,
                "snapshot_interval": SNAPSHOT_INTERVAL,
                "lateness_ms": LATENESS_MS},
    ) as bench:
        parity: dict = {}
        rows = _replay_sweep(trace, out=parity)
        bench.record(**parity)
    print(format_sweep_table(
        ["recovery", "packets/s", "records replayed", "packets replayed",
         "windows"],
        rows,
    ))
    print("\nrecovered results match the uncrashed run bit-for-bit: OK")


if __name__ == "__main__":
    main()
