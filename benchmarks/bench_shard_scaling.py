"""Sharded-tier scaling: routed throughput at 1 / 2 / 4 shards.

The router's claim is twofold: (1) consistent-hash placement adds
distribution without perturbing reconstruction — estimates served
through the router are bit-identical to the batch pipeline at every
shard count — and (2) the front door is thin enough that multi-stream
ingest scales with shards instead of serializing behind one process.
This benchmark replays a seeded trace as several concurrent streams
through a :class:`~repro.serve.RouterServer` over in-process shard
servers (unix sockets throughout) and reports end-to-end packets/sec
for 1, 2 and 4 shards.

Parity values pinned by the perf gate are deterministic: packet count,
per-stream estimate count (identical across shard counts, asserted
against batch inside the sweep), and total windows committed.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve import (
    ReconstructionServer,
    RouterServer,
    ServerHandle,
    ShardSpec,
    connect,
    run_in_thread,
)
from repro.serve.protocol import MAX_ADMIN_LINE_BYTES

BENCH_NODES = 49
BENCH_DURATION_MS = 60_000.0
SHARD_COUNTS = (1, 2, 4)
#: enough streams that every shard count has work on every shard.
STREAMS = [f"stream-{i}" for i in range(8)]
#: pinned span so every run solves the same windows (the density
#: heuristic would choose differently per scale otherwise).
SPAN_MS = 12_000.0


def _feed(sock_path: str, stream: str, arrivals, failures: list) -> None:
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(arrivals, stream=stream)
            if not client.health().get("ok"):
                failures.append(f"health check failed ({stream})")
            failures.extend(client.async_errors)
    except Exception as exc:  # noqa: BLE001
        failures.append(exc)


def _routed_run(arrivals, tmp: str, shards: int):
    """One routed pass; returns (packets/sec, estimates, windows)."""
    config = DomoConfig(window_span_ms=SPAN_MS)
    handles = []
    specs = []
    for i in range(shards):
        name = f"shard-{i}"
        sock = os.path.join(tmp, f"{name}.sock")
        handles.append(
            run_in_thread(
                ReconstructionServer(
                    config,
                    socket_path=sock,
                    max_line_bytes=MAX_ADMIN_LINE_BYTES,
                )
            )
        )
        specs.append(ShardSpec(name, sock))
    router_sock = os.path.join(tmp, "router.sock")
    router = ServerHandle(
        RouterServer(specs, socket_path=router_sock)
    ).start()
    try:
        failures: list = []
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_feed,
                args=(router_sock, stream, arrivals, failures),
            )
            for stream in STREAMS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        windows = 0
        with connect(socket_path=router_sock) as query:
            estimates = {}
            for stream in STREAMS:
                reply = query.flush(stream)
                assert reply["ok"], reply
                estimates[stream] = query.estimates(stream)
                windows += query.results(stream)["count"]
        elapsed = time.perf_counter() - started
    finally:
        router.stop()
        for handle in handles:
            handle.stop()
    rate = len(arrivals) * len(STREAMS) / elapsed
    return rate, estimates, windows


def _scaling_sweep(trace, out=None):
    arrivals = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    batch = DomoReconstructor(DomoConfig(window_span_ms=SPAN_MS)).estimate(
        trace
    )

    rows = []
    base_rate = None
    windows = 0
    for shards in SHARD_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            rate, estimates, windows = _routed_run(arrivals, tmp, shards)
        for stream in STREAMS:
            assert estimates[stream] == batch.estimates, (
                f"routed estimates diverged from batch at "
                f"{shards} shard(s), stream {stream}"
            )
        if base_rate is None:
            base_rate = rate
        rows.append(
            [f"route x{shards} shards", f"{rate:.0f}",
             f"{rate / base_rate:.2f}x", windows, len(batch.estimates)]
        )
        if out is not None:
            out[f"rate_pps_{shards}shard"] = rate
    if out is not None:
        # Deterministic outputs the perf-gate baseline pins exactly.
        out["packets"] = len(arrivals)
        out["streams"] = len(STREAMS)
        out["num_estimates"] = len(batch.estimates)
        out["windows_committed"] = windows
    return rows


def test_shard_scaling(benchmark):
    trace = simulated_trace(
        num_nodes=BENCH_NODES, duration_ms=BENCH_DURATION_MS
    )
    rows = benchmark.pedantic(
        _scaling_sweep, args=(trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["run", "packets/s", "speedup", "windows", "estimates"], rows,
    ))
    # Parity is asserted inside the sweep for every shard count; here we
    # only require that the routed path actually committed work.
    assert int(rows[-1][3]) > 0


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=BENCH_NODES, duration_ms=BENCH_DURATION_MS
    )
    print(f"trace: {trace.num_received} packets x {len(STREAMS)} streams\n")
    with BenchHarness(
        "shard_scaling",
        config={"nodes": BENCH_NODES, "span_ms": SPAN_MS,
                "streams": len(STREAMS), "shard_counts": list(SHARD_COUNTS)},
    ) as bench:
        parity: dict = {}
        rows = _scaling_sweep(trace, out=parity)
        bench.record(**parity)
    print(format_sweep_table(
        ["run", "packets/s", "speedup", "windows", "estimates"], rows,
    ))
    print("\nrouted estimates match the batch pipeline bit-for-bit "
          "at every shard count: OK")


if __name__ == "__main__":
    main()
