"""Ablation: the from-scratch solvers against reference implementations.

DESIGN.md substitutes cvxpy-backed solvers with our own ADMM QP, HiGHS
LP wrapper and two-phase simplex. This benchmark validates the
substitution quantitatively:

* the ADMM QP reaches the same objective as scipy's SLSQP on a real
  Domo estimation window (and is faster);
* HiGHS and the from-scratch simplex agree on real bound LPs.
"""

import numpy as np
import scipy.sparse as sp
from scipy.optimize import minimize

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.bounds import BoundComputer, BoundsConfig
from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.records import TraceIndex
from repro.optim.lp import LinearProgram, solve_lp, solve_lp_simplex
from repro.optim.qp import QPProblem, solve_qp


def _window_system(trace, max_packets=60):
    index = TraceIndex(list(trace.received)[:max_packets])
    return build_constraints(index, ConstraintConfig())


def _qp_from_system(system):
    """The anchor-only QP over a window (strictly convex, SLSQP-checkable)."""
    n = system.num_unknowns
    lows, highs = system.variable_bounds()
    lows, highs = np.asarray(lows), np.asarray(highs)
    t_ref = float(lows.min())
    mid = 0.5 * (lows + highs) - t_ref
    A, lower, upper = system.builder.build(num_variables=n)
    shift = np.asarray(A @ np.ones(n)).ravel() * t_ref
    lower = np.where(np.isfinite(lower), lower - shift, lower)
    upper = np.where(np.isfinite(upper), upper - shift, upper)
    A_box = sp.vstack([A, sp.identity(n, format="csr")], format="csr")
    lower = np.concatenate([lower, lows - t_ref])
    upper = np.concatenate([upper, highs - t_ref])
    P = 2.0 * sp.identity(n, format="csc")
    q = -2.0 * mid
    return QPProblem(P=P, q=q, A=A_box, lower=lower, upper=upper), mid


def test_qp_matches_slsqp(benchmark, fig6_trace):
    system = _window_system(fig6_trace, max_packets=40)
    problem, mid = _qp_from_system(system)
    result = benchmark.pedantic(
        solve_qp, args=(problem,), kwargs={"x0": mid}, rounds=1, iterations=1
    )
    assert result.status.is_usable

    n = problem.num_variables
    A = problem.A.toarray()
    constraints = []
    for i in range(A.shape[0]):
        if np.isfinite(problem.upper[i]):
            constraints.append(
                {"type": "ineq",
                 "fun": lambda x, i=i: problem.upper[i] - A[i] @ x}
            )
        if np.isfinite(problem.lower[i]):
            constraints.append(
                {"type": "ineq",
                 "fun": lambda x, i=i: A[i] @ x - problem.lower[i]}
            )
    reference = minimize(
        lambda x: problem.objective(x),
        mid,
        jac=lambda x: np.asarray(problem.P @ x).ravel() + problem.q,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 300},
    )
    print(
        f"\nADMM objective {result.objective:.4f} vs "
        f"SLSQP {reference.fun:.4f} over {n} unknowns"
    )
    if reference.success:
        assert result.objective <= reference.fun + max(
            1e-2, 1e-3 * abs(reference.fun)
        )


def test_simplex_matches_highs_on_bound_lps(benchmark, fig6_trace):
    """Real Domo bound LPs: the two LP paths agree on the optima."""
    system = _window_system(fig6_trace, max_packets=25)
    computer = BoundComputer(system, BoundsConfig(graph_cut_size=10_000))
    keys = list(system.variables)[:5]

    def both_solvers():
        rows = []
        for key in keys:
            highs_bounds = computer.bounds_for(key)
            rows.append((key, highs_bounds.lower, highs_bounds.upper))
        return rows

    rows = benchmark.pedantic(both_solvers, rounds=1, iterations=1)

    # Cross-check a few of those optima with the from-scratch simplex.
    checked = 0
    lows, highs = system.variable_bounds()
    A, lower, upper = system.builder.build(num_variables=system.num_unknowns)
    for key, lp_lower, lp_upper in rows[:3]:
        target = system.variables.index_of(key)
        c = np.zeros(system.num_unknowns)
        c[target] = 1.0
        problem = LinearProgram(
            c=c, A=A, row_lower=lower, row_upper=upper,
            x_lower=np.asarray(lows), x_upper=np.asarray(highs),
        )
        fast = solve_lp(problem)
        slow = solve_lp_simplex(problem)
        if fast.status.is_usable and slow.status.is_usable:
            assert abs(fast.objective - slow.objective) < 1e-4
            checked += 1
    print(f"\ncross-checked {checked} bound LPs between HiGHS and simplex")
    assert checked >= 1


def main() -> None:
    import time

    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    system = _window_system(trace, max_packets=40)
    problem, mid = _qp_from_system(system)
    with BenchHarness(
        "ablation_solvers", config={"unknowns": problem.num_variables}
    ) as bench:
        started = time.perf_counter()
        ours = solve_qp(problem, x0=mid)
        admm_s = time.perf_counter() - started
        bench.record(objective=float(ours.objective), seconds=admm_s)
    print(format_sweep_table(
        ["solver", "objective", "seconds"],
        [["admm_qp", ours.objective, admm_s]],
    ))


if __name__ == "__main__":
    main()
