"""Service-layer throughput: wire ingest -> shared pool -> query rate.

The serve layer's claim is that the socket/session machinery is thin:
records fed over a real unix socket from several concurrent connections
come out the query API bit-identical to the batch pipeline, at a packet
rate dominated by the solver, not by framing or demux. This benchmark
replays a seeded trace through :class:`repro.serve.ReconstructionServer`
(in-process, unix socket, N feeder connections sharding the trace) and
reports end-to-end packets/sec alongside the batch rate on the same
trace.

Parity values pinned by the perf gate are deterministic: packet count,
served estimate count (== batch), and windows committed by the shared
pool.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve import ReconstructionServer, connect, run_in_thread

SERVE_NODES = 49
SERVE_DURATION_MS = 60_000.0
CONNECTIONS = 3
#: pinned span so every run solves the same windows (the density
#: heuristic would choose differently per-shard otherwise).
SPAN_MS = 12_000.0


def _feed(sock_path: str, shard, failures: list) -> None:
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(shard, stream="bench")
            if not client.health().get("ok"):
                failures.append("health check failed")
            failures.extend(client.async_errors)
    except Exception as exc:  # noqa: BLE001
        failures.append(exc)


def _serve_run(arrivals, sock_path: str):
    """One served pass; returns (packets/sec, estimates, stats)."""
    config = DomoConfig(window_span_ms=SPAN_MS)
    handle = run_in_thread(
        ReconstructionServer(config, socket_path=sock_path)
    )
    try:
        failures: list = []
        started = time.perf_counter()
        threads = [
            threading.Thread(
                target=_feed,
                args=(sock_path, arrivals[i::CONNECTIONS], failures),
            )
            for i in range(CONNECTIONS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        with connect(socket_path=sock_path) as query:
            reply = query.flush("bench")
            assert reply["ok"], reply
            estimates = query.estimates("bench")
            stats = query.stats()
        elapsed = time.perf_counter() - started
    finally:
        handle.stop()
    return len(arrivals) / elapsed, estimates, stats


def _throughput_sweep(trace, out=None):
    arrivals = sorted(trace.received, key=lambda p: p.sink_arrival_ms)

    started = time.perf_counter()
    batch = DomoReconstructor(DomoConfig(window_span_ms=SPAN_MS)).estimate(
        trace
    )
    batch_rate = len(arrivals) / (time.perf_counter() - started)

    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "bench.sock")
        serve_rate, estimates, stats = _serve_run(arrivals, sock_path)

    assert estimates == batch.estimates, (
        "served estimates diverged from the batch pipeline"
    )
    windows_committed = stats["streams"]["bench"]["windows_committed"]
    if out is not None:
        # Deterministic outputs the perf-gate baseline pins exactly.
        out["packets"] = len(arrivals)
        out["num_estimates"] = len(estimates)
        out["windows_committed"] = windows_committed
        out["serve_rate_pps"] = serve_rate
    return [
        ["batch estimate", f"{batch_rate:.0f}", "-", batch.num_estimated],
        [f"serve x{CONNECTIONS} conns", f"{serve_rate:.0f}",
         windows_committed, len(estimates)],
    ]


def test_serve_throughput(benchmark):
    trace = simulated_trace(
        num_nodes=SERVE_NODES, duration_ms=SERVE_DURATION_MS
    )
    rows = benchmark.pedantic(
        _throughput_sweep, args=(trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["run", "packets/s", "windows", "estimates"], rows,
    ))
    # Parity is asserted inside the sweep; here we only require that the
    # served path actually committed work.
    assert int(rows[1][3]) > 0


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=SERVE_NODES, duration_ms=SERVE_DURATION_MS
    )
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "serve_throughput",
        config={"nodes": SERVE_NODES, "span_ms": SPAN_MS,
                "connections": CONNECTIONS},
    ) as bench:
        parity: dict = {}
        rows = _throughput_sweep(trace, out=parity)
        bench.record(**parity)
    print(format_sweep_table(
        ["run", "packets/s", "windows", "estimates"], rows,
    ))
    print("\nserved estimates match the batch pipeline bit-for-bit: OK")


if __name__ == "__main__":
    main()
