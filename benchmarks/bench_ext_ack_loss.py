"""Extension: robustness to link-layer ack loss (duplicate frames).

A lost ack makes the sender retransmit a frame the receiver already
accepted: the receiver suppresses the duplicate (CTP-style cache), but
the sender's measured sojourn now over-counts (it runs to the *last*
attempt while the first copy traveled onward). The paper doesn't evaluate
this failure mode; here we quantify it. Expected: S(p) grows (Eq. (7)
remains sound, it's one-sided), Eq. (6) and the e2e-based t0
reconstruction absorb small errors, and Domo's accuracy degrades
gracefully with the ack loss probability.
"""

from dataclasses import replace

from repro.analysis.experiments import evaluate_accuracy
from repro.analysis.scenarios import paper_scenario
from repro.analysis.tables import format_sweep_table
from repro.sim import Simulator

ACK_LOSS_RATES = (0.0, 0.05, 0.15)


def _ack_loss_sweep(num_nodes=64, duration_ms=120_000.0, seed=4):
    rows = []
    for rate in ACK_LOSS_RATES:
        config = paper_scenario(
            num_nodes=num_nodes, seed=seed, duration_ms=duration_ms
        )
        config.mac = replace(config.mac, ack_loss_prob=rate)
        simulator = Simulator(config)
        trace = simulator.run()
        duplicates = sum(
            node.stats.duplicates_suppressed
            for node in simulator.nodes.values()
        )
        result = evaluate_accuracy(trace)
        rows.append(
            [rate, duplicates, result.domo.mean, result.mnt.mean]
        )
    return rows


def test_ext_ack_loss(benchmark):
    rows = benchmark.pedantic(_ack_loss_sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(
        ["ack_loss", "duplicates", "domo_err_ms", "mnt_err_ms"], rows
    ))
    clean = rows[0]
    worst = rows[-1]
    assert worst[1] > 0, "ack loss must actually produce duplicates"
    for _, _, domo_err, mnt_err in rows:
        assert domo_err < mnt_err
    # Graceful degradation: under 15% ack loss Domo stays within 2.5x of
    # its clean-channel error.
    assert worst[2] < 2.5 * clean[2] + 1.0


def main() -> None:
    from benchmarks.harness import BenchHarness

    with BenchHarness(
        "ext_ack_loss", config={"rates": list(ACK_LOSS_RATES)}
    ) as bench:
        rows = _ack_loss_sweep()
        bench.record(
            domo_err_ms={str(r[0]): r[2] for r in rows},
            duplicates={str(r[0]): r[1] for r in rows},
        )
    print(format_sweep_table(
        ["ack_loss", "duplicates", "domo_err_ms", "mnt_err_ms"], rows
    ))


if __name__ == "__main__":
    main()
