"""Parallel window-solve scaling: serial vs process-pool execution.

The estimation pipeline's windows are independent subproblems, so wall
clock should drop as workers are added — the first step toward the
ROADMAP's sharding/batching scale-out. This benchmark runs the same
multi-window trace through :class:`DomoReconstructor` serially and with
2 / all-core pools, checks the estimates are *identical* (the executor's
contract), and reports the speedup.

On single-core machines the speedup assertion is skipped (process pools
cannot beat serial without a second core); identity is always enforced.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig, DomoReconstructor

#: node count for the scaling trace — small enough for CI smoke runs,
#: large enough to produce several windows.
SCALE_NODES = 49
SCALE_DURATION_MS = 60_000.0


def _estimate(trace, workers: int):
    """One reconstruction; returns (result, wall_clock_seconds)."""
    config = DomoConfig(parallel=workers > 1, max_workers=workers)
    domo = DomoReconstructor(config)
    started = time.perf_counter()
    result = domo.estimate(trace)
    return result, time.perf_counter() - started


def _scaling_sweep(trace, worker_counts, out=None):
    baseline, base_seconds = _estimate(trace, workers=1)
    if out is not None:
        # Deterministic outputs the perf-gate baseline pins exactly.
        out["num_estimates"] = baseline.num_estimated
        out["windows_used"] = baseline.windows_used
    rows = [[1, base_seconds, 1.0, baseline.stats["execution_mode"]]]
    for workers in worker_counts:
        result, seconds = _estimate(trace, workers=workers)
        assert result.arrival_times == baseline.arrival_times, (
            f"parallel run with {workers} workers diverged from serial"
        )
        rows.append(
            [workers, seconds, base_seconds / seconds,
             result.stats["execution_mode"]]
        )
    return rows


def test_parallel_scaling(benchmark):
    trace = simulated_trace(
        num_nodes=SCALE_NODES, duration_ms=SCALE_DURATION_MS
    )
    cores = os.cpu_count() or 1
    worker_counts = sorted({2, cores} - {1})
    rows = benchmark.pedantic(
        _scaling_sweep, args=(trace, worker_counts), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["workers", "seconds", "speedup", "mode"], rows
    ))
    if cores >= 2:
        parallel_rows = [r for r in rows if r[0] >= 2 and r[3] == "parallel"]
        assert parallel_rows, "no parallel run executed"
        best = max(r[2] for r in parallel_rows)
        assert best > 1.0, f"no speedup over serial (best {best:.2f}x)"


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=SCALE_NODES, duration_ms=SCALE_DURATION_MS
    )
    cores = os.cpu_count() or 1
    print(f"trace: {trace.num_received} packets, {cores} cores\n")
    with BenchHarness(
        "parallel_scaling",
        config={"nodes": SCALE_NODES, "cores": cores,
                "packets": trace.num_received},
    ) as bench:
        parity: dict = {}
        rows = _scaling_sweep(trace, sorted({2, cores} - {1}), out=parity)
        best = max((r[2] for r in rows[1:]), default=1.0)
        bench.record(best_speedup=best, **parity)
    print(format_sweep_table(["workers", "seconds", "speedup", "mode"], rows))
    print("\nparallel estimates identical to serial: OK")


if __name__ == "__main__":
    main()
