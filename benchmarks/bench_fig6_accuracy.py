"""Figure 6: the headline accuracy comparison (paper §VI.B).

(a) estimated-value accuracy, Domo vs MNT (paper: 3.58 ms vs 9.33 ms,
    >70% of Domo's errors below 4 ms);
(b) bound accuracy, Domo vs MNT (paper: 16.11 ms vs 40.97 ms);
(c) event-order displacement, Domo vs MessageTracing (paper: 0.03 vs 3.39).

Run as a pytest benchmark (``pytest benchmarks/bench_fig6_accuracy.py
--benchmark-only -s``) or directly (``python benchmarks/bench_fig6_accuracy.py``)
for the full per-node table.
"""

import numpy as np

from benchmarks.conftest import BOUND_SAMPLE, default_domo_config, simulated_trace
from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.tables import format_cdf, format_stats_table

PAPER = {
    "domo_error_ms": 3.58,
    "mnt_error_ms": 9.33,
    "domo_bound_ms": 16.11,
    "mnt_bound_ms": 40.97,
    "domo_displacement": 0.03,
    "tracing_displacement": 3.39,
}


def test_fig6a_estimation_accuracy(benchmark, fig6_trace):
    result = benchmark.pedantic(
        evaluate_accuracy, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_stats_table(
        [("Domo", result.domo), ("MNT", result.mnt)],
        value_label="Fig. 6(a) estimation error (ms)",
        thresholds=(4.0,),
    ))
    print(f"paper: Domo {PAPER['domo_error_ms']} ms, MNT {PAPER['mnt_error_ms']} ms")
    # Shape assertions: Domo wins clearly; most errors stay small.
    assert result.domo.mean < result.mnt.mean
    assert result.domo.fraction_below(4.0) > 0.5


def test_fig6b_bound_accuracy(benchmark, fig6_trace):
    result = benchmark.pedantic(
        evaluate_bounds,
        args=(fig6_trace,),
        kwargs={"max_packets": BOUND_SAMPLE,
                "domo_config": default_domo_config()},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_stats_table(
        [("Domo", result.domo), ("MNT", result.mnt)],
        value_label="Fig. 6(b) delay bound width (ms)",
    ))
    print(
        f"paper: Domo {PAPER['domo_bound_ms']} ms, MNT {PAPER['mnt_bound_ms']} ms; "
        f"measured Domo LP cost {result.domo_time_per_bound_ms:.0f} ms/bound"
    )
    assert result.domo.mean < result.mnt.mean


def test_fig6c_displacement(benchmark, fig6_trace):
    result = benchmark.pedantic(
        evaluate_displacement, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_stats_table(
        [
            ("Domo", result.domo),
            ("MessageTracing", result.message_tracing),
        ],
        value_label="Fig. 6(c) event displacement",
    ))
    print(
        f"paper: Domo {PAPER['domo_displacement']}, "
        f"MessageTracing {PAPER['tracing_displacement']}"
    )
    assert result.domo.mean < result.message_tracing.mean


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")

    with BenchHarness(
        "fig6_accuracy", config={"packets": trace.num_received}
    ) as bench:
        accuracy = evaluate_accuracy(trace)
        bounds = evaluate_bounds(trace, max_packets=BOUND_SAMPLE,
                                 domo_config=default_domo_config())
        displacement = evaluate_displacement(trace)
        bench.record(
            domo_err_ms=accuracy.domo.mean,
            mnt_err_ms=accuracy.mnt.mean,
            domo_bound_ms=bounds.domo.mean,
            mnt_bound_ms=bounds.mnt.mean,
            domo_displacement=displacement.domo.mean,
            tracing_displacement=displacement.message_tracing.mean,
        )

    print(format_stats_table(
        [("Domo", accuracy.domo), ("MNT", accuracy.mnt)],
        value_label="Fig. 6(a) estimation error (ms)",
        thresholds=(4.0,),
    ))
    print(format_cdf([("Domo", accuracy.domo), ("MNT", accuracy.mnt)]))
    print("\nper-node average node delay (first 15 nodes):")
    print(f"{'node':>6}{'true':>10}{'Domo':>10}{'MNT':>10}")
    for node in sorted(accuracy.per_node_average_delay)[:15]:
        true_avg, domo_avg, mnt_avg = accuracy.per_node_average_delay[node]
        print(f"{node:>6}{true_avg:>10.2f}{domo_avg:>10.2f}{mnt_avg:>10.2f}")

    print()
    print(format_stats_table(
        [("Domo", bounds.domo), ("MNT", bounds.mnt)],
        value_label="Fig. 6(b) delay bound width (ms)",
    ))

    print()
    print(format_stats_table(
        [
            ("Domo", displacement.domo),
            ("MessageTracing", displacement.message_tracing),
        ],
        value_label="Fig. 6(c) event displacement",
    ))


if __name__ == "__main__":
    main()
