"""Figure 10: impact of the graph cut size (paper §VI.C).

The cut size is the number of constraint-graph vertices extracted around
each bound target. Expected shape (paper Fig. 10): larger cuts give
(weakly) tighter bounds but cost more time per bound; the paper settles
on 10000 at ~192 ms per bound. Default cut sizes are scaled to the
smaller default trace (whose constraint graph has fewer vertices than
5000); REPRO_FULL=1 uses the paper's 5000-20000.
"""

from benchmarks.conftest import BOUND_SAMPLE, FIG10_CUTS, simulated_trace
from repro.analysis.experiments import evaluate_bounds
from repro.analysis.tables import format_sweep_table
from repro.core.pipeline import DomoConfig


def _cut_sweep(trace, cuts=FIG10_CUTS, sample=BOUND_SAMPLE):
    rows = []
    for cut in cuts:
        config = DomoConfig(graph_cut_size=cut)
        result = evaluate_bounds(
            trace, domo_config=config, max_packets=sample
        )
        rows.append(
            [cut, result.domo.mean, result.domo_time_per_bound_ms]
        )
    return rows


def test_fig10_graph_cut(benchmark, fig6_trace):
    rows = benchmark.pedantic(
        _cut_sweep,
        args=(fig6_trace,),
        kwargs={"sample": max(20, BOUND_SAMPLE // 2)},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_sweep_table(
        ["cut_size", "domo_bound_ms", "ms_per_bound"], rows
    ))
    print("paper: tighter bounds with larger cuts; ~192 ms/bound at 10000")
    widths = [r[1] for r in rows]
    # Shape: the largest cut is at least as tight as the smallest.
    assert widths[-1] <= widths[0] + 1e-6


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "fig10_graph_cut", config={"cuts": list(FIG10_CUTS)}
    ) as bench:
        rows = _cut_sweep(trace)
        bench.record(bound_widths_ms={str(r[0]): r[1] for r in rows})
    print(format_sweep_table(
        ["cut_size", "domo_bound_ms", "ms_per_bound"], rows
    ))


if __name__ == "__main__":
    main()
