"""Estimator-backend trade-off: accuracy (MAE) vs solve throughput.

Every registered backend solves the *same* prebuilt window systems over
one seeded trace, so the comparison isolates the solve phase — window
building, validation, and merging are identical across backends and
would otherwise dominate the wall clock. Reported per backend:

* **MAE (ms)** against the simulator's ground-truth arrival times, over
  exactly the kept estimates each backend emits;
* **windows/sec** through :func:`repro.runtime.executor.execute_windows`.

The headline claim gated here: the compressed-sensing backend (``cs``)
solves windows at least :data:`CS_SPEEDUP_FLOOR` times faster than the
exact ``domo-qp`` QP, inside a documented accuracy envelope (its MAE is
worse — that is the trade, not a bug). Estimate counts per backend are
deterministic seeded outputs and are pinned exactly by the perf-gate
baseline.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.backends import backend_names
from repro.core.pipeline import DomoConfig, constraint_config_for
from repro.core.preprocessor import build_window_systems, choose_window_span
from repro.runtime.executor import execute_windows

NODES = 60
DURATION_MS = 120_000.0
SEED = 3
#: the acceptance bar: cs must clear this windows/sec multiple over
#: domo-qp on the shared window set.
CS_SPEEDUP_FLOOR = 3.0


def _window_systems(trace, config: DomoConfig):
    packets = list(trace.received)
    span_ms = (
        config.window_span_ms
        if config.window_span_ms is not None
        else choose_window_span(packets, config.target_window_packets)
    )
    return build_window_systems(
        packets,
        constraint_config_for(config),
        span_ms,
        effective_ratio=config.effective_window_ratio,
    )


def _mae_ms(trace, estimates) -> float:
    errors = [
        abs(value - trace.truth_of(key.packet_id).arrival_times_ms[key.hop])
        for key, value in estimates.items()
    ]
    return float(np.mean(errors)) if errors else 0.0


def run_tradeoff(trace, config: DomoConfig | None = None):
    """Solve the shared window set under every backend; rows + stats."""
    config = config or DomoConfig()
    systems = _window_systems(trace, config)
    base_spec = config.solve_spec()
    rows = []
    stats: dict = {
        "packets": trace.num_received,
        "windows": len(systems),
    }
    throughput: dict[str, float] = {}
    for name in backend_names():
        spec = replace(base_spec, backend=name)
        started = time.perf_counter()
        report = execute_windows(systems, spec)
        elapsed = time.perf_counter() - started
        estimates: dict = {}
        for result in report.results:
            estimates.update(result.estimates)
        wps = len(systems) / elapsed if elapsed > 0 else float("inf")
        throughput[name] = wps
        mae = _mae_ms(trace, estimates)
        rows.append([name, f"{mae:.3f}", f"{wps:.1f}", len(estimates)])
        stats[f"estimates_{name.replace('-', '_')}"] = len(estimates)
        stats[f"mae_{name.replace('-', '_')}"] = mae
        stats[f"wps_{name.replace('-', '_')}"] = wps
    stats["cs_speedup"] = throughput["cs"] / throughput["domo-qp"]
    return rows, stats


def test_backend_tradeoff(benchmark):
    trace = simulated_trace(
        num_nodes=NODES, seed=SEED, duration_ms=DURATION_MS
    )
    rows, stats = benchmark.pedantic(
        run_tradeoff, args=(trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["backend", "MAE (ms)", "windows/s", "estimates"], rows
    ))
    assert stats["cs_speedup"] >= CS_SPEEDUP_FLOOR, (
        f"cs solved only {stats['cs_speedup']:.2f}x faster than domo-qp "
        f"(floor {CS_SPEEDUP_FLOOR}x)"
    )
    # Every backend must cover the same unknowns (same kept regions).
    counts = {
        stats[f"estimates_{n.replace('-', '_')}"] for n in backend_names()
    }
    assert len(counts) == 1, f"backends disagree on coverage: {counts}"


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace(
        num_nodes=NODES, seed=SEED, duration_ms=DURATION_MS
    )
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "backend_tradeoff",
        config={"nodes": NODES, "seed": SEED, "duration_ms": DURATION_MS,
                "cs_speedup_floor": CS_SPEEDUP_FLOOR},
    ) as bench:
        rows, stats = run_tradeoff(trace)
        # MAE and windows/sec are informational (machine-dependent);
        # the estimate counts are seeded-deterministic parity pins.
        bench.record(**{
            key: value for key, value in stats.items()
            if key.startswith(("estimates_", "packets", "windows"))
        })
        bench.record(
            cs_speedup=stats["cs_speedup"],
            **{k: v for k, v in stats.items() if k.startswith("mae_")},
        )
    print(format_sweep_table(
        ["backend", "MAE (ms)", "windows/s", "estimates"], rows
    ))
    if stats["cs_speedup"] < CS_SPEEDUP_FLOOR:
        raise SystemExit(
            f"cs speedup {stats['cs_speedup']:.2f}x is below the "
            f"{CS_SPEEDUP_FLOOR}x floor"
        )
    print(f"\ncs speedup over domo-qp: {stats['cs_speedup']:.2f}x "
          f"(floor {CS_SPEEDUP_FLOOR}x): OK")


if __name__ == "__main__":
    main()
