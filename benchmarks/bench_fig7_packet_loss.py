"""Figure 7: robustness to packet loss (paper §VI.B).

The paper removes 10-30% of the received trace at random and reconstructs
the rest. Expected shape: Domo's error grows only mildly (paper: 3.62 to
4.31 ms) and stays well below MNT's (10.97 to 12.29 ms); bound widths and
displacements behave likewise.

Run via pytest (``--benchmark-only -s``) or directly for all three tables.
"""

import numpy as np
import pytest

from benchmarks.conftest import BOUND_SAMPLE, default_domo_config, simulated_trace
from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.tables import format_sweep_table
from repro.sim import drop_random_packets

LOSS_RATES = (0.0, 0.1, 0.2, 0.3)

PAPER_ERROR = {0.1: (3.62, 10.97), 0.3: (4.31, 12.29)}  # (Domo, MNT)


def _lossy(trace, rate, seed=0):
    if rate == 0.0:
        return trace
    return drop_random_packets(trace, rate, np.random.default_rng(seed))


def _error_sweep(trace):
    rows = []
    for rate in LOSS_RATES:
        result = evaluate_accuracy(_lossy(trace, rate))
        rows.append([rate, result.domo.mean, result.mnt.mean])
    return rows


def test_fig7a_error_under_loss(benchmark, fig6_trace):
    rows = benchmark.pedantic(
        _error_sweep, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["loss_rate", "domo_err_ms", "mnt_err_ms"], rows
    ))
    print("paper @0.1: Domo 3.62 / MNT 10.97; @0.3: Domo 4.31 / MNT 12.29")
    for rate, domo_err, mnt_err in rows:
        assert domo_err < mnt_err, f"Domo must beat MNT at loss {rate}"
    # Degradation with loss is graceful: below 2x the loss-free error.
    assert rows[-1][1] < 2.0 * rows[0][1] + 1.0


def test_fig7b_bounds_under_loss(benchmark, fig6_trace):
    def sweep():
        rows = []
        for rate in (0.0, 0.3):
            result = evaluate_bounds(
                _lossy(fig6_trace, rate),
                max_packets=BOUND_SAMPLE,
                domo_config=default_domo_config(),
            )
            rows.append([rate, result.domo.mean, result.mnt.mean])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(
        ["loss_rate", "domo_bound_ms", "mnt_bound_ms"], rows
    ))
    print("paper: Domo 16.21->17.20 ms, MNT 41.03->41.14 ms")
    for rate, domo_w, mnt_w in rows:
        assert domo_w < mnt_w


def test_fig7c_displacement_under_loss(benchmark, fig6_trace):
    def sweep():
        rows = []
        for rate in (0.0, 0.3):
            result = evaluate_displacement(_lossy(fig6_trace, rate))
            rows.append([rate, result.domo.mean, result.message_tracing.mean])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(
        ["loss_rate", "domo_disp", "tracing_disp"], rows
    ))
    print("paper: Domo 0.05->0.58, MessageTracing 4.02->4.47")
    for rate, domo_d, tracing_d in rows:
        assert domo_d <= tracing_d


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "fig7_packet_loss", config={"rates": list(LOSS_RATES)}
    ) as bench:
        error_rows = _error_sweep(trace)
        bound_rows = []
        disp_rows = []
        for rate in LOSS_RATES:
            lossy = _lossy(trace, rate)
            bounds = evaluate_bounds(lossy, max_packets=BOUND_SAMPLE,
                                     domo_config=default_domo_config())
            displacement = evaluate_displacement(lossy)
            bound_rows.append([rate, bounds.domo.mean, bounds.mnt.mean])
            disp_rows.append(
                [rate, displacement.domo.mean,
                 displacement.message_tracing.mean]
            )
        bench.record(
            domo_err_ms={str(r[0]): r[1] for r in error_rows},
            domo_bound_ms={str(r[0]): r[1] for r in bound_rows},
        )
    print(format_sweep_table(
        ["loss_rate", "domo_err_ms", "mnt_err_ms"], error_rows
    ))
    print()
    print(format_sweep_table(
        ["loss_rate", "domo_bound_ms", "mnt_bound_ms"], bound_rows
    ))
    print()
    print(format_sweep_table(
        ["loss_rate", "domo_disp", "tracing_disp"], disp_rows
    ))


if __name__ == "__main__":
    main()
