"""Extension: sensitivity of Domo's accuracy to the arrival process.

The paper evaluates only periodic collection. This extension runs the
same comparison under Poisson, bursty and event-driven traffic: Domo's
constraint families make no periodicity assumption, so its advantage
over MNT should persist across arrival processes (the sum-of-delays
anchors need several local packets per window, so very slow background
rates hurt both methods).
"""

from repro.analysis.experiments import evaluate_accuracy
from repro.analysis.scenarios import paper_scenario
from repro.analysis.tables import format_sweep_table
from repro.sim import Simulator
from repro.sim.workloads import (
    BurstyTraffic,
    EventTraffic,
    PeriodicTraffic,
    PoissonTraffic,
)

WORKLOADS = [
    ("periodic", PeriodicTraffic(period_ms=8_000.0)),
    ("poisson", PoissonTraffic(mean_interval_ms=8_000.0)),
    ("bursty", BurstyTraffic(period_ms=16_000.0, burst_size=2)),
    (
        "event",
        EventTraffic(
            event_interval_ms=10_000.0,
            event_radius_m=100.0,
            background_period_ms=16_000.0,
        ),
    ),
]


def _workload_sweep(num_nodes=64, duration_ms=120_000.0, seed=3):
    rows = []
    for name, workload in WORKLOADS:
        config = paper_scenario(
            num_nodes=num_nodes, seed=seed, duration_ms=duration_ms
        )
        config.workload = workload
        trace = Simulator(config).run()
        result = evaluate_accuracy(trace)
        rows.append(
            [name, trace.num_received, result.domo.mean, result.mnt.mean]
        )
    return rows


def test_ext_workload_sensitivity(benchmark):
    rows = benchmark.pedantic(_workload_sweep, rounds=1, iterations=1)
    print()
    print(format_sweep_table(
        ["workload", "packets", "domo_err_ms", "mnt_err_ms"], rows
    ))
    for name, _, domo_err, mnt_err in rows:
        assert domo_err < mnt_err, f"Domo must beat MNT under {name}"


def main() -> None:
    from benchmarks.harness import BenchHarness

    with BenchHarness(
        "ext_workloads",
        config={"workloads": [name for name, _ in WORKLOADS]},
    ) as bench:
        rows = _workload_sweep()
        bench.record(domo_err_ms={r[0]: r[2] for r in rows})
    print(format_sweep_table(
        ["workload", "packets", "domo_err_ms", "mnt_err_ms"], rows
    ))


if __name__ == "__main__":
    main()
