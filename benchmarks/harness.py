"""Shared benchmark harness: every ``bench_*.py`` emits a machine report.

Wrapping a benchmark ``main()`` body in :class:`BenchHarness` gives it

* an isolated :class:`~repro.obs.registry.MetricsRegistry` plus a root
  ``run`` span, so solver/executor/stream instrumentation recorded during
  the run lands in the report instead of the process-default registry;
* a ``BENCH_<name>.json`` file in ``$BENCH_OUT_DIR`` (or the working
  directory) using the canonical ``domo.run_report/1`` schema with
  ``command = "bench:<name>"`` — the artifact the perf-gate CI job
  uploads and feeds to :mod:`benchmarks.check_regression`.

Headline numbers a gate should compare (estimate counts, throughput)
are recorded explicitly via :meth:`BenchHarness.record` and appear under
the report's ``stats`` key.

Usage::

    def main() -> None:
        with BenchHarness("parallel_scaling", config={...}) as bench:
            rows = run_the_sweep()
            bench.record(num_estimates=..., windows_used=...)
"""

from __future__ import annotations

import os

from repro.obs.registry import isolated_registry
from repro.obs.report import RunReport, build_run_report, write_run_report
from repro.obs.spans import span


def bench_out_dir() -> str:
    """Directory BENCH_*.json files land in (``$BENCH_OUT_DIR`` or cwd)."""
    return os.environ.get("BENCH_OUT_DIR") or os.getcwd()


def bench_report_path(name: str) -> str:
    return os.path.join(bench_out_dir(), f"BENCH_{name}.json")


class BenchHarness:
    """Context manager timing one benchmark run into a RunReport JSON."""

    def __init__(self, name: str, config: dict | None = None) -> None:
        self.name = name
        self.config = dict(config or {})
        self.stats: dict = {}
        self.path: str | None = None
        self.report: RunReport | None = None
        self._scope = None
        self._span = None
        self.registry = None

    def record(self, **values) -> None:
        """Attach headline/parity numbers to the report's ``stats``."""
        self.stats.update(values)

    def __enter__(self) -> "BenchHarness":
        self._scope = isolated_registry()
        self.registry = self._scope.__enter__()
        self._span = span("run")
        self._span.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.__exit__(exc_type, exc, tb)
        try:
            if exc_type is None:
                self.report = build_run_report(
                    f"bench:{self.name}",
                    config=self.config,
                    stats=self.stats,
                    registry=self.registry,
                )
                self.path = bench_report_path(self.name)
                write_run_report(self.path, self.report)
                print(f"\nbench report: {self.path}")
        finally:
            self._scope.__exit__(exc_type, exc, tb)
        return False
