"""Table I: overhead comparison of Domo, MNT and MessageTracing (§V.A).

The paper's table reports four overhead classes. Here each is measured
from the implementation rather than asserted:

* **message** — bytes added to every data packet (Domo: 2-byte
  sum-of-delays + 2-byte e2e timestamp; MNT: 2-byte timestamp + 2-byte
  first-hop receiver id; MessageTracing: none);
* **node computation** — instrumentation work per forwarded packet
  (Domo: two timestamp reads + one addition per hop);
* **PC computation** — measured reconstruction time per packet;
* **node memory** — Domo's constant accumulator state vs MessageTracing's
  per-message log growth, measured from the simulated node logs.
"""

import time

import numpy as np

from benchmarks.conftest import simulated_trace
from repro.analysis.tables import format_sweep_table
from repro.baselines.message_tracing import MessageTracingReconstructor
from repro.baselines.mnt import MntReconstructor
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.sim.packet import DOMO_HEADER_BYTES

MNT_HEADER_BYTES = 4  # 2-byte e2e timestamp + 2-byte first-hop receiver id
TRACING_HEADER_BYTES = 0
#: flash bytes per logged event (packet id 3B + type 1B + timestamp 2B).
LOG_ENTRY_BYTES = 6
#: Domo's node-side state: 2B accumulator + 2B scratch timestamps (§V.A
#: reports < 80 bytes of ROM for the whole instrumentation).
DOMO_NODE_STATE_BYTES = 8


def measure_pc_costs(trace):
    """Measured PC-side reconstruction cost per packet, per method (ms)."""
    started = time.perf_counter()
    DomoReconstructor(DomoConfig()).estimate(trace)
    domo_ms = 1000.0 * (time.perf_counter() - started) / trace.num_received

    started = time.perf_counter()
    MntReconstructor().reconstruct(trace)
    mnt_ms = 1000.0 * (time.perf_counter() - started) / trace.num_received

    started = time.perf_counter()
    MessageTracingReconstructor().global_transmission_order(trace)
    tracing_ms = 1000.0 * (time.perf_counter() - started) / trace.num_received
    return domo_ms, mnt_ms, tracing_ms


def measure_node_memory(trace):
    """Peak per-node storage in bytes: Domo constant vs log growth."""
    tracing_bytes = max(
        len(log) * LOG_ENTRY_BYTES for log in trace.node_logs.values()
    )
    return DOMO_NODE_STATE_BYTES, DOMO_NODE_STATE_BYTES, tracing_bytes


def build_table(trace):
    domo_ms, mnt_ms, tracing_ms = measure_pc_costs(trace)
    domo_mem, mnt_mem, tracing_mem = measure_node_memory(trace)
    return [
        ["message bytes/pkt", DOMO_HEADER_BYTES, MNT_HEADER_BYTES,
         TRACING_HEADER_BYTES],
        ["node ops/hop", 3, 2, 2],  # timestamp reads + additions
        ["PC ms/packet", round(domo_ms, 2), round(mnt_ms, 2),
         round(tracing_ms, 2)],
        ["node memory B", domo_mem, mnt_mem, tracing_mem],
    ]


def test_table1_overhead(benchmark, fig6_trace):
    rows = benchmark.pedantic(
        build_table, args=(fig6_trace,), rounds=1, iterations=1
    )
    print()
    print(format_sweep_table(
        ["overhead", "Domo", "MNT", "MsgTracing"], rows
    ))
    print("paper Table I: message 4B / 4B / 0B; node memory low/low/high")

    message_row = rows[0]
    assert message_row[1] == 4 and message_row[2] == 4 and message_row[3] == 0
    memory_row = rows[3]
    assert memory_row[3] > 100 * memory_row[1], (
        "MessageTracing's log must dwarf Domo's constant node state"
    )
    pc_row = rows[2]
    assert pc_row[3] < pc_row[1], (
        "MessageTracing's PC cost is lower than Domo's (paper: low vs modest)"
    )


def main() -> None:
    from benchmarks.harness import BenchHarness

    trace = simulated_trace()
    print(f"trace: {trace.num_received} packets\n")
    with BenchHarness(
        "table1_overhead", config={"packets": trace.num_received}
    ) as bench:
        rows = build_table(trace)
        bench.record(
            domo_message_bytes=rows[0][1],
            domo_pc_ms_per_packet=rows[2][1],
            domo_node_memory_bytes=rows[3][1],
        )
    print(format_sweep_table(
        ["overhead", "Domo", "MNT", "MsgTracing"], rows
    ))


if __name__ == "__main__":
    main()
