"""Tests of the serve wire protocol: parsing, encoding, round-trips."""

import json
import math

import pytest

from repro.serve.protocol import (
    CommandLine,
    ProtocolError,
    RecordLine,
    arrival_key_of,
    committed_window_to_json,
    encode_record,
    encode_response,
    error_response,
    estimate_key,
    parse_line,
)

from tests.core.conftest import make_received


def _packet():
    packet, _ = make_received(3, 7, (3, 1, 0), (100.0, 110.5, 123.25), 17)
    return packet


def test_record_line_round_trips_through_the_wire_encoding():
    packet = _packet()
    wire = encode_record("sensors", packet)
    assert wire.endswith(b"\n") and wire.count(b"\n") == 1
    parsed = parse_line(wire.decode("utf-8"))
    assert isinstance(parsed, RecordLine)
    assert parsed.stream == "sensors"
    assert parsed.packet == packet  # dataclass equality, float-exact


def test_record_without_stream_key_lands_on_the_default_stream():
    packet = _packet()
    item = json.loads(encode_record("x", packet))
    del item["stream"]
    parsed = parse_line(json.dumps(item))
    assert parsed.stream == "default"
    assert parsed.packet == packet


def test_command_lines_parse_case_insensitively():
    parsed = parse_line("results sensors --since 3")
    assert isinstance(parsed, CommandLine)
    assert parsed.verb == "RESULTS"
    assert parsed.args == ("sensors", "--since", "3")
    assert parse_line("   \n") is None


@pytest.mark.parametrize(
    "line",
    [
        "{not json",
        '{"id": [1]}',  # record missing fields
        '{"stream": "", "id": [1, 2]}',  # empty stream id
        '{"stream": "a b", "id": [1, 2]}',  # whitespace in stream id
        '{"stream": 5, "id": [1, 2]}',  # non-string stream id
    ],
)
def test_malformed_record_lines_raise_protocol_error(line):
    with pytest.raises(ProtocolError):
        parse_line(line)


def test_overlong_stream_id_is_rejected():
    with pytest.raises(ProtocolError):
        parse_line(json.dumps({"stream": "s" * 129}))


def test_encode_response_is_strict_json():
    assert json.loads(encode_response({"ok": True})) == {"ok": True}
    with pytest.raises(ValueError):
        encode_response({"ok": True, "bad": float("nan")})
    with pytest.raises(ValueError):
        encode_response({"ok": True, "bad": math.inf})


def test_error_response_shape():
    reply = error_response("boom", stream="s", **{"async": True})
    assert reply["ok"] is False
    assert reply["error"] == "boom"
    assert reply["async"] is True and reply["stream"] == "s"


def test_estimate_key_round_trip():
    from repro.core.records import ArrivalKey
    from repro.sim.packet import PacketId

    key = ArrivalKey(PacketId(12, 345), 2)
    text = estimate_key(key)
    assert text == "12:345:2"
    assert arrival_key_of(text) == key
    with pytest.raises(ProtocolError):
        arrival_key_of("12:x:2")
    with pytest.raises(ProtocolError):
        arrival_key_of("12:3")


def test_committed_window_estimates_survive_json_bit_for_bit():
    """The parity contract: repr-based float serialization round-trips."""
    from dataclasses import dataclass

    from repro.core.records import ArrivalKey
    from repro.core.windows import TimeWindow
    from repro.sim.packet import PacketId

    @dataclass
    class FakeCommit:
        solve_index: int
        grid_index: int
        window: TimeWindow
        estimates: dict
        num_estimates: int

    # Awkward floats: results of real arithmetic, not round literals.
    estimates = {
        ArrivalKey(PacketId(1, i), 1): 100.0 / 3.0 + i * 0.1 for i in range(5)
    }
    row = committed_window_to_json(
        FakeCommit(
            solve_index=4,
            grid_index=6,
            window=TimeWindow(0.0, 10.0, 0.0, 5.0),
            estimates=estimates,
            num_estimates=len(estimates),
        )
    )
    decoded = json.loads(json.dumps(row))
    rebuilt = {
        arrival_key_of(text): value
        for text, value in decoded["estimates"].items()
    }
    assert rebuilt == estimates  # bit-identical floats
    assert decoded["solve_index"] == 4 and decoded["num_estimates"] == 5
