"""Per-stream estimator backends through the serve tier.

The acceptance criterion of the backend subsystem: a served stream
opened with ``"backend": "cs"`` returns CS results while a concurrent
default (``domo-qp``) stream on the same server stays *bit-identical* to
a server that never saw a CS stream. Plus the admission semantics (a
backend choice binds at stream open, conflicts are rejected, unknown
names never open a stream) and durability (a crashed CS stream recovers
as a CS stream).
"""

import threading

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.client import connect
from repro.serve.durability import DurabilityConfig
from repro.serve.server import ReconstructionServer, run_in_thread
from repro.serve.session import BackendMismatchError, SessionManager
from repro.sim import NetworkConfig, simulate_network


def _packets(seed=7):
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=seed,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


@pytest.fixture
def sock_path(tmp_path):
    return str(tmp_path / "domo.sock")


# -- manager-level admission semantics ----------------------------------


def test_backend_binds_at_stream_open_and_conflicts_reject():
    manager = SessionManager(DomoConfig())
    try:
        session = manager.get_or_create("s", backend="cs")
        assert session.backend == "cs"
        assert session.config.backend == "cs"
        # No choice on the wire, or the same choice again: the live
        # session answers.
        assert manager.get_or_create("s") is session
        assert manager.get_or_create("s", backend="cs") is session
        with pytest.raises(BackendMismatchError, match="cannot switch"):
            manager.get_or_create("s", backend="domo-qp")
        # The default stream keeps the shared config object untouched.
        default = manager.get_or_create("d")
        assert default.backend == "domo-qp"
        assert default.config is manager.config
    finally:
        manager.close()


def test_unknown_backend_never_opens_a_stream():
    manager = SessionManager(DomoConfig())
    try:
        with pytest.raises(ValueError, match="not registered"):
            manager.get_or_create("s", backend="nope")
        assert manager.get("s") is None
    finally:
        manager.close()


def test_manager_runs_both_backends_without_contamination():
    packets = _packets()
    reference = DomoReconstructor(DomoConfig()).estimate(packets)

    manager = SessionManager(DomoConfig())
    try:
        qp = manager.get_or_create("qp")
        cs = manager.get_or_create("cstream", backend="cs")
        for lo in range(0, len(packets), 13):
            qp.ingest(packets[lo:lo + 13])
            cs.ingest(packets[lo:lo + 13])
        manager.drain_all()
        assert manager.stats()["streams"]["qp"]["backend"] == "domo-qp"
        assert manager.stats()["streams"]["cstream"]["backend"] == "cs"

        from repro.serve.protocol import arrival_key_of

        def merged(session):
            estimates = {}
            for row in session.results:
                for text, value in row["estimates"].items():
                    estimates[arrival_key_of(text)] = value
            return estimates

        qp_estimates, cs_estimates = merged(qp), merged(cs)
        # The domo-qp stream is bit-identical to a batch run — sharing
        # the pool with a CS stream changed nothing.
        assert qp_estimates == reference.estimates
        # The CS stream covered the same unknowns with its own values.
        assert set(cs_estimates) == set(qp_estimates)
        assert cs_estimates != qp_estimates
    finally:
        manager.close()


# -- over the wire -------------------------------------------------------


def test_served_cs_stream_leaves_concurrent_qp_stream_unaffected(sock_path):
    packets = _packets()

    def run_server(feed_cs):
        handle = run_in_thread(
            ReconstructionServer(DomoConfig(), socket_path=sock_path)
        )
        try:
            failures = []

            def feed(stream, backend):
                try:
                    with connect(socket_path=sock_path) as client:
                        client.send_packets(
                            packets, stream=stream, backend=backend
                        )
                        assert client.health()["ok"]
                        failures.extend(client.async_errors)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)

            threads = [threading.Thread(target=feed, args=("qp", None))]
            if feed_cs:
                threads.append(
                    threading.Thread(target=feed, args=("cstream", "cs"))
                )
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures
            with connect(socket_path=sock_path) as query:
                assert query.flush("qp")["ok"]
                qp = query.estimates("qp")
                cs = None
                if feed_cs:
                    assert query.flush("cstream")["ok"]
                    cs = query.estimates("cstream")
            return qp, cs
        finally:
            handle.stop()

    with_cs, cs = run_server(feed_cs=True)
    alone, _ = run_server(feed_cs=False)
    # The criterion: the domo-qp stream is bit-identical whether or not
    # a CS stream ran concurrently on the same server and pool.
    assert with_cs == alone
    assert set(cs) == set(with_cs)
    assert cs != with_cs


def test_backend_conflict_on_a_live_stream_is_an_async_error(sock_path):
    packets = _packets()
    handle = run_in_thread(
        ReconstructionServer(DomoConfig(), socket_path=sock_path)
    )
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets[:10], stream="s")
            assert client.health()["ok"]
            assert not client.async_errors
            client.send_packet(packets[10], stream="s", backend="cs")
            assert client.health()["ok"]
            assert any(
                "cannot switch" in error.get("error", "")
                for error in client.async_errors
            )
            # An unknown backend name never opens its stream.
            client.send_packet(packets[11], stream="t", backend="nope")
            assert client.health()["ok"]
            assert any(
                "not registered" in error.get("error", "")
                for error in client.async_errors
            )
            reply = client.results("t")
            assert not reply["ok"] and "unknown stream" in reply["error"]
    finally:
        handle.stop()


# -- durability ----------------------------------------------------------


def test_crashed_cs_stream_recovers_as_a_cs_stream(tmp_path):
    packets = _packets()

    def manager():
        return SessionManager(
            DomoConfig(),
            durability=DurabilityConfig(
                wal_dir=tmp_path / "wal", snapshot_interval=3
            ),
        )

    crashed = manager()
    session = crashed.get_or_create("s", backend="cs")
    for lo in range(0, len(packets), 16):
        session.ingest(packets[lo:lo + 16])
    session.flush()
    expected = list(session.results)
    crashed.pool.close()  # simulate death: no drain, no close

    recovered = manager()
    try:
        summary = recovered.recover_all()
        assert set(summary) == {"s"}
        assert summary["s"]["failed"] is None
        session = recovered.get("s")
        # The backend survives the crash — via snapshot or, before the
        # first snapshot, the backend meta file next to the WAL.
        assert session.backend == "cs"
        assert session.config.backend == "cs"
        assert session.results == expected  # bit-identical replay
    finally:
        recovered.close()


def test_backend_meta_alone_recovers_pre_snapshot_crash(tmp_path):
    packets = _packets()
    durability = DurabilityConfig(
        # A huge cadence: the crash happens before any snapshot exists.
        wal_dir=tmp_path / "wal", snapshot_interval=10_000
    )
    crashed = SessionManager(DomoConfig(), durability=durability)
    session = crashed.get_or_create("s", backend="cs")
    session.ingest(packets[:32])
    crashed.pool.close()

    recovered = SessionManager(DomoConfig(), durability=durability)
    try:
        summary = recovered.recover_all()
        assert summary["s"]["snapshot_cursor"] is None
        assert recovered.get("s").backend == "cs"
    finally:
        recovered.close()
