"""Tests of the shared solver pool: routing, fairness, lifecycle."""

import threading

import pytest

from repro.runtime.executor import WindowSolveSpec, execute_windows
from repro.serve.pool import SharedSolverPool

from tests.runtime.test_executor import _systems


def _reference(systems):
    report = execute_windows(systems, WindowSolveSpec())
    return {r.window_index: r.estimates for r in report.results}


def test_two_sessions_get_their_own_results_with_local_indices():
    systems = _systems()
    assert len(systems) >= 2
    reference = _reference(systems)
    pool = SharedSolverPool(WindowSolveSpec())
    alice = pool.session("alice")
    bob = pool.session("bob")
    # Interleaved submissions; each session indexes its windows from 0.
    a_map, b_map = {}, {}
    for global_index, ws in enumerate(systems):
        if global_index % 2 == 0:
            alice.submit(len(a_map), ws)
            a_map[len(a_map)] = global_index
        else:
            bob.submit(len(b_map), ws)
            b_map[len(b_map)] = global_index
    a_results = alice.drain(block=True)
    b_results = bob.drain(block=True)
    pool.close()
    assert sorted(r.window_index for r in a_results) == sorted(a_map)
    assert sorted(r.window_index for r in b_results) == sorted(b_map)
    for results, mapping in ((a_results, a_map), (b_results, b_map)):
        for result in results:
            expected = reference[mapping[result.window_index]]
            assert result.estimates == expected  # bit-identical floats


def test_round_robin_keeps_a_small_stream_ahead_of_a_flood():
    """A stream with 2 windows queued behind a stream with many must get
    solver slots interleaved, not after the whole flood."""
    systems = _systems(span_ms=500.0)  # many small windows
    assert len(systems) >= 8
    pool = SharedSolverPool(WindowSolveSpec())
    dispatch_order = []
    real_submit = pool._executor.submit

    def recording_submit(ticket, ws, spec=None):
        dispatch_order.append(pool._routes[ticket][0])
        real_submit(ticket, ws, spec)

    pool._executor.submit = recording_submit
    flood = pool.session("flood")
    trickle = pool.session("trickle")
    for index, ws in enumerate(systems):
        flood.submit(index, ws)
    arrived_at = len(dispatch_order)
    for index, ws in enumerate(systems[:2]):
        trickle.submit(index, ws)
    trickle.drain(block=True)
    flood.drain(block=True)
    pool.close()
    after = dispatch_order[arrived_at:]
    positions = [i for i, sid in enumerate(after) if sid == "trickle"]
    assert len(positions) == 2
    # Round-robin: both trickle windows dispatch within the first few
    # slots after arriving, never behind the flood's whole backlog.
    assert positions[-1] <= 4, dispatch_order


def test_release_refuses_outstanding_work_then_succeeds_after_drain():
    systems = _systems()
    pool = SharedSolverPool(WindowSolveSpec())
    facade = pool.session("s")
    facade.submit(0, systems[0])
    with pytest.raises(RuntimeError, match="outstanding"):
        pool.release("s")
    facade.drain(block=True)
    pool.release("s")
    assert pool.stats()["sessions"] == 0
    with pytest.raises(ValueError, match="already registered"):
        pool.session("t")._pool.session("t")
    pool.close()


def test_session_executor_proxies_executor_facts():
    pool = SharedSolverPool(WindowSolveSpec())
    facade = pool.session("s")
    assert facade.mode == "serial"
    assert facade.workers == 1
    assert facade.fallback_reason is None
    assert facade.in_flight == 0
    facade.close()  # must be a no-op: the pool owns the executor
    assert pool.stats()["sessions"] == 1
    pool.close()


def test_concurrent_sessions_from_threads_route_correctly():
    """Session threads submit and blocking-drain concurrently; whoever
    drains the executor, every result lands in its owner's mailbox."""
    systems = _systems()
    reference = _reference(systems)
    pool = SharedSolverPool(WindowSolveSpec())
    outcomes = {}
    errors = []
    lock = threading.Lock()

    def worker(name, offset):
        try:
            facade = pool.session(name)
            mapping = {}
            for local, global_index in enumerate(
                range(offset, len(systems), 2)
            ):
                facade.submit(local, systems[global_index])
                mapping[local] = global_index
            results = facade.drain(block=True)
            with lock:
                outcomes[name] = (mapping, results)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(name, offset))
        for offset, name in enumerate(("even", "odd"))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    pool.close()
    assert not errors, errors
    for name, (mapping, results) in outcomes.items():
        assert sorted(r.window_index for r in results) == sorted(mapping)
        for result in results:
            assert result.estimates == reference[mapping[result.window_index]]


def test_pool_registry_collects_solver_metrics():
    systems = _systems()
    pool = SharedSolverPool(WindowSolveSpec())
    facade = pool.session("s")
    for index, ws in enumerate(systems):
        facade.submit(index, ws)
    facade.drain(block=True)
    pool.close()
    snapshot = pool.registry.snapshot()
    assert snapshot["counters"].get("executor.submitted") == len(systems)
    assert snapshot["counters"].get("executor.drained") == len(systems)


def test_submit_after_release_raises_a_clear_error():
    """A released lane must refuse new work with a named error, not the
    bare KeyError that used to surface through FLUSH."""
    systems = _systems()
    pool = SharedSolverPool(WindowSolveSpec())
    facade = pool.session("s")
    pool.release("s")
    with pytest.raises(RuntimeError, match="not registered"):
        facade.submit(0, systems[0])
    pool.close()
