"""Crash-injection tests: SIGKILL the durable server at seeded points
and assert recovery is invisible in the results.

Every scenario runs ``domo serve --supervise --wal-dir`` as a real
subprocess, kills it (from the inside, via ``DOMO_CRASHPOINTS``) at a
specific place in the durability pipeline, lets the supervisor restart
it, and drives the same trace through a resuming client. The RESULTS
rows must be bit-for-bit identical to an uncrashed run with the same
flush choreography — crash recovery is correct only if it is
indistinguishable from never having crashed.
"""

import time

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.client import connect
from repro.serve.server import ReconstructionServer, run_in_thread

from .crash_harness import (
    ServeProcess,
    drive,
    make_packets,
    merged_estimates,
    window_rows,
)

#: small ingest batches so per-batch crash points have many arming
#: opportunities within the ~100-packet trace.
CHUNK = 16

_PACKETS = None
_REFERENCES: dict = {}


def packets():
    global _PACKETS
    if _PACKETS is None:
        _PACKETS = make_packets()
    return _PACKETS


def reference_rows(flush_at=()):
    """RESULTS rows of an uncrashed in-process server run with the same
    flush choreography (cached per choreography)."""
    key = tuple(flush_at)
    if key not in _REFERENCES:
        import tempfile

        with tempfile.TemporaryDirectory() as td:
            sock = f"{td}/ref.sock"
            handle = run_in_thread(
                ReconstructionServer(
                    DomoConfig(), socket_path=sock, chunk=CHUNK
                )
            )
            try:
                reply, resets = drive(sock, packets(), flush_at=flush_at)
            finally:
                handle.stop()
        assert resets == 0
        _REFERENCES[key] = window_rows(reply)
    return _REFERENCES[key]


# (crashpoints spec, flush offsets, minimum kills expected)
KILL_SCENARIOS = {
    "mid_ingest": ("ingest:2", (), 1),
    "mid_wal_append": ("wal_append:3", (), 1),
    "torn_wal_tail": ("wal_torn:2", (), 1),
    "mid_snapshot": ("snapshot:1", (), 1),
    "mid_solve": ("solve:1", (50,), 1),
    "killed_twice": ("ingest:2;ingest:3", (), 2),
}


@pytest.mark.parametrize("scenario", sorted(KILL_SCENARIOS))
def test_seeded_kill_recovers_bit_identical(tmp_path, scenario):
    crashpoints, flush_at, min_kills = KILL_SCENARIOS[scenario]
    wal_dir = tmp_path / "wal"
    with ServeProcess(
        tmp_path,
        wal_dir=wal_dir,
        crashpoints=crashpoints,
        supervise=True,
        extra_args=("--chunk", str(CHUNK)),
    ) as server:
        reply, resets = drive(
            server.sock_path, packets(), flush_at=flush_at
        )
        rows = window_rows(reply)
        with connect(
            socket_path=server.sock_path, connect_retries=40
        ) as query:
            stats = query.stats()
        code, stderr = server.stop()
    assert code == 0, stderr
    assert resets >= min_kills, (
        f"expected >= {min_kills} crash(es), saw {resets} resets\n{stderr}"
    )
    assert "restart" in stderr
    # The final incarnation recovered from disk, not from scratch.
    recovery = stats.get("recovery", {})
    assert "s" in recovery, stats
    assert recovery["s"]["failed"] is None
    if scenario == "torn_wal_tail":
        assert recovery["s"]["torn_records_truncated"] >= 1
    # The acceptance bar: identical committed windows, bit-exact floats.
    assert rows == reference_rows(flush_at)
    if not flush_at:
        # Single end-of-stream flush: also batch-pipeline parity.
        batch = DomoReconstructor(DomoConfig()).estimate(packets())
        assert merged_estimates(reply) == batch.estimates


def test_poisoned_wal_trips_breaker_with_named_error(tmp_path):
    """Mid-log WAL corruption must refuse recovery on every boot and
    surface through the supervisor as one named CrashLoopError carrying
    the WalCorruptionError — not an infinite crash loop."""
    from repro.serve.durability import stream_state_dir
    from repro.serve.durability.wal import WalWriter, wal_segments

    wal_dir = tmp_path / "wal"
    stream_dir = stream_state_dir(wal_dir, "s")
    writer = WalWriter(stream_dir)
    for payload in (b'{"a":1}', b'{"b":2}', b'{"c":3}'):
        writer.append(payload)
    writer.close()
    # Flip a payload byte of the first record: complete record, bad CRC.
    _, segment = wal_segments(stream_dir)[0]
    raw = bytearray(segment.read_bytes())
    raw[8] ^= 0xFF
    segment.write_bytes(bytes(raw))

    server = ServeProcess(
        tmp_path,
        wal_dir=wal_dir,
        supervise=True,
        max_restarts=2,
        backoff_ms=30.0,
    )
    deadline = time.time() + 60.0
    while server.proc.poll() is None and time.time() < deadline:
        time.sleep(0.05)
    code, stderr = server.stop()
    assert code == 2, stderr
    assert "CrashLoopError" in stderr
    assert "WalCorruptionError" in stderr
