"""Crash-injection harness for the durable serve tier.

Runs ``domo serve --supervise --wal-dir`` as a real subprocess with
seeded kill points (``DOMO_CRASHPOINTS``: the child SIGKILLs itself at
the n-th arming of a named point, per incarnation), drives a trace
through a reconnecting client that resumes from the server's durable
offset, and returns the full RESULTS rows so tests can assert they are
bit-for-bit identical to an uncrashed run.

The choreography is deterministic by construction: packets are sent in
sink-arrival order, the server's default ``--lateness-ms inf`` defers
all sealing to FLUSH, and the client flushes at fixed packet offsets —
so two runs that flush at the same offsets commit identical windows
regardless of where (or whether) a crash landed in between.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve.client import _RESET_ERRORS, connect
from repro.serve.protocol import arrival_key_of
from repro.sim import NetworkConfig, simulate_network

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def make_packets(seed=7, num_nodes=16, duration_ms=20_000.0):
    """A small deterministic trace, in sink-arrival order."""
    trace = simulate_network(
        NetworkConfig(
            num_nodes=num_nodes,
            placement="grid",
            duration_ms=duration_ms,
            packet_period_ms=2_500.0,
            seed=seed,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


class ServeProcess:
    """One ``domo serve`` subprocess on a unix socket, durability and
    supervision optional. Use as a context manager; :meth:`stop` sends
    SIGTERM and returns ``(returncode, stderr_text)``."""

    def __init__(
        self,
        tmp_path,
        *,
        wal_dir=None,
        crashpoints=None,
        supervise=False,
        snapshot_interval=4,
        fsync="interval",
        max_restarts=6,
        backoff_ms=50.0,
        extra_args=(),
    ):
        self.sock_path = str(Path(tmp_path) / "crash.sock")
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", self.sock_path,
        ]
        if wal_dir is not None:
            argv += [
                "--wal-dir", str(wal_dir),
                "--fsync", fsync,
                "--snapshot-interval", str(snapshot_interval),
            ]
        if supervise:
            argv += [
                "--supervise",
                "--max-restarts", str(max_restarts),
                "--backoff-ms", str(backoff_ms),
            ]
        argv += list(extra_args)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env.pop("DOMO_CRASH_INCARNATION", None)
        if crashpoints:
            env["DOMO_CRASHPOINTS"] = crashpoints
        else:
            env.pop("DOMO_CRASHPOINTS", None)
        self.proc = subprocess.Popen(
            argv, env=env, stderr=subprocess.PIPE, text=True
        )

    def wait_ready(self, timeout=60.0):
        deadline = time.time() + timeout
        while not os.path.exists(self.sock_path):
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"server exited before binding: "
                    f"{self.proc.communicate()[1]}"
                )
            if time.time() > deadline:
                raise AssertionError("server socket never appeared")
            time.sleep(0.05)
        return self

    def stop(self, timeout=120.0):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            stderr = self.proc.communicate(timeout=timeout)[1]
        except subprocess.TimeoutExpired:
            self.proc.kill()
            stderr = self.proc.communicate()[1]
        return self.proc.returncode, stderr

    def __enter__(self):
        return self.wait_ready()

    def __exit__(self, *exc_info):
        self.stop()


def drive(
    sock_path,
    packets,
    *,
    stream="s",
    flush_at=(),
    max_resets=12,
    connect_retries=80,
    backoff_s=0.1,
):
    """Send the trace, flushing at the given packet offsets (and always
    at the end), surviving any number of server crashes up to
    ``max_resets``. Returns ``(results_reply, resets_survived)``.

    After every connection reset the client re-dials (covering the
    supervisor's restart window) and resumes from the server's durable
    offset — nothing is lost, nothing is double-ingested, so the
    async-error channel must stay empty.
    """
    boundaries = sorted(
        {int(b) for b in flush_at if 0 < int(b) < len(packets)}
    ) + [len(packets)]
    client = connect(
        socket_path=sock_path,
        timeout=120.0,
        connect_retries=connect_retries,
        retry_backoff_s=backoff_s,
    )
    resets = 0

    def survive(step):
        nonlocal resets
        while True:
            try:
                return step()
            except _RESET_ERRORS:
                resets += 1
                if resets > max_resets:
                    raise
                client.reconnect(retries=connect_retries, backoff_s=backoff_s)

    try:
        for end in boundaries:
            def stage(end=end):
                offset = client.durable_offset(stream)
                if offset < end:
                    client.send_packets(packets[offset:end], stream)
                reply = client.flush(stream)
                if not reply.get("ok"):
                    raise AssertionError(f"FLUSH failed: {reply}")
            survive(stage)
        reply = survive(lambda: client.results(stream))
        if not reply.get("ok"):
            raise AssertionError(f"RESULTS failed: {reply}")
        if client.async_errors:
            raise AssertionError(
                f"records were rejected: {client.async_errors}"
            )
        return reply, resets
    finally:
        client.close()


def window_rows(reply):
    """The deterministic content of a RESULTS reply: every committed
    window's identity, bounds, and bit-exact estimates."""
    return [
        (
            w["solve_index"],
            w["grid_index"],
            w["start_ms"],
            w["end_ms"],
            w["estimates"],
        )
        for w in reply["windows"]
    ]


def merged_estimates(reply):
    """All estimates of a RESULTS reply as ``{ArrivalKey: float}`` —
    directly comparable with ``DomoReconstructor.estimate(...).estimates``."""
    merged = {}
    for window in reply["windows"]:
        for key_text, value in window["estimates"].items():
            merged[arrival_key_of(key_text)] = value
    return merged
