"""Unit tests for the WAL and snapshot stores.

The contract under test is the recovery layer's bedrock: a torn tail is
a clean stop (the append never completed), everything else — bad CRC,
mid-log tear, index gap, absurd length prefix — is corruption and must
refuse to replay; snapshots appear atomically or not at all.
"""

import json
import os
import struct
import zlib

import pytest

from repro.serve.durability.snapshot import (
    SNAPSHOT_SCHEMA,
    load_latest_snapshot,
    prune_snapshots,
    snapshot_files,
    snapshot_name,
    write_snapshot,
)
from repro.serve.durability.wal import (
    MAX_RECORD_BYTES,
    WalCorruptionError,
    WalWriter,
    iter_wal,
    segment_name,
    wal_segments,
)

_HEADER = struct.Struct(">II")


def _fill(stream_dir, payloads, **kwargs):
    writer = WalWriter(stream_dir, **kwargs)
    for payload in payloads:
        writer.append(payload)
    writer.close()
    return writer


def test_round_trip_and_reopen_continues_numbering(tmp_path):
    payloads = [f"rec-{i}".encode() for i in range(10)]
    _fill(tmp_path / "w", payloads[:6])
    writer = WalWriter(tmp_path / "w")
    assert writer.next_index == 6
    assert writer.records_truncated == 0
    for payload in payloads[6:]:
        writer.append(payload)
    writer.close()
    assert [p for _, p in iter_wal(tmp_path / "w")] == payloads
    assert [i for i, _ in iter_wal(tmp_path / "w", start_index=7)] == [7, 8, 9]


def test_torn_tail_is_clean_stop_then_truncated_on_reopen(tmp_path):
    stream = tmp_path / "w"
    _fill(stream, [b"alpha", b"beta"])
    # Simulate a SIGKILL mid-append: half of a third record.
    record = _HEADER.pack(5, zlib.crc32(b"gamma")) + b"gamma"
    _, segment = wal_segments(stream)[0]
    with open(segment, "ab") as handle:
        handle.write(record[: len(record) // 2])
    # Readers stop cleanly at the tear.
    assert [p for _, p in iter_wal(stream)] == [b"alpha", b"beta"]
    # The writer truncates it and reuses the index.
    writer = WalWriter(stream)
    assert writer.records_truncated == 1
    assert writer.next_index == 2
    writer.append(b"gamma2")
    writer.close()
    assert [p for _, p in iter_wal(stream)] == [b"alpha", b"beta", b"gamma2"]


def test_crc_corruption_raises_for_reader_and_writer(tmp_path):
    stream = tmp_path / "w"
    _fill(stream, [b"alpha", b"beta", b"gamma"])
    _, segment = wal_segments(stream)[0]
    raw = bytearray(segment.read_bytes())
    raw[_HEADER.size] ^= 0xFF  # first payload byte of record 0
    segment.write_bytes(bytes(raw))
    with pytest.raises(WalCorruptionError, match="CRC"):
        list(iter_wal(stream))
    with pytest.raises(WalCorruptionError, match="CRC"):
        WalWriter(stream)


def test_mid_log_tear_is_corruption_not_torn_tail(tmp_path):
    stream = tmp_path / "w"
    # Tiny segments: every record gets its own file.
    _fill(stream, [b"a" * 40, b"b" * 40, b"c" * 40], segment_bytes=8)
    segments = wal_segments(stream)
    assert len(segments) >= 2
    first_path = segments[0][1]
    first_path.write_bytes(first_path.read_bytes()[:-3])
    with pytest.raises(WalCorruptionError, match="not the final"):
        list(iter_wal(stream))
    with pytest.raises(WalCorruptionError, match="not the final"):
        WalWriter(stream)


def test_segment_gap_is_corruption(tmp_path):
    stream = tmp_path / "w"
    _fill(stream, [b"a" * 40, b"b" * 40, b"c" * 40], segment_bytes=8)
    segments = wal_segments(stream)
    assert len(segments) == 3
    segments[1][1].unlink()
    with pytest.raises(WalCorruptionError, match="missing or renamed"):
        list(iter_wal(stream))


def test_absurd_length_prefix_is_corruption(tmp_path):
    stream = tmp_path / "w"
    stream.mkdir(parents=True)
    bogus = _HEADER.pack(MAX_RECORD_BYTES + 1, 0) + b"xx"
    (stream / segment_name(0)).write_bytes(bogus)
    with pytest.raises(WalCorruptionError, match="length prefix"):
        list(iter_wal(stream))


def test_empty_final_segment_is_tolerated(tmp_path):
    stream = tmp_path / "w"
    _fill(stream, [b"alpha", b"beta"])
    # A rotate that died after creating the file, before any append.
    (stream / segment_name(2)).write_bytes(b"")
    assert [p for _, p in iter_wal(stream)] == [b"alpha", b"beta"]
    writer = WalWriter(stream)
    assert writer.next_index == 2
    writer.append(b"gamma")
    writer.close()
    assert [i for i, _ in iter_wal(stream)] == [0, 1, 2]


def test_rotation_and_prune_through(tmp_path):
    stream = tmp_path / "w"
    writer = WalWriter(stream, segment_bytes=32)
    for i in range(12):
        writer.append(f"payload-{i:02d}".encode())
    assert len(wal_segments(stream)) > 2
    # Prune everything before record 8: whole segments below the cursor
    # go, the rest (and the numbering) survive.
    removed = writer.prune_through(8)
    assert removed >= 1
    kept = [i for i, _ in iter_wal(stream)]
    assert kept == list(range(kept[0], 12))
    assert kept[0] <= 8  # never prunes past the cursor
    writer.append(b"after-prune")
    writer.close()
    assert [p for _, p in iter_wal(stream, start_index=12)] == [b"after-prune"]


@pytest.mark.parametrize(
    "policy,expected",
    [("always", 5), ("never", 0)],
)
def test_fsync_policy_observance(tmp_path, monkeypatch, policy, expected):
    calls = []
    real_fsync = os.fsync

    def counting_fsync(fd):
        calls.append(fd)
        real_fsync(fd)

    monkeypatch.setattr(os, "fsync", counting_fsync)
    writer = WalWriter(tmp_path / "w", fsync=policy)
    writer.append(b"prime")  # first append also syncs the directory
    calls.clear()
    for i in range(5):
        writer.append(f"r{i}".encode())
    assert len(calls) == expected
    if policy == "never":
        writer.close()
        assert calls == []  # 'never' means never, even at close


def test_fsync_interval_batches_syncs(tmp_path, monkeypatch):
    calls = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd))
    )
    writer = WalWriter(
        tmp_path / "w", fsync="interval", fsync_interval_s=3600.0
    )
    writer.append(b"prime")  # first append also syncs the directory
    calls.clear()
    for i in range(5):
        writer.append(f"r{i}".encode())
    assert calls == []  # interval not yet due
    writer.sync(force=True)
    assert len(calls) == 1
    # Records survive without fsync regardless: append always flushes
    # to the kernel, so only power loss — not process death — can lose
    # them.
    assert len(list(iter_wal(tmp_path / "w"))) == 6
    writer.close()


# -- snapshots ----------------------------------------------------------


def _doc(cursor, **extra):
    document = {
        "schema": SNAPSHOT_SCHEMA,
        "wal_cursor": cursor,
        "payload": f"state-at-{cursor}",
    }
    document.update(extra)
    return document


def test_snapshot_round_trip_newest_wins(tmp_path):
    d = tmp_path / "snaps"
    for cursor in (3, 7, 5):
        write_snapshot(d, _doc(cursor))
    loaded = load_latest_snapshot(d)
    assert loaded["wal_cursor"] == 7
    assert loaded["payload"] == "state-at-7"


def test_invalid_newest_snapshot_falls_back_to_older(tmp_path):
    d = tmp_path / "snaps"
    write_snapshot(d, _doc(3))
    # Newest candidate is unparseable garbage (e.g. torn disk write of
    # a non-atomic copy): skipped, not fatal.
    (d / snapshot_name(9)).write_text("{ definitely not json")
    # A parseable one whose document cursor disagrees with its filename
    # is also skipped (renamed by hand, or wrong file).
    (d / snapshot_name(8)).write_text(
        json.dumps({"schema": SNAPSHOT_SCHEMA, "wal_cursor": 4})
    )
    loaded = load_latest_snapshot(d)
    assert loaded["wal_cursor"] == 3


def test_interrupted_snapshot_write_leaves_previous_intact(
    tmp_path, monkeypatch
):
    d = tmp_path / "snaps"
    write_snapshot(d, _doc(3))

    def exploding_replace(src, dst):
        raise OSError("simulated crash between temp write and rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        write_snapshot(d, _doc(9))
    monkeypatch.undo()
    # The half-written temp file is not a snapshot candidate and the
    # previous generation still loads.
    assert [c for c, _ in snapshot_files(d)] == [3]
    assert load_latest_snapshot(d)["wal_cursor"] == 3
    # And the next successful write goes through cleanly.
    write_snapshot(d, _doc(9))
    assert load_latest_snapshot(d)["wal_cursor"] == 9


def test_prune_snapshots_keeps_newest_generations(tmp_path):
    d = tmp_path / "snaps"
    for cursor in (1, 2, 5, 8):
        write_snapshot(d, _doc(cursor))
    removed = prune_snapshots(d, keep=2)
    assert removed == 2
    assert [c for c, _ in snapshot_files(d)] == [5, 8]


def test_write_snapshot_validates_document(tmp_path):
    with pytest.raises(ValueError):
        write_snapshot(tmp_path / "s", {"schema": "wrong", "wal_cursor": 1})
    with pytest.raises(ValueError):
        write_snapshot(
            tmp_path / "s", {"schema": SNAPSHOT_SCHEMA, "wal_cursor": -2}
        )
    with pytest.raises(ValueError):
        # NaN cannot appear in a snapshot: it would not round-trip.
        write_snapshot(
            tmp_path / "s",
            {"schema": SNAPSHOT_SCHEMA, "wal_cursor": 1,
             "bad": float("nan")},
        )
