"""Unit tests for snapshot + WAL-suffix crash recovery at the
SessionManager level (no sockets, no subprocesses).

The invariant: a manager that crashed (abandoned without drain) and a
manager that never crashed, fed the same batches in the same order,
produce bit-identical committed rows — including on unsorted input with
a finite lateness watermark, where results *do* depend on batching and
recovery leans on the WAL recording exact ingest batches.
"""

import pytest

from repro.core.pipeline import DomoConfig
from repro.serve.durability import DurabilityConfig
from repro.serve.durability.recovery import SnapshotConfigMismatchError
from repro.serve.session import SessionManager

from .crash_harness import make_packets

LATENESS_MS = 5_000.0
CHUNK = 16


def _batches(packets):
    return [
        packets[i:i + CHUNK] for i in range(0, len(packets), CHUNK)
    ]


def _manager(wal_dir=None, lateness_ms=LATENESS_MS, **durability_kwargs):
    durability = None
    if wal_dir is not None:
        durability = DurabilityConfig(
            wal_dir=wal_dir, snapshot_interval=3, **durability_kwargs
        )
    return SessionManager(
        DomoConfig(), lateness_ms=lateness_ms, durability=durability
    )


def _unsorted_packets():
    """Simulation-emission order: late packets interleaved, not
    sink-arrival sorted — the case where results depend on batching."""
    from repro.sim import NetworkConfig, simulate_network

    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=11,
        )
    )
    return list(trace.received)


def test_replay_parity_on_unsorted_late_packet_stream(tmp_path):
    packets = _unsorted_packets()
    batches = _batches(packets)
    crash_after = len(batches) // 2

    # Uncrashed reference.
    ref = _manager()
    try:
        session = ref.get_or_create("s")
        for batch in batches:
            session.ingest(batch)
        session.flush()
        expected = list(session.results)
        expected_quarantined = session.engine.report.num_quarantined
    finally:
        ref.close()

    # Crashed run: feed half, abandon without drain (the pool is the
    # only OS resource worth reclaiming; a SIGKILL would not even do
    # that), recover into a fresh manager, feed the rest.
    crashed = _manager(wal_dir=tmp_path / "wal")
    session = crashed.get_or_create("s")
    for batch in batches[:crash_after]:
        session.ingest(batch)
    crashed.pool.close()  # simulate death: no flush, no drain, no close

    recovered = _manager(wal_dir=tmp_path / "wal")
    try:
        summary = recovered.recover_all()
        assert set(summary) == {"s"}
        assert summary["s"]["failed"] is None
        session = recovered.get(stream_id="s")
        # Resume from the durable record count — exactly the batches
        # the WAL already holds are skipped.
        durable = session.records_durable
        assert durable == sum(len(b) for b in batches[:crash_after])
        fed = 0
        for batch in batches:
            if fed + len(batch) > durable:
                session.ingest(batch)
            fed += len(batch)
        session.flush()
        assert session.results == expected
        assert session.engine.report.num_quarantined == expected_quarantined
    finally:
        recovered.close()


def test_recovery_uses_snapshot_and_replays_only_the_suffix(tmp_path):
    packets = make_packets()
    batches = _batches(packets)
    crashed = _manager(wal_dir=tmp_path / "wal")
    session = crashed.get_or_create("s")
    for batch in batches:
        session.ingest(batch)
    crashed.pool.close()

    recovered = _manager(wal_dir=tmp_path / "wal")
    try:
        summary = recovered.recover_all()["s"]
        # snapshot_interval=3: a snapshot exists and bounds the replay.
        assert summary["snapshot_cursor"] is not None
        assert summary["snapshot_cursor"] >= 3
        assert 0 <= summary["wal_records_replayed"] < len(batches)
        assert summary["records_durable"] == len(packets)
    finally:
        recovered.close()


def test_snapshot_config_mismatch_is_a_named_refusal(tmp_path):
    packets = make_packets()
    crashed = _manager(wal_dir=tmp_path / "wal")
    session = crashed.get_or_create("s")
    for batch in _batches(packets):
        session.ingest(batch)
    assert session.snapshot()  # ensure a snapshot exists to disagree with
    crashed.pool.close()

    mismatched = _manager(wal_dir=tmp_path / "wal", lateness_ms=123.0)
    try:
        with pytest.raises(SnapshotConfigMismatchError, match="config"):
            mismatched.recover_all()
    finally:
        mismatched.pool.close()


def test_drained_stream_restores_drained_and_queryable(tmp_path):
    packets = make_packets()
    first = _manager(wal_dir=tmp_path / "wal")
    session = first.get_or_create("s")
    for batch in _batches(packets):
        session.ingest(batch)
    first.close()  # drains: final flush + drained snapshot
    expected = list(session.results)
    assert session.drained

    recovered = _manager(wal_dir=tmp_path / "wal")
    try:
        summary = recovered.recover_all()["s"]
        assert summary["drained"] is True
        session = recovered.get("s")
        assert session.drained
        assert session.results == expected
        assert session.results_since(-1) == expected
        # Drained sessions do not occupy an admission slot.
        assert recovered.active_sessions == 0
    finally:
        recovered.close()


def test_engine_failure_during_replay_is_contained(tmp_path):
    """A batch that deterministically fails the engine (strict
    validation) fails it again on replay — the stream comes back
    ``failed`` with its committed results queryable, instead of the
    whole server refusing to boot."""
    from repro.core.validation import ValidationConfig
    from repro.sim.trace import ReceivedPacket

    config = DomoConfig(validation=ValidationConfig(mode="strict"))
    packets = make_packets()
    poison = ReceivedPacket(
        packet_id=packets[0].packet_id,
        path=packets[0].path,
        generation_time_ms=float("inf"),  # impossible: strict raises
        sink_arrival_ms=packets[0].sink_arrival_ms,
        sum_of_delays_ms=packets[0].sum_of_delays_ms,
    )

    crashed = SessionManager(
        config,
        lateness_ms=LATENESS_MS,
        durability=DurabilityConfig(
            wal_dir=tmp_path / "wal", snapshot_interval=0
        ),
    )
    session = crashed.get_or_create("s")
    session.ingest(packets[:CHUNK])
    try:
        session.ingest([poison])
    except Exception as exc:  # noqa: BLE001 - the pump would contain this
        session.mark_failed(f"{type(exc).__name__}: {exc}")
    assert session.failed is not None
    crashed.pool.close()

    recovered = SessionManager(
        config,
        lateness_ms=LATENESS_MS,
        durability=DurabilityConfig(
            wal_dir=tmp_path / "wal", snapshot_interval=0
        ),
    )
    try:
        summary = recovered.recover_all()["s"]
        assert summary["failed"] is not None
        assert "TraceValidationError" in summary["failed"]
        session = recovered.get("s")
        assert session.failed is not None
        assert session.results_since(-1) == session.results
    finally:
        recovered.close()
