"""End-to-end tests of the asyncio reconstruction server.

Run a real server (unix socket, background thread) and speak the wire
protocol through real sockets — parity, backpressure, admission,
eviction, and the SIGTERM drain (as a subprocess, the way an operator
would hit it).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.client import connect
from repro.serve.server import ReconstructionServer, run_in_thread
from repro.sim import NetworkConfig, simulate_network


def _packets(seed=7):
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=seed,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


@pytest.fixture
def sock_path(tmp_path):
    return str(tmp_path / "domo.sock")


def _serve(sock_path, **kwargs):
    return run_in_thread(
        ReconstructionServer(DomoConfig(), socket_path=sock_path, **kwargs)
    )


def test_concurrent_sharded_ingest_matches_batch_bit_for_bit(sock_path):
    """The acceptance criterion: any sharding/interleaving across
    concurrent connections yields batch-identical results."""
    packets = _packets()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    handle = _serve(sock_path)
    try:
        failures = []

        def feed(shard):
            try:
                with connect(socket_path=sock_path) as client:
                    client.send_packets(shard, stream="s")
                    assert client.health()["ok"]
                    failures.extend(client.async_errors)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=feed, args=(packets[i::3],))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        with connect(socket_path=sock_path) as query:
            reply = query.flush("s")
            assert reply["ok"], reply
            served = query.estimates("s")
    finally:
        report = handle.stop()
    assert served == batch.estimates  # bit-identical floats
    # The shutdown report is schema-valid with near-total coverage.
    assert report.span_coverage >= 0.95
    from repro.obs.report import validate_report

    assert validate_report(report.to_dict()) == []


def test_results_since_is_incremental(sock_path):
    packets = _packets()
    handle = _serve(sock_path)
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets, stream="s")
            client.flush("s")
            full = client.results("s")
            assert full["ok"] and full["count"] >= 2
            cursor = full["windows"][0]["solve_index"]
            rest = client.results("s", since=cursor)
            assert rest["count"] == full["count"] - 1
            assert all(
                w["solve_index"] > cursor for w in rest["windows"]
            )
            # Caught-up cursor: empty page, cursor unchanged.
            done = client.results("s", since=full["last_solve_index"])
            assert done["count"] == 0
            assert done["last_solve_index"] == full["last_solve_index"]
    finally:
        handle.stop()


def test_unknown_stream_and_bad_commands_get_error_lines(sock_path):
    handle = _serve(sock_path)
    try:
        with connect(socket_path=sock_path) as client:
            assert client.health()["ok"]
            reply = client.results("nope")
            assert not reply["ok"] and "unknown stream" in reply["error"]
            reply = client.flush("nope")
            assert not reply["ok"]
            reply = client.command("FROBNICATE now")
            assert not reply["ok"] and "unknown command" in reply["error"]
            reply = client.command("RESULTS s --since elephants")
            assert not reply["ok"]
    finally:
        handle.stop()


def test_malformed_records_get_async_errors_without_killing_the_feed(
    sock_path,
):
    packets = _packets()
    handle = _serve(sock_path)
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets[:5], stream="s")
            client._sock.sendall(b'{"garbage": true}\n')
            client._sock.sendall(b"{not json at all\n")
            client.send_packets(packets[5:10], stream="s")
            reply = client.health()
            assert reply["ok"]
            assert len(client.async_errors) == 2
            stats = client.stats()
            assert stats["server"]["records_accepted"] == 10
            assert stats["server"]["records_rejected"] == 2
    finally:
        handle.stop()


def test_max_sessions_rejection_over_the_wire(sock_path):
    packets = _packets()
    handle = _serve(sock_path, max_sessions=1)
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets[:3], stream="allowed")
            client.send_packets(packets[3:6], stream="refused")
            reply = client.health()
            assert reply["ok"]
            assert len(client.async_errors) == 3
            for error in client.async_errors:
                assert "session limit reached" in error["error"]
                assert error["stream"] == "refused"
            stats = client.stats()
            assert stats["sessions_rejected"] >= 1
            assert "refused" not in stats["streams"]
            # The connection and the admitted stream still work.
            assert client.flush("allowed")["ok"]
    finally:
        handle.stop()


def test_backpressure_bounds_the_queue_and_drops_nothing(sock_path):
    """With a tiny queue and an artificially slow engine, the reader
    parks instead of buffering unboundedly — queue depth stays at or
    under capacity (observable via STATS) and every record sent is
    eventually ingested."""
    packets = _packets()
    capacity = 4
    handle = _serve(sock_path, queue_capacity=capacity, chunk=2)
    server = handle.server
    try:
        with connect(socket_path=sock_path) as primer:
            primer.send_packets(packets[:1], stream="s")
            assert primer.health()["ok"]
        lane = server._lanes["s"]
        real_ingest = lane.session.ingest

        def slow_ingest(batch):
            time.sleep(0.01)
            real_ingest(batch)

        lane.session.ingest = slow_ingest

        depths = []
        stop = threading.Event()

        def watch():
            with connect(socket_path=sock_path) as monitor:
                while not stop.is_set():
                    stats = monitor.stats()
                    entry = stats["streams"].get("s", {})
                    depths.append(entry.get("queue_depth", 0))
                    time.sleep(0.005)

        watcher = threading.Thread(target=watch)
        watcher.start()
        try:
            with connect(socket_path=sock_path) as feeder:
                feeder.send_packets(packets[1:], stream="s")
                assert feeder.health()["ok"]
                assert feeder.async_errors == []
        finally:
            stop.set()
            watcher.join()
        with connect(socket_path=sock_path) as query:
            query.flush("s")
            stats = query.stats()
    finally:
        handle.stop()
    assert max(depths) <= capacity, depths
    assert max(depths) > 0, "backpressure never engaged"
    assert stats["server"]["records_accepted"] == len(packets)
    assert stats["server"]["records_rejected"] == 0
    assert stats["streams"]["s"]["records_in"] == len(packets)


def test_disconnect_evicts_and_results_stay_queryable(sock_path):
    packets = _packets()
    handle = _serve(sock_path)
    server = handle.server
    try:
        with connect(socket_path=sock_path) as feeder:
            feeder.send_packets(packets, stream="s")
            assert feeder.health()["ok"]
        # Last owner gone: the server flushes and drains the session.
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if server.manager.get("s") and server.manager.get("s").drained:
                break
            time.sleep(0.05)
        with connect(socket_path=sock_path) as query:
            stats = query.stats()
            assert stats["sessions_evicted"] == 1
            assert stats["streams"]["s"]["drained"] is True
            served = query.estimates("s")
            assert served  # flushed results remain queryable
            # New records for the drained stream are refused.
            query.send_packets(packets[:1], stream="s")
            assert query.health()["ok"]
            assert any(
                "drained" in e["error"] for e in query.async_errors
            )
    finally:
        handle.stop()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    assert served == batch.estimates  # eviction flush is still parity


def test_strict_validation_poison_fails_lane_without_wedging(sock_path):
    """A parseable-but-invalid record under ``--validate strict`` raises
    inside the engine, on the pump. The lane must fail closed — error
    lines, discarding pump, clean FLUSH error — instead of killing the
    pump and wedging backpressure, eviction, and shutdown forever."""
    from repro.core.validation import ValidationConfig
    from repro.serve.protocol import encode_record

    packets = _packets()
    config = DomoConfig(validation=ValidationConfig(mode="strict"))
    handle = run_in_thread(
        ReconstructionServer(
            config, socket_path=sock_path, queue_capacity=4, chunk=2
        )
    )
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets[:5], stream="s")
            assert client.health()["ok"]
            # json.loads turns 1e999 into inf: the record parses on the
            # wire but strict validation rejects it inside the engine.
            row = json.loads(encode_record("s", packets[5]))
            row["t0"] = 1e999
            client._sock.sendall((json.dumps(row) + "\n").encode())
            # A flood behind the poison: without failure handling the
            # pump dies, the tiny queue fills, and this reader parks
            # forever (the HEALTH below would never get a reply).
            client.send_packets(packets[6:40], stream="s")
            assert client.health()["ok"]
            deadline = time.time() + 30.0
            while time.time() < deadline:
                stats = client.stats()
                if stats["streams"]["s"]["failed"]:
                    break
                time.sleep(0.02)
            assert "TraceValidationError" in stats["streams"]["s"]["failed"]
            # Records after the failure are refused with the reason.
            client.send_packets(packets[40:41], stream="s")
            assert client.health()["ok"]
            assert any(
                "failed" in e["error"] for e in client.async_errors
            )
            # FLUSH reports the failure instead of raising opaquely.
            reply = client.flush("s")
            assert not reply["ok"] and "failed" in reply["error"]
    finally:
        report = handle.stop()  # the regression: this must not wedge
    assert report is not None


def test_record_racing_an_eviction_is_refused_not_silently_lost(sock_path):
    """The eviction flush runs on a worker thread and only flips
    ``drained`` at the very end. A record arriving in that window must
    get an error line (accounted loss), not be accepted and ingested
    into the drained engine — and a later FLUSH must answer cleanly."""
    packets = _packets()
    handle = _serve(sock_path)
    server = handle.server
    try:
        real_evict = server.manager.evict
        started = threading.Event()
        release = threading.Event()

        def slow_evict(session):
            started.set()
            release.wait(30.0)
            real_evict(session)

        server.manager.evict = slow_evict
        try:
            with connect(socket_path=sock_path) as feeder:
                feeder.send_packets(packets, stream="s")
                assert feeder.health()["ok"]
            # Last owner gone: eviction starts (and parks in slow_evict
            # with the flush not yet run, drained still False).
            assert started.wait(30.0)
            with connect(socket_path=sock_path) as late:
                late.send_packets(packets[:3], stream="s")
                assert late.health()["ok"]
                assert len(late.async_errors) == 3
                assert all(
                    "drained" in e["error"] for e in late.async_errors
                )
        finally:
            release.set()
        deadline = time.time() + 30.0
        while time.time() < deadline:
            session = server.manager.get("s")
            if session is not None and session.drained:
                break
            time.sleep(0.02)
        with connect(socket_path=sock_path) as query:
            reply = query.flush("s")  # no KeyError from a released lane
            assert reply["ok"] and reply["drained"] is True
            served = query.estimates("s")
    finally:
        handle.stop()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    assert served == batch.estimates  # refused stragglers changed nothing


def test_nonfinite_response_value_yields_error_line_not_dead_socket(
    sock_path,
):
    packets = _packets()
    handle = _serve(sock_path)
    server = handle.server
    try:
        with connect(socket_path=sock_path) as client:
            client.send_packets(packets, stream="s")
            assert client.flush("s")["ok"]
            session = server.manager.get("s")
            row = session.results[0]
            key = next(iter(row["estimates"]))
            original = row["estimates"][key]
            row["estimates"][key] = float("nan")
            reply = client.results("s")
            assert not reply["ok"]
            assert "strict JSON" in reply["error"]
            # The connection survives and recovers.
            assert client.health()["ok"]
            row["estimates"][key] = original
            assert client.results("s")["ok"]
    finally:
        handle.stop()


def test_sigterm_drains_every_open_window_and_writes_report(tmp_path):
    """Operator-level drain: SIGTERM mid-ingest (connection still open,
    nothing flushed) must seal/solve/commit every window and write a
    valid run report before exit."""
    packets = _packets()
    sock = str(tmp_path / "drain.sock")
    report_path = str(tmp_path / "report.json")
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(repo_src)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", sock, "--metrics-out", report_path,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 30.0
        while not os.path.exists(sock):
            assert time.time() < deadline, "server socket never appeared"
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.05)
        client = connect(socket_path=sock)
        client.send_packets(packets[::2], stream="a")
        client.send_packets(packets[1::2], stream="b")
        assert client.health()["ok"]  # sync: all records are ingested
        proc.send_signal(signal.SIGTERM)
        stderr = proc.communicate(timeout=120)[1]
        assert proc.returncode == 0, stderr
        client.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    with open(report_path, encoding="utf-8") as handle:
        report = json.load(handle)
    from repro.obs.report import validate_report

    assert validate_report(report) == []
    assert report["command"] == "serve"
    assert report["span_coverage"] >= 0.95
    streams = report["stats"]["streams"]
    assert set(streams) == {"a", "b"}
    for entry in streams.values():
        assert entry["drained"] is True
        assert entry["backlog"] == 0
        assert entry["windows_committed"] > 0
    total = sum(e["records_in"] for e in streams.values())
    assert total == len(packets)
