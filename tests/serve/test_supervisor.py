"""Unit tests for the restart supervisor (tiny python -c children)."""

import sys

import pytest

from repro.serve.durability.supervisor import CrashLoopError, Supervisor


def _child(code):
    return [sys.executable, "-c", code]


def test_clean_exit_passes_through():
    supervisor = Supervisor(_child("raise SystemExit(0)"))
    assert supervisor.run() == 0
    assert supervisor.restarts_total == 0


def test_crash_loop_trips_breaker_with_stderr_tail():
    supervisor = Supervisor(
        _child(
            "import sys; print('boom: the disk is haunted', "
            "file=sys.stderr); raise SystemExit(3)"
        ),
        max_restarts=2,
        backoff_s=0.01,
    )
    with pytest.raises(CrashLoopError) as excinfo:
        supervisor.run()
    message = str(excinfo.value)
    assert "3 times in a row" in message
    assert "status 3" in message
    assert "the disk is haunted" in message  # stderr tail is carried
    assert supervisor.restarts_total == 2


def test_transient_crash_recovers_and_returns_clean(tmp_path):
    """A child that dies once and then exits cleanly: one restart, no
    breaker, final code 0."""
    flag = tmp_path / "crashed-once"
    code = (
        "import os, signal, sys\n"
        f"flag = {str(flag)!r}\n"
        "if not os.path.exists(flag):\n"
        "    open(flag, 'w').close()\n"
        "    os.kill(os.getpid(), signal.SIGKILL)\n"
        "raise SystemExit(0)\n"
    )
    supervisor = Supervisor(_child(code), backoff_s=0.01)
    assert supervisor.run() == 0
    assert supervisor.restarts_total == 1


def test_incarnation_env_increments_per_spawn(tmp_path):
    """Each spawn sees its own DOMO_CRASH_INCARNATION, so seeded crash
    points aimed at incarnation 0 do not re-fire in the restarted
    child."""
    log = tmp_path / "incarnations"
    code = (
        "import os, signal, sys\n"
        f"log = {str(log)!r}\n"
        "inc = os.environ['DOMO_CRASH_INCARNATION']\n"
        "with open(log, 'a') as h:\n"
        "    h.write(inc + '\\n')\n"
        "if inc == '0':\n"
        "    os.kill(os.getpid(), signal.SIGKILL)\n"
        "raise SystemExit(0)\n"
    )
    supervisor = Supervisor(_child(code), backoff_s=0.01)
    assert supervisor.run() == 0
    assert log.read_text().split() == ["0", "1"]


def test_validates_arguments():
    with pytest.raises(ValueError):
        Supervisor([])
    with pytest.raises(ValueError):
        Supervisor(_child("pass"), max_restarts=-1)
