"""Tests of session lifecycle: admission, eviction, drain, parity."""

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.session import SessionLimitError, SessionManager
from repro.sim import NetworkConfig, simulate_network


def _packets():
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=7,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


def test_session_flush_is_bit_identical_to_batch():
    packets = _packets()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    manager = SessionManager(DomoConfig())
    session = manager.get_or_create("s")
    # Shard the ingest arbitrarily: lateness=inf defers all sealing.
    for lo in range(0, len(packets), 13):
        session.ingest(packets[lo:lo + 13])
    session.flush()
    manager.close()
    merged = {}
    from repro.serve.protocol import arrival_key_of

    for row in session.results:
        for text, value in row["estimates"].items():
            merged[arrival_key_of(text)] = value
    assert merged == batch.estimates  # bit-identical floats


def test_max_sessions_rejects_with_clean_error():
    manager = SessionManager(DomoConfig(), max_sessions=1)
    manager.get_or_create("first")
    with pytest.raises(SessionLimitError, match="session limit reached"):
        manager.get_or_create("second")
    assert manager.sessions_rejected == 1
    # The existing session is still reachable (idempotent lookup).
    assert manager.get_or_create("first") is manager.get("first")
    manager.close()


def test_drained_sessions_free_their_admission_slot():
    packets = _packets()
    manager = SessionManager(DomoConfig(), max_sessions=1)
    first = manager.get_or_create("first")
    first.ingest(packets[:40])
    first.add_owner(7)
    orphaned = manager.disconnect(7)
    assert orphaned == [first]
    manager.evict(first)
    assert first.drained
    assert manager.sessions_evicted == 1
    assert manager.active_sessions == 0
    # Results survive eviction; the slot is free for a new stream.
    assert first.results, "eviction must flush and keep results"
    second = manager.get_or_create("second")
    assert second is not first
    manager.close()


def test_disconnect_only_orphans_when_last_owner_leaves():
    manager = SessionManager(DomoConfig())
    session = manager.get_or_create("s")
    session.add_owner(1)
    session.add_owner(2)
    assert manager.disconnect(1) == []
    assert manager.disconnect(2) == [session]
    # A connection that never fed the stream orphans nothing.
    assert manager.disconnect(99) == []
    manager.close()


def test_drain_all_commits_every_sealed_window():
    packets = _packets()
    manager = SessionManager(DomoConfig(), max_sessions=4)
    for index, stream in enumerate(("a", "b")):
        session = manager.get_or_create(stream)
        session.ingest(packets[index::2])
    committed = manager.drain_all()
    assert committed > 0
    for stream in ("a", "b"):
        session = manager.get(stream)
        assert session.drained
        assert session.engine.backlog == 0
        assert session.results
    # Idempotent: a second drain has nothing left to commit.
    assert manager.drain_all() == 0
    manager.close()


def test_double_drain_and_post_drain_queries_are_safe():
    packets = _packets()
    manager = SessionManager(DomoConfig())
    session = manager.get_or_create("s")
    session.ingest(packets[:30])
    session.drain()
    rows = session.results_since(-1)
    session.drain()  # no-op
    assert session.results_since(-1) == rows
    since = rows[0]["solve_index"] if rows else -1
    assert all(
        row["solve_index"] > since for row in session.results_since(since)
    )
    manager.close()


def test_merged_registry_aggregates_sessions_and_pool():
    packets = _packets()
    manager = SessionManager(DomoConfig())
    for index, stream in enumerate(("a", "b")):
        session = manager.get_or_create(stream)
        session.ingest(packets[index::2])
    manager.drain_all()
    merged = manager.merged_registry().snapshot()
    # Solver-side counters come from the pool registry...
    assert merged["counters"].get("executor.drained", 0) > 0
    # ...and per-stream ingest gauges from the session registries.
    assert "stream.ingested" in merged["gauges"]
    manager.close()


def test_manager_stats_shape():
    manager = SessionManager(DomoConfig(), max_sessions=8)
    session = manager.get_or_create("s")
    session.add_owner(1)
    stats = manager.stats()
    assert stats["max_sessions"] == 8
    assert stats["active_sessions"] == 1
    assert stats["pool"]["mode"] == "serial"
    entry = stats["streams"]["s"]
    assert entry["owners"] == 1
    assert entry["drained"] is False
    manager.close()


def test_drain_survives_a_failing_flush_and_still_releases():
    """A broken engine (strict-validation rejection mid-stream) must not
    wedge eviction or shutdown: drain records the failure, marks the
    session drained, and manager.close() still completes."""
    packets = _packets()
    manager = SessionManager(DomoConfig())
    session = manager.get_or_create("s")
    session.ingest(packets[:30])

    def exploding_flush():
        raise ValueError("engine broken")

    session.flush = exploding_flush
    session.drain()
    assert session.drained is True
    assert "engine broken" in session.failed
    assert manager.stats()["streams"]["s"]["failed"] == session.failed
    manager.close()  # completes despite the failed session
