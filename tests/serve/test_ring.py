"""Unit tests of the consistent-hash ring.

Placement is an operational contract, not an implementation detail: the
router, a restarted router, and out-of-process tooling must all compute
the same ``stream -> shard`` map, and topology changes must move only
the departing/arriving shard's arc. These tests pin:

* cross-process determinism (a subprocess with a different
  ``PYTHONHASHSEED`` computes identical assignments — i.e. nothing in
  the ring leans on Python's salted ``hash``);
* insertion-order independence;
* minimal remapping on join/leave (< 2/N of streams move, and a leave
  moves *only* the removed shard's streams);
* stable assignment for the ``""`` and unicode stream-id edge cases.
"""

import json
import os
import random
import subprocess
import sys

import pytest

from repro.serve.router.ring import HashRing

SHARDS = ["shard-0", "shard-1", "shard-2"]


def _keys(n=2000):
    rng = random.Random(11)
    return [f"stream-{rng.randrange(10 ** 9)}" for _ in range(n)]


def test_owner_is_deterministic_and_stable():
    ring = HashRing(SHARDS)
    keys = _keys(200)
    first = {key: ring.owner(key) for key in keys}
    for key in keys:
        assert ring.owner(key) == first[key]
    assert set(first.values()) <= set(SHARDS)


def test_insertion_order_does_not_change_placement():
    keys = _keys(500)
    a = HashRing(SHARDS)
    b = HashRing(list(reversed(SHARDS)))
    c = HashRing([])
    for name in [SHARDS[1], SHARDS[2], SHARDS[0]]:
        c.add(name)
    for key in keys:
        assert a.owner(key) == b.owner(key) == c.owner(key)


def test_cross_process_determinism():
    """A subprocess with a different hash seed computes the same map —
    the property that lets any tool reason about placement offline."""
    keys = ["alpha", "beta", "", "流-θ✓", "a b\tc", "x" * 500]
    script = (
        "import json, sys\n"
        "from repro.serve.router.ring import HashRing\n"
        "ring = HashRing(json.loads(sys.argv[1]))\n"
        "keys = json.loads(sys.argv[2])\n"
        "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
    )
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "12345"
    env["PYTHONPATH"] = os.pathsep.join([src, env.get("PYTHONPATH", "")])
    out = subprocess.run(
        [sys.executable, "-c", script, json.dumps(SHARDS), json.dumps(keys)],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    remote = json.loads(out.stdout)
    local = HashRing(SHARDS)
    assert remote == {key: local.owner(key) for key in keys}


def test_join_moves_less_than_two_over_n():
    keys = _keys()
    before = HashRing(SHARDS)
    owners_before = {key: before.owner(key) for key in keys}
    after = HashRing(SHARDS + ["shard-3"])
    moved = sum(
        1 for key in keys if after.owner(key) != owners_before[key]
    )
    # Expected 1/N of streams move to the newcomer; assert the
    # satellite's bound with room for virtual-node variance.
    assert moved / len(keys) < 2 / 4
    # Every moved stream moved TO the new shard, never between old ones.
    for key in keys:
        if after.owner(key) != owners_before[key]:
            assert after.owner(key) == "shard-3"


def test_leave_moves_only_the_departing_shards_streams():
    keys = _keys()
    before = HashRing(SHARDS)
    owners_before = {key: before.owner(key) for key in keys}
    after = HashRing(SHARDS)
    after.remove("shard-1")
    moved = 0
    for key in keys:
        if owners_before[key] == "shard-1":
            assert after.owner(key) != "shard-1"
            moved += 1
        else:
            assert after.owner(key) == owners_before[key]
    assert moved / len(keys) < 2 / 3
    assert moved > 0  # the removed shard did own something


def test_empty_and_unicode_stream_ids_are_stable():
    ring = HashRing(SHARDS)
    for key in ["", "流-θ✓", "🛰️", "\x00weird", " "]:
        owner = ring.owner(key)
        assert owner in SHARDS
        assert ring.owner(key) == owner  # repeatable
    # Distinct edge-case keys need not collide onto one shard by
    # accident of implementation (regression guard against hashing the
    # repr or truncating).
    assert ring.owner("") == ring.owner("")


def test_successor_skips_excluded_shards():
    ring = HashRing(SHARDS)
    for key in _keys(50):
        owner = ring.owner(key)
        successor = ring.successor(key, exclude={owner})
        assert successor in SHARDS
        assert successor != owner
    with pytest.raises(LookupError):
        ring.successor("any", exclude=set(SHARDS))


def test_rough_balance_with_default_replicas():
    ring = HashRing(SHARDS)
    keys = _keys()
    counts = {name: 0 for name in SHARDS}
    for key in keys:
        counts[ring.owner(key)] += 1
    for name, count in counts.items():
        assert count / len(keys) > 0.10, (name, counts)


def test_topology_validation():
    ring = HashRing([])
    with pytest.raises(ValueError):
        ring.add("")
    with pytest.raises(LookupError):
        ring.owner("anything")
    ring.add("only")
    assert ring.owner("x") == "only"
    ring.add("only")  # idempotent
    assert len(ring) == 1
    ring.remove("missing")  # no-op
    assert ring.shards == ("only",)
