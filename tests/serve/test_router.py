"""End-to-end tests of the sharded serve tier.

Run a real router over real shard servers (unix sockets) and drive the
wire protocol through real client connections. The stakes, in order:

* **bit-parity** — routing records across N shards must yield estimates
  identical (``==`` on floats) to the batch pipeline and to a 1-shard
  tier, because placement only distributes streams, never reorders
  within one;
* **live migration** — ``MIGRATE``/``DRAIN`` move a stream between
  shards mid-feed on the durable state codec without perturbing a
  single bit of its final estimates;
* **failover** — SIGKILL of a supervised shard subprocess mid-stream
  loses nothing: the supervisor restarts it, the router resyncs from
  ``records_durable`` and resends the unacknowledged tail;
* **vector cursors** — a ``RESULTS`` cursor handed back across a
  migration never loses or re-reads a window.
"""

import json
import os
import signal
import sys
import threading
import time

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.serve.client import connect
from repro.serve.durability import DurabilityConfig
from repro.serve.protocol import MAX_ADMIN_LINE_BYTES, encode_record
from repro.serve.router import RouterServer, ShardSpec
from repro.serve.router.router import ShardBackend
from repro.serve.server import (
    ReconstructionServer,
    ServerHandle,
    run_in_thread,
)
from repro.sim import NetworkConfig, simulate_network


def _packets(seed=7):
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=seed,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


def _wait_durable(client, stream, count, timeout=30.0):
    """Poll RESULTS until the shard has made ``count`` records durable
    (forwarding is ordered, but the shard's ingest queue is async)."""
    deadline = time.monotonic() + timeout
    while True:
        reply = client.results(stream)
        if reply["ok"] and reply["records_durable"] >= count:
            return reply
        if time.monotonic() >= deadline:
            raise AssertionError(f"stream {stream!r} stuck at {reply}")
        time.sleep(0.05)


class _Tier:
    """An in-process sharded tier: N thread-hosted shards + the router.

    Shards run as :class:`ReconstructionServer` instances on background
    threads (``argv=None`` specs — externally managed, the router only
    connects), which keeps these tests fast; the subprocess/SIGKILL path
    is exercised separately below.
    """

    def __init__(self, tmp_path, shards=2, durable=True, **router_kwargs):
        tmp_path.mkdir(parents=True, exist_ok=True)
        self.handles = []
        specs = []
        for i in range(shards):
            name = f"shard-{i}"
            sock = str(tmp_path / f"{name}.sock")
            kwargs = {"max_line_bytes": MAX_ADMIN_LINE_BYTES}
            if durable:
                kwargs["durability"] = DurabilityConfig(
                    wal_dir=tmp_path / name / "wal",
                    fsync="always",
                    snapshot_interval=64,
                )
            self.handles.append(
                run_in_thread(
                    ReconstructionServer(
                        DomoConfig(), socket_path=sock, **kwargs
                    )
                )
            )
            specs.append(ShardSpec(name, sock))
        self.specs = specs
        self.state_dir = str(tmp_path / "router-state")
        self.sock = str(tmp_path / "router.sock")
        self.router = RouterServer(
            specs,
            socket_path=self.sock,
            state_dir=self.state_dir,
            **router_kwargs,
        )
        self.handle = ServerHandle(self.router).start()

    def stop(self):
        report = self.handle.stop()
        for handle in self.handles:
            handle.stop()
        return report


def test_routed_ingest_matches_batch_and_single_shard(tmp_path):
    """The acceptance criterion: estimates served through the router
    are bit-identical to the batch pipeline AND to a 1-shard server,
    for streams spread across shards and fed by concurrent clients."""
    packets = _packets()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    streams = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    tier = _Tier(tmp_path / "tier", shards=2)
    try:
        placement = {s: tier.router.owner_of(s) for s in streams}
        assert len(set(placement.values())) == 2, placement
        failures = []

        def feed(assigned):
            try:
                with connect(socket_path=tier.sock) as client:
                    for stream in assigned:
                        client.send_packets(packets, stream=stream)
                    assert client.health()["ok"]
                    failures.extend(client.async_errors)
            except Exception as exc:  # noqa: BLE001
                failures.append(exc)

        threads = [
            threading.Thread(target=feed, args=(streams[i::2],))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        with connect(socket_path=tier.sock) as query:
            routed = {}
            for stream in streams:
                assert query.flush(stream)["ok"]
                routed[stream] = query.estimates(stream)
        report = None
    finally:
        report = tier.stop()
    for stream in streams:
        assert routed[stream] == batch.estimates  # bit-identical floats

    # Same feed against a single-shard tier: identical served output.
    single = _Tier(tmp_path / "single", shards=1)
    try:
        with connect(socket_path=single.sock) as client:
            client.send_packets(packets, stream="alpha")
            assert client.flush("alpha")["ok"]
            assert client.estimates("alpha") == routed["alpha"]
    finally:
        single.stop()

    # The router's shutdown report covers the whole tier.
    assert report is not None
    assert report.stats["router"]["streams"] == len(streams)
    from repro.obs.report import validate_report

    assert validate_report(report.to_dict()) == []


def test_live_migration_mid_stream_is_bit_exact(tmp_path):
    packets = _packets()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    tier = _Tier(tmp_path, shards=2)
    try:
        half = len(packets) // 2
        with connect(socket_path=tier.sock) as client:
            client.send_packets(packets[:half], stream="mig")
            source = tier.router.owner_of("mig")
            reply = client.command("MIGRATE mig")
            assert reply["ok"], reply
            assert reply["from"] == source and reply["to"] != source
            assert tier.router.owner_of("mig") == reply["to"]
            client.send_packets(packets[half:], stream="mig")
            assert client.flush("mig")["ok"]
            assert client.estimates("mig") == batch.estimates
            assert not client.async_errors
        # The override survives a router restart via routing.json...
        with open(os.path.join(tier.state_dir, "routing.json")) as handle:
            routing = json.load(handle)
        assert routing["overrides"]["mig"] == reply["to"]
        # ...which a fresh router instance loads before serving.
        reloaded = RouterServer(
            [ShardSpec(s.name, s.socket_path) for s in tier.specs],
            socket_path=tier.sock + ".2",
            state_dir=tier.state_dir,
        )
        assert reloaded.owner_of("mig") == reply["to"]
    finally:
        tier.stop()


def test_vector_cursor_never_loses_or_duplicates_across_migration(tmp_path):
    tier = _Tier(tmp_path, shards=2)
    packets = _packets()
    half = len(packets) // 2
    try:
        with connect(socket_path=tier.sock) as client:
            client.send_packets(packets[:half], stream="vc")
            assert client.flush("vc")["ok"]
            first = client.results("vc")
            assert first["ok"] and first["count"] >= 1
            cursor = first["cursor"]
            assert cursor.startswith("v@"), cursor
            seen = [w["solve_index"] for w in first["windows"]]

            assert client.command("MIGRATE vc")["ok"]
            client.send_packets(packets[half:], stream="vc")
            assert client.flush("vc")["ok"]

            second = client.results("vc", since=cursor)
            assert second["ok"]
            new = [w["solve_index"] for w in second["windows"]]
            # No window re-read, none skipped: the two pages partition
            # the full result log.
            assert not set(seen) & set(new)
            full = client.results("vc")
            assert sorted(seen + new) == sorted(
                w["solve_index"] for w in full["windows"]
            )
            # A caught-up cursor yields an empty page, idempotently.
            done = client.results("vc", since=second["cursor"])
            assert done["ok"] and done["count"] == 0
    finally:
        tier.stop()


def test_drain_migrates_every_stream_off_the_shard(tmp_path):
    tier = _Tier(tmp_path, shards=3)
    packets = _packets()[:60]
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    streams = [f"d-{i}" for i in range(5)]
    try:
        with connect(socket_path=tier.sock) as client:
            for stream in streams:
                client.send_packets(packets, stream=stream)
            assert client.health()["ok"]
            owners = {s: tier.router.owner_of(s) for s in streams}
            victim = owners[streams[0]]
            expected = {s for s, owner in owners.items() if owner == victim}
            assert expected  # the victim owns at least stream d-0

            reply = client.command(f"DRAIN {victim}")
            assert reply["ok"], reply
            assert victim not in reply["ring"]
            assert {e["stream"] for e in reply["migrated"]} == expected
            for entry in reply["migrated"]:
                assert entry["ok"] and entry["from"] == victim

            # Every stream keeps serving, bit-exactly, from wherever it
            # now lives — and none of them lives on the drained shard.
            for stream in streams:
                assert tier.router.owner_of(stream) != victim
                assert client.flush(stream)["ok"]
                assert client.estimates(stream) == batch.estimates
            stats = client.stats()
            assert stats["routing"][victim]["drained"] is True
            assert stats["routing"][victim]["streams"] == 0

            # Drained shards refuse new placements...
            refused = client.command(f"MIGRATE {streams[0]} {victim}")
            assert not refused["ok"] and "drained" in refused["error"]
            # ...and the tier protects its last shard.
            live = [s for s in sorted(stats["routing"]) if s != victim]
            second = client.command(f"DRAIN {live[0]}")
            assert second["ok"], second
            last = client.command(f"DRAIN {live[1]}")
            assert not last["ok"] and "last shard" in last["error"]
    finally:
        tier.stop()


def test_sigkill_shard_mid_stream_loses_nothing(tmp_path, monkeypatch):
    """SIGKILL a supervised shard subprocess mid-stream: the supervisor
    restarts it, the router resyncs from its recovered durable offset
    and resends the unacknowledged tail — final estimates are
    bit-identical to batch."""
    packets = _packets()
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    # Shard children are spawned by the supervisor with the inherited
    # environment; make sure they can import repro.
    monkeypatch.setenv(
        "PYTHONPATH",
        os.pathsep.join(
            [os.path.join(repo_root, "src")]
            + ([os.environ["PYTHONPATH"]] if os.environ.get("PYTHONPATH") else [])
        ),
    )
    specs = []
    for i in range(2):
        name = f"shard-{i}"
        sock = str(tmp_path / f"{name}.sock")
        specs.append(
            ShardSpec(
                name,
                sock,
                argv=[
                    sys.executable, "-m", "repro.cli", "serve",
                    "--socket", sock,
                    "--wal-dir", str(tmp_path / name / "wal"),
                    "--fsync", "always",
                    "--snapshot-interval", "64",
                    "--max-line-bytes", str(MAX_ADMIN_LINE_BYTES),
                ],
            )
        )
    router = RouterServer(
        specs,
        socket_path=str(tmp_path / "router.sock"),
        state_dir=str(tmp_path / "router-state"),
        supervisor_backoff_s=0.1,
        failover_deadline_s=60.0,
    )
    handle = ServerHandle(router).start(timeout=60.0)
    try:
        stream = "kill-me"
        victim = router.owner_of(stream)
        half = len(packets) // 2
        with connect(
            socket_path=str(tmp_path / "router.sock"), timeout=120.0
        ) as client:
            client.send_packets(packets[:half], stream=stream)
            # HEALTH on the same connection is ordered after the
            # records: once it returns, all of them were forwarded.
            assert client.health()["ok"]
            pid = router._supervisors[victim].child_pid
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            client.send_packets(packets[half:], stream=stream)
            reply = client.flush(stream)  # rides the failover
            assert reply["ok"], reply
            assert client.estimates(stream) == batch.estimates
            assert not client.async_errors
            stats = client.stats()
            assert stats["routing"][victim]["failovers"] >= 1
    finally:
        handle.stop(timeout=120.0)


def test_migration_error_surfaces(tmp_path):
    tier = _Tier(tmp_path, shards=2)
    try:
        with connect(socket_path=tier.sock) as client:
            reply = client.command("MIGRATE s nope")
            assert not reply["ok"] and "unknown shard" in reply["error"]
            # A stream the tier has never seen: EXPORT refuses, the
            # error names the source shard, and nothing changes.
            reply = client.command("MIGRATE ghost-stream")
            assert not reply["ok"], reply
            assert reply["from"] in ("shard-0", "shard-1")
            reply = client.command("DRAIN nope")
            assert not reply["ok"] and "unknown shard" in reply["error"]
            reply = client.command("MIGRATE")
            assert not reply["ok"]
    finally:
        tier.stop()


def test_server_stats_is_safe_under_concurrent_ingest(tmp_path):
    """Satellite: ``ReconstructionServer.stats()`` (used by STATS and
    the shutdown report) must tolerate sessions appearing/evicting on
    other threads — hammer it during a live multi-stream feed."""
    sock = str(tmp_path / "domo.sock")
    server = ReconstructionServer(DomoConfig(), socket_path=sock)
    handle = ServerHandle(server).start()
    packets = _packets()[:80]
    stop = threading.Event()
    errors = []

    def hammer():
        while not stop.is_set():
            try:
                snapshot = server.stats()
                json.dumps(snapshot)  # fully materialized + serializable
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        with connect(socket_path=sock) as client:
            for i in range(8):
                client.send_packets(packets, stream=f"h-{i}")
                assert client.flush(f"h-{i}")["ok"]
    finally:
        stop.set()
        thread.join()
        handle.stop()
    assert not errors, errors


def test_resend_buffer_anchors_to_shard_durable_offset(tmp_path):
    """A buffer first created *after* a router restart must not start
    at base 0: trim() is driven by the shard's global records_durable,
    so a zero base would let the first trim eat the lines forwarded
    since the restart — and a later shard crash would lose them."""
    sock = str(tmp_path / "shard.sock")
    handle = run_in_thread(
        ReconstructionServer(
            DomoConfig(),
            socket_path=sock,
            durability=DurabilityConfig(
                wal_dir=tmp_path / "wal", fsync="always"
            ),
        )
    )
    packets = _packets()[:12]
    try:
        # A previous router lifetime fed 10 records, all durable.
        with connect(socket_path=sock) as client:
            client.send_packets(packets[:10], stream="s")
            assert client.flush("s")["ok"]
            assert client.durable_offset("s") == 10
        # A fresh backend (restarted router) forwards record #11.
        backend = ShardBackend(ShardSpec("shard-0", sock))
        backend.forward_sync("s", encode_record("s", packets[10]))
        buffer = backend.buffers["s"]
        assert buffer.base == 10, "base must anchor at records_durable"
        assert len(buffer.lines) == 1
        # Trimming at the shard's durable count keeps the unacked tail.
        buffer.trim(10)
        assert len(buffer.lines) == 1
        backend.close_sync()
    finally:
        handle.stop()


class _DeadClient:
    """A shard connection that fails every send and every reconnect."""

    closed = False

    def durable_offset(self, stream):
        return 3

    def send_raw(self, data):
        raise BrokenPipeError("shard gone")

    def reconnect(self, **kwargs):
        raise ConnectionError("still gone")

    def close(self):
        pass


def test_rejected_record_is_not_left_in_resend_buffer():
    """When failover fails terminally the client is told the record was
    rejected, so it must not linger in the resend buffer — the client
    will resend it itself, and a buffered copy would be replayed on top
    of that by the next successful failover (double ingest)."""
    backend = ShardBackend(
        ShardSpec("shard-0", "/nonexistent.sock"), failover_deadline_s=0.1
    )
    backend.client = _DeadClient()
    with pytest.raises(ConnectionError):
        backend.forward_sync("s", b'{"stream": "s"}\n')
    buffer = backend.buffers["s"]
    assert buffer.base == 3  # anchored via durable_offset
    assert buffer.lines == []  # the rejected record was popped


def test_failed_migration_restores_stream_to_source(tmp_path):
    """IMPORT *raising* (target dead past the failover deadline) must
    not lose the stream: EXPORT already retired it on the source — WAL
    directory included — so the router re-IMPORTs the document back
    onto the source and keeps serving it there, bit-exactly."""
    tier = _Tier(tmp_path, shards=2, failover_deadline_s=1.0)
    packets = _packets()[:60]
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    try:
        with connect(socket_path=tier.sock) as client:
            client.send_packets(packets[:30], stream="m")
            # fsync=always: ingest makes a record durable, no FLUSH
            # needed (a mid-stream FLUSH would legitimately change the
            # windowing and break the batch-parity check at the end).
            before = _wait_durable(client, "m", 30)
            source = tier.router.owner_of("m")
            target = next(
                s.name for s in tier.specs if s.name != source
            )
            # Stop the target shard: its listener is gone, so the IMPORT
            # round-trip raises instead of returning an error reply.
            tier.handles[int(target.split("-")[1])].stop()
            reply = client.command(f"MIGRATE m {target}")
            assert not reply["ok"], reply
            assert "restored" in reply["error"], reply
            # Still owned by — and served from — the source, with every
            # durable record intact.
            assert tier.router.owner_of("m") == source
            after = client.results("m")
            assert after["ok"] and after["records_durable"] == 30
            assert after["windows"] == before["windows"]
            client.send_packets(packets[30:], stream="m")
            assert client.flush("m")["ok"]
            assert client.estimates("m") == batch.estimates
            assert not client.async_errors
    finally:
        tier.stop()


def test_orphaned_migration_state_survives_double_failure(tmp_path):
    """Target dead *and* source dying before the restore: the exported
    document is the only copy of the stream, so the router parks it in
    the orphans map and a retried MIGRATE moves the parked copy."""
    tier = _Tier(tmp_path, shards=3, failover_deadline_s=1.0)
    packets = _packets()[:60]
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    try:
        with connect(socket_path=tier.sock) as client:
            client.send_packets(packets[:30], stream="o")
            before = _wait_durable(client, "o", 30)
            source = tier.router.owner_of("o")
            dead, alive = [
                s.name for s in tier.specs if s.name != source
            ]
            tier.handles[int(dead.split("-")[1])].stop()
            # Simulate the source crashing between EXPORT and the
            # restore IMPORT: refuse exactly the restore round-trip.
            src_backend = tier.router.backends[source]
            real = src_backend.command_sync

            def refuse_imports(line):
                if line.startswith("IMPORT "):
                    raise ConnectionError("source crashed")
                return real(line)

            src_backend.command_sync = refuse_imports
            try:
                reply = client.command(f"MIGRATE o {dead}")
            finally:
                src_backend.command_sync = real
            assert not reply["ok"], reply
            assert "parked" in reply["error"], reply
            assert client.stats()["router"]["orphans"] == ["o"]
            # The retry finds the source empty (EXPORT retired the
            # stream) and moves the parked copy to a live shard.
            reply = client.command(f"MIGRATE o {alive}")
            assert reply["ok"], reply
            assert tier.router.owner_of("o") == alive
            assert client.stats()["router"]["orphans"] == []
            after = client.results("o")
            assert after["ok"] and after["records_durable"] == 30
            assert after["windows"] == before["windows"]
            client.send_packets(packets[30:], stream="o")
            assert client.flush("o")["ok"]
            assert client.estimates("o") == batch.estimates
            assert not client.async_errors
    finally:
        tier.stop()


def test_drain_discovers_streams_unknown_to_router(tmp_path):
    """Sessions a shard recovered from its WAL are invisible to a fresh
    router's in-memory maps; DRAIN must enumerate the shard's actual
    sessions (via STATS) instead of stranding them off the ring."""
    packets = _packets()[:60]
    batch = DomoReconstructor(DomoConfig()).estimate(packets)
    tier = _Tier(tmp_path, shards=2)
    streams = [f"w-{i}" for i in range(4)]
    router_stopped = False
    try:
        with connect(socket_path=tier.sock) as client:
            for stream in streams:
                client.send_packets(packets, stream=stream)
            for stream in streams:
                assert client.flush(stream)["ok"]
        owners = {s: tier.router.owner_of(s) for s in streams}
        victim = owners[streams[0]]
        expected = {s for s, owner in owners.items() if owner == victim}
        # Router restart: the new instance has never routed a record,
        # so _streams is empty (no migrations -> no overrides either).
        tier.handle.stop()
        router_stopped = True
        router2 = RouterServer(
            [ShardSpec(s.name, s.socket_path) for s in tier.specs],
            socket_path=tier.sock + ".2",
            state_dir=tier.state_dir,
        )
        handle2 = ServerHandle(router2).start()
        try:
            with connect(socket_path=tier.sock + ".2") as client:
                reply = client.command(f"DRAIN {victim}")
                assert reply["ok"], reply
                migrated = {e["stream"] for e in reply["migrated"]}
                assert expected <= migrated, (expected, migrated)
                for stream in expected:
                    res = client.results(stream)
                    assert res["ok"] and res["shard"] != victim
                    assert client.estimates(stream) == batch.estimates
        finally:
            handle2.stop()
    finally:
        if not router_stopped:
            tier.handle.stop()
        for handle in tier.handles:
            handle.stop()


def test_router_stats_is_safe_under_concurrent_ingest(tmp_path):
    """STATS sums per-shard resend buffers from the event loop while
    to_thread forward workers insert new streams into the same dicts;
    the locked snapshot must never see 'dict changed size during
    iteration' (surfacing as a spurious STATS error reply)."""
    tier = _Tier(tmp_path, shards=2, durable=False)
    packets = _packets()[:20]
    errors = []
    stop = threading.Event()

    def hammer():
        try:
            with connect(socket_path=tier.sock) as client:
                while not stop.is_set():
                    reply = client.stats()
                    assert reply["ok"], reply
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    thread = threading.Thread(target=hammer)
    thread.start()
    try:
        with connect(socket_path=tier.sock) as client:
            for i in range(40):
                client.send_packets(packets, stream=f"r-{i}")
            assert client.health()["ok"]
            assert not client.async_errors
    finally:
        stop.set()
        thread.join()
        tier.stop()
    assert not errors, errors


def test_client_close_is_idempotent(tmp_path):
    sock = str(tmp_path / "domo.sock")
    handle = run_in_thread(
        ReconstructionServer(DomoConfig(), socket_path=sock)
    )
    try:
        client = connect(socket_path=sock)
        assert client.health()["ok"]
        client.close()
        assert client.closed
        client.close()  # second close: no-op, no raise
        assert client.closed
    finally:
        handle.stop()


def test_client_reconnect_deadline_bounds_total_retry_time(tmp_path):
    sock = str(tmp_path / "domo.sock")
    handle = run_in_thread(
        ReconstructionServer(DomoConfig(), socket_path=sock)
    )
    client = connect(socket_path=sock)
    assert client.health()["ok"]
    handle.stop()  # server gone; the socket path is unlinked
    start = time.monotonic()
    with pytest.raises((TimeoutError, ConnectionError, OSError)):
        # Without the deadline, 50 retries at 0.2 s backoff would block
        # for >= 10 s; the deadline caps the whole attempt.
        client.reconnect(retries=50, backoff_s=0.2, deadline_s=0.8)
    assert time.monotonic() - start < 5.0
    client.close()
