"""Tests for the ADMM QP solver against analytic and reference solutions."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.qp import QPProblem, QPSettings, solve_qp
from repro.optim.result import SolverError, SolverStatus

INF = float("inf")


def _qp(P, q, A, lower, upper, **settings_kwargs):
    return QPProblem(
        P=sp.csc_matrix(np.atleast_2d(P)),
        q=np.asarray(q, dtype=float),
        A=sp.csr_matrix(np.atleast_2d(A)),
        lower=np.asarray(lower, dtype=float),
        upper=np.asarray(upper, dtype=float),
        settings=QPSettings(**settings_kwargs) if settings_kwargs else QPSettings(),
    )


def test_unconstrained_quadratic():
    # min (x-3)^2 -> P = 2, q = -6.
    problem = QPProblem(
        P=sp.csc_matrix([[2.0]]),
        q=np.array([-6.0]),
        A=sp.csr_matrix((0, 1)),
        lower=np.empty(0),
        upper=np.empty(0),
    )
    result = solve_qp(problem)
    assert result.status is SolverStatus.OPTIMAL
    assert result.x[0] == pytest.approx(3.0, abs=1e-6)


def test_box_constrained_scalar():
    # min (x-3)^2 s.t. x <= 1 -> x* = 1.
    problem = _qp([[2.0]], [-6.0], [[1.0]], [-INF], [1.0])
    result = solve_qp(problem).require_usable()
    assert result.x[0] == pytest.approx(1.0, abs=1e-4)
    assert result.objective == pytest.approx(-5.0, abs=1e-3)


def test_equality_constraint():
    # min x^2 + y^2 s.t. x + y = 2 -> (1, 1).
    problem = _qp(
        2.0 * np.eye(2), [0.0, 0.0], [[1.0, 1.0]], [2.0], [2.0]
    )
    result = solve_qp(problem).require_usable()
    assert np.allclose(result.x, [1.0, 1.0], atol=1e-4)


def test_two_sided_row():
    # min (x+2)^2 s.t. 0 <= x <= 5 -> x* = 0.
    problem = _qp([[2.0]], [4.0], [[1.0]], [0.0], [5.0])
    result = solve_qp(problem).require_usable()
    assert result.x[0] == pytest.approx(0.0, abs=1e-4)


def test_active_inequality_kkt():
    # min 0.5||x||^2 - [1,1]x s.t. x1 + x2 <= 1 -> x = (0.5, 0.5).
    problem = _qp(np.eye(2), [-1.0, -1.0], [[1.0, 1.0]], [-INF], [1.0])
    result = solve_qp(problem).require_usable()
    assert np.allclose(result.x, [0.5, 0.5], atol=1e-4)


def test_matches_scipy_reference_on_random_strictly_convex_qps():
    from scipy.optimize import minimize

    rng = np.random.default_rng(7)
    for trial in range(5):
        n, m = 4, 6
        root = rng.normal(size=(n, n))
        P = root @ root.T + n * np.eye(n)
        q = rng.normal(size=n)
        A = rng.normal(size=(m, n))
        b = rng.normal(size=m) + 2.0

        problem = _qp(P, q, A, np.full(m, -INF), b)
        ours = solve_qp(problem).require_usable()

        reference = minimize(
            lambda x: 0.5 * x @ P @ x + q @ x,
            np.zeros(n),
            jac=lambda x: P @ x + q,
            constraints=[{"type": "ineq", "fun": lambda x: b - A @ x}],
            method="SLSQP",
        )
        assert reference.success, f"trial {trial}: reference failed"
        assert ours.objective == pytest.approx(reference.fun, abs=1e-3)


def test_infeasible_like_problem_reports_failure_or_large_residual():
    # x <= -1 and x >= 1 simultaneously: ADMM cannot satisfy both.
    problem = _qp(
        [[2.0]],
        [0.0],
        [[1.0], [1.0]],
        [-INF, 1.0],
        [-1.0, INF],
        max_iterations=300,
    )
    result = solve_qp(problem)
    assert (
        not result.status.is_usable or result.primal_residual > 0.5
    )


def test_rejects_inconsistent_shapes():
    with pytest.raises(ValueError):
        _qp(np.eye(2), [0.0, 0.0], [[1.0]], [0.0], [1.0])
    with pytest.raises(ValueError):
        _qp([[1.0]], [0.0], [[1.0]], [2.0], [1.0])  # lower > upper


def test_warm_start_converges_faster_or_equal():
    P = 2.0 * np.eye(3)
    q = np.array([-2.0, -4.0, -6.0])
    A = np.vstack([np.eye(3), np.ones((1, 3))])
    lower = np.array([0.0, 0.0, 0.0, -INF])
    upper = np.array([INF, INF, INF, 2.0])
    problem = _qp(P, q, A, lower, upper)
    cold = solve_qp(problem).require_usable()
    warm = solve_qp(problem, x0=cold.x).require_usable()
    assert warm.iterations <= cold.iterations
    assert warm.objective == pytest.approx(cold.objective, abs=1e-4)


def test_require_usable_raises_on_failure():
    problem = _qp(
        [[2.0]],
        [0.0],
        [[1.0], [1.0]],
        [-INF, 10.0],
        [-10.0, INF],
        max_iterations=120,
    )
    result = solve_qp(problem)
    if not result.status.is_usable:
        with pytest.raises(SolverError):
            result.require_usable()


def test_objective_helper():
    problem = _qp(2.0 * np.eye(2), [1.0, -1.0], np.eye(2), [0, 0], [1, 1])
    x = np.array([0.5, 0.5])
    assert problem.objective(x) == pytest.approx(0.5 * (0.5 + 0.5) + 0.5 - 0.5)


@settings(max_examples=25, deadline=None)
@given(
    target=st.floats(-5, 5, allow_nan=False),
    cap=st.floats(-5, 5, allow_nan=False),
)
def test_scalar_projection_property(target, cap):
    """min (x - target)^2 s.t. x <= cap has solution min(target, cap)."""
    problem = _qp([[2.0]], [-2.0 * target], [[1.0]], [-INF], [cap])
    result = solve_qp(problem)
    if result.status.is_usable:
        assert result.x[0] == pytest.approx(min(target, cap), abs=1e-3)


def test_solve_reports_timing_and_problem_shape():
    problem = _qp([[2.0]], [-6.0], [[1.0]], [-INF], [1.0])
    result = solve_qp(problem).require_usable()
    assert result.solve_time_s > 0.0
    assert result.info["num_variables"] == 1
    assert result.info["num_constraints"] == 1


def test_unconstrained_solve_reports_timing():
    problem = QPProblem(
        P=sp.csc_matrix([[2.0]]),
        q=np.array([-6.0]),
        A=sp.csr_matrix((0, 1)),
        lower=np.empty(0),
        upper=np.empty(0),
    )
    result = solve_qp(problem)
    assert result.solve_time_s > 0.0
