"""Tests for the variable registry and constraint builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.modeling import ConstraintBuilder, VariableRegistry


class TestVariableRegistry:
    def test_add_assigns_sequential_indices(self):
        reg = VariableRegistry()
        assert reg.add("a") == 0
        assert reg.add("b") == 1
        assert reg.add("c") == 2

    def test_add_is_idempotent(self):
        reg = VariableRegistry()
        assert reg.add(("p", 1)) == 0
        assert reg.add(("p", 1)) == 0
        assert len(reg) == 1

    def test_lookup_roundtrip(self):
        reg = VariableRegistry()
        keys = [("p", i) for i in range(5)]
        for key in keys:
            reg.add(key)
        for key in keys:
            assert reg.key_of(reg.index_of(key)) == key

    def test_contains_and_get(self):
        reg = VariableRegistry()
        reg.add("x")
        assert "x" in reg
        assert "y" not in reg
        assert reg.get("y") is None
        assert reg.get("x") == 0

    def test_keys_in_column_order(self):
        reg = VariableRegistry()
        for key in ["c", "a", "b"]:
            reg.add(key)
        assert reg.keys() == ["c", "a", "b"]
        assert list(reg) == ["c", "a", "b"]


class TestConstraintBuilder:
    def test_build_simple_system(self):
        builder = ConstraintBuilder()
        builder.add_le({0: 1.0, 1: 1.0}, 5.0)
        builder.add_ge({0: 1.0}, 1.0)
        builder.add_eq({1: 2.0}, 4.0)
        A, lower, upper = builder.build(num_variables=2)
        assert A.shape == (3, 2)
        assert lower[0] == -np.inf and upper[0] == 5.0
        assert lower[1] == 1.0 and upper[1] == np.inf
        assert lower[2] == upper[2] == 4.0

    def test_terms_with_same_index_merge(self):
        builder = ConstraintBuilder()
        builder.add([(0, 1.0), (0, 2.0)], lower=0.0, upper=3.0)
        (row,) = builder.rows
        assert row.indices == (0,)
        assert row.coefficients == (3.0,)

    def test_zero_coefficient_rows_dropped(self):
        builder = ConstraintBuilder()
        builder.add([(0, 1.0), (0, -1.0)], lower=-1.0, upper=1.0)
        assert len(builder) == 0

    def test_infeasible_constant_row_raises(self):
        builder = ConstraintBuilder()
        with pytest.raises(ValueError):
            builder.add([(0, 1.0), (0, -1.0)], lower=1.0, upper=2.0)

    def test_empty_interval_raises(self):
        builder = ConstraintBuilder()
        with pytest.raises(ValueError):
            builder.add({0: 1.0}, lower=2.0, upper=1.0)

    def test_negative_index_raises(self):
        builder = ConstraintBuilder()
        with pytest.raises(ValueError):
            builder.add({-1: 1.0}, upper=0.0)

    def test_column_overflow_detected_at_build(self):
        builder = ConstraintBuilder()
        builder.add_le({5: 1.0}, 1.0)
        with pytest.raises(ValueError):
            builder.build(num_variables=3)

    def test_violation_and_max_violation(self):
        builder = ConstraintBuilder()
        builder.add_le({0: 1.0}, 1.0, tag="order")
        builder.add_ge({1: 1.0}, 0.0, tag="fifo")
        x = np.array([3.0, -0.5])
        assert builder.rows[0].violation(x) == pytest.approx(2.0)
        assert builder.rows[1].violation(x) == pytest.approx(0.5)
        assert builder.max_violation(x) == pytest.approx(2.0)
        assert builder.max_violation(np.array([0.0, 1.0])) == 0.0

    def test_rows_by_tag(self):
        builder = ConstraintBuilder()
        builder.add_le({0: 1.0}, 1.0, tag="order:p1")
        builder.add_le({1: 1.0}, 1.0, tag="fifo:p1:p2")
        builder.add_le({1: 1.0}, 2.0, tag="order:p2")
        assert len(builder.rows_by_tag("order")) == 2
        assert len(builder.rows_by_tag("fifo")) == 1

    def test_extend(self):
        left = ConstraintBuilder()
        left.add_le({0: 1.0}, 1.0)
        right = ConstraintBuilder()
        right.add_ge({1: 1.0}, 0.0)
        left.extend(right)
        assert len(left) == 2

    def test_default_column_count_inferred(self):
        builder = ConstraintBuilder()
        builder.add_le({4: 1.0}, 1.0)
        A, _, _ = builder.build()
        assert A.shape == (1, 5)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 9),
                st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_build_matches_row_evaluation(self, terms):
        """Sparse matrix product equals per-row evaluation for random rows."""
        builder = ConstraintBuilder()
        builder.add(terms, lower=-100.0, upper=100.0)
        A, _, _ = builder.build(num_variables=10)
        rng = np.random.default_rng(0)
        x = rng.normal(size=10)
        if len(builder) == 0:
            return
        (row,) = builder.rows
        assert (A @ x)[0] == pytest.approx(row.evaluate(x), abs=1e-9)
