"""Tests for the ADMM SDP solver (QP + affine PSD cone constraints)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.optim.linalg import is_psd
from repro.optim.sdp import PSDBlock, SDPProblem, SDPSettings, solve_sdp


def _identity_block(n, selector):
    """PSD block that maps selected variables onto a diagonal matrix."""
    rows = n * n
    C = sp.lil_matrix((rows, len(selector)))
    for k, var in enumerate(selector):
        C[k * n + k, var] = 1.0
    return PSDBlock(dim=n, C=sp.csr_matrix(C), d=np.zeros(rows))


def test_psd_block_validates_shape():
    with pytest.raises(ValueError):
        PSDBlock(dim=2, C=sp.csr_matrix((3, 2)), d=np.zeros(3))


def test_psd_block_matrix_at_symmetrizes():
    C = sp.csr_matrix(np.array([[1.0], [2.0], [0.0], [1.0]]))
    block = PSDBlock(dim=2, C=C, d=np.zeros(4))
    mat = block.matrix_at(np.array([1.0]))
    assert np.allclose(mat, [[1.0, 1.0], [1.0, 1.0]])


def test_diagonal_psd_enforces_nonnegativity():
    """min (x+2)^2 with diag(x) >= 0 forces x >= 0 -> x* = 0."""
    problem = SDPProblem(
        P=sp.csc_matrix([[2.0]]),
        q=np.array([4.0]),
        A=sp.csr_matrix((0, 1)),
        lower=np.empty(0),
        upper=np.empty(0),
        psd_blocks=[_identity_block(1, [0])],
    )
    result = solve_sdp(problem)
    assert result.status.is_usable
    assert result.x[0] == pytest.approx(0.0, abs=1e-3)


def test_reduces_to_qp_without_blocks():
    """Without PSD blocks the solver must match the plain QP solution."""
    problem = SDPProblem(
        P=sp.csc_matrix(2.0 * np.eye(2)),
        q=np.array([0.0, 0.0]),
        A=sp.csr_matrix([[1.0, 1.0]]),
        lower=np.array([2.0]),
        upper=np.array([2.0]),
    )
    result = solve_sdp(problem)
    assert result.status.is_usable
    assert np.allclose(result.x, [1.0, 1.0], atol=1e-3)


def test_schur_style_lift_keeps_moment_matrix_psd():
    """A tiny SDR-style problem: x = (u, U) with [[U, u], [u, 1]] >= 0.

    Minimizing U subject to u == 2 must drive U toward u^2 = 4 (the PSD
    condition enforces U >= u^2 after relaxation).
    """
    # Variables: x = [u, U]; block matrix [[U, u], [u, 1]].
    C = sp.lil_matrix((4, 2))
    C[0, 1] = 1.0  # (0,0) <- U
    C[1, 0] = 1.0  # (0,1) <- u
    C[2, 0] = 1.0  # (1,0) <- u
    d = np.array([0.0, 0.0, 0.0, 1.0])  # (1,1) = 1
    block = PSDBlock(dim=2, C=sp.csr_matrix(C), d=d)

    problem = SDPProblem(
        P=sp.csc_matrix((2, 2)),
        q=np.array([0.0, 1.0]),  # minimize U
        A=sp.csr_matrix([[1.0, 0.0]]),
        lower=np.array([2.0]),
        upper=np.array([2.0]),
        psd_blocks=[block],
        settings=SDPSettings(max_iterations=6000),
    )
    result = solve_sdp(problem)
    assert result.status.is_usable
    u, U = result.x
    assert u == pytest.approx(2.0, abs=1e-2)
    assert U == pytest.approx(4.0, abs=0.1)
    assert is_psd(block.matrix_at(result.x), tol=1e-4)


def test_box_and_psd_interaction():
    """min x1 + x2 s.t. x1 >= 1 (box row), diag(x1, x2) >= 0."""
    problem = SDPProblem(
        P=sp.csc_matrix((2, 2)),
        q=np.array([1.0, 1.0]),
        A=sp.csr_matrix([[1.0, 0.0]]),
        lower=np.array([1.0]),
        upper=np.array([np.inf]),
        psd_blocks=[_identity_block(2, [0, 1])],
    )
    result = solve_sdp(problem)
    assert result.status.is_usable
    assert result.x[0] == pytest.approx(1.0, abs=1e-2)
    assert result.x[1] == pytest.approx(0.0, abs=1e-2)


def test_column_mismatch_rejected():
    with pytest.raises(ValueError):
        SDPProblem(
            P=sp.csc_matrix((2, 2)),
            q=np.zeros(2),
            A=sp.csr_matrix((0, 2)),
            lower=np.empty(0),
            upper=np.empty(0),
            psd_blocks=[
                PSDBlock(dim=1, C=sp.csr_matrix((1, 3)), d=np.zeros(1))
            ],  # 3 columns into a 2-variable problem
        )


def test_solution_matrix_is_psd_after_solve():
    rng = np.random.default_rng(3)
    n = 3
    block = _identity_block(n, list(range(n)))
    problem = SDPProblem(
        P=sp.csc_matrix(np.eye(n)),
        q=rng.normal(size=n),
        A=sp.csr_matrix((0, n)),
        lower=np.empty(0),
        upper=np.empty(0),
        psd_blocks=[block],
    )
    result = solve_sdp(problem)
    assert result.status.is_usable
    assert is_psd(block.matrix_at(result.x), tol=1e-3)
