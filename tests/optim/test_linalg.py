"""Tests for repro.optim.linalg (PSD projection and helpers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.optim.linalg import (
    is_psd,
    mat_symmetric,
    project_psd,
    symmetrize,
    vec_symmetric,
)


def test_symmetrize_returns_symmetric_part():
    m = np.array([[1.0, 2.0], [0.0, 3.0]])
    s = symmetrize(m)
    assert np.allclose(s, s.T)
    assert np.allclose(s, [[1.0, 1.0], [1.0, 3.0]])


def test_project_psd_leaves_psd_matrix_unchanged():
    m = np.array([[2.0, 0.5], [0.5, 1.0]])
    assert np.allclose(project_psd(m), m)


def test_project_psd_clips_negative_eigenvalues():
    m = np.diag([3.0, -2.0])
    projected = project_psd(m)
    assert np.allclose(projected, np.diag([3.0, 0.0]))


def test_project_psd_known_rank_one_case():
    # Eigenvalues of [[0, 1], [1, 0]] are +-1; projection keeps the +1 part.
    m = np.array([[0.0, 1.0], [1.0, 0.0]])
    projected = project_psd(m)
    assert np.allclose(projected, 0.5 * np.ones((2, 2)))


def test_is_psd():
    assert is_psd(np.eye(3))
    assert is_psd(np.zeros((2, 2)))
    assert not is_psd(np.diag([1.0, -1.0]))


def test_vec_mat_roundtrip():
    m = np.array([[1.0, 2.0], [2.0, 5.0]])
    assert np.allclose(mat_symmetric(vec_symmetric(m), 2), m)


@settings(max_examples=60, deadline=None)
@given(
    arrays(
        np.float64,
        (4, 4),
        elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )
)
def test_project_psd_output_is_psd(matrix):
    projected = project_psd(matrix)
    assert is_psd(projected, tol=1e-7)


@settings(max_examples=60, deadline=None)
@given(
    arrays(
        np.float64,
        (3, 3),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    )
)
def test_project_psd_is_idempotent(matrix):
    once = project_psd(matrix)
    twice = project_psd(once)
    assert np.allclose(once, twice, atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float64,
        (3, 3),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    )
)
def test_projection_is_closest_among_samples(matrix):
    """The projection is at least as close as a few other PSD candidates."""
    sym = symmetrize(matrix)
    projected = project_psd(sym)
    distance = np.linalg.norm(sym - projected)
    for candidate in (np.zeros((3, 3)), np.eye(3), 2.0 * np.eye(3)):
        assert distance <= np.linalg.norm(sym - candidate) + 1e-9


def test_project_psd_rejects_nothing_but_handles_asymmetric_input():
    m = np.array([[0.0, 4.0], [0.0, 0.0]])
    projected = project_psd(m)
    assert is_psd(projected)


@pytest.mark.parametrize("dim", [1, 2, 5])
def test_identity_is_fixed_point(dim):
    assert np.allclose(project_psd(np.eye(dim)), np.eye(dim))
