"""Tests for the LP front end (HiGHS) and the Big-M simplex fallback."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim.lp import LinearProgram, solve_lp, solve_lp_simplex
from repro.optim.result import SolverStatus

INF = float("inf")


def _lp(c, A, row_lower, row_upper, x_lower=None, x_upper=None):
    return LinearProgram(
        c=np.asarray(c, dtype=float),
        A=sp.csr_matrix(np.atleast_2d(A)),
        row_lower=np.asarray(row_lower, dtype=float),
        row_upper=np.asarray(row_upper, dtype=float),
        x_lower=None if x_lower is None else np.asarray(x_lower, dtype=float),
        x_upper=None if x_upper is None else np.asarray(x_upper, dtype=float),
    )


BOTH_SOLVERS = pytest.mark.parametrize("solve", [solve_lp, solve_lp_simplex])


@BOTH_SOLVERS
def test_simple_minimization(solve):
    # min x s.t. 1 <= x <= 4.
    problem = _lp([1.0], [[1.0]], [1.0], [4.0])
    result = solve(problem)
    assert result.status is SolverStatus.OPTIMAL
    assert result.objective == pytest.approx(1.0, abs=1e-6)


@BOTH_SOLVERS
def test_simple_maximization_via_negation(solve):
    # max x == min -x s.t. x <= 4.
    problem = _lp([-1.0], [[1.0]], [1.0], [4.0])
    result = solve(problem)
    assert result.status is SolverStatus.OPTIMAL
    assert result.x[0] == pytest.approx(4.0, abs=1e-6)


@BOTH_SOLVERS
def test_classic_two_variable_lp(solve):
    # max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> (2, 6).
    problem = _lp(
        [-3.0, -5.0],
        [[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
        [-INF, -INF, -INF],
        [4.0, 12.0, 18.0],
        x_lower=[0.0, 0.0],
    )
    result = solve(problem)
    assert result.status is SolverStatus.OPTIMAL
    assert np.allclose(result.x, [2.0, 6.0], atol=1e-6)
    assert result.objective == pytest.approx(-36.0, abs=1e-6)


@BOTH_SOLVERS
def test_equality_row(solve):
    # min x + y s.t. x + y == 3, x,y in [0, 3].
    problem = _lp(
        [1.0, 1.0],
        [[1.0, 1.0]],
        [3.0],
        [3.0],
        x_lower=[0.0, 0.0],
        x_upper=[3.0, 3.0],
    )
    result = solve(problem)
    assert result.status is SolverStatus.OPTIMAL
    assert result.objective == pytest.approx(3.0, abs=1e-6)


@BOTH_SOLVERS
def test_infeasible_detected(solve):
    # x >= 2 and x <= 1.
    problem = _lp([1.0], [[1.0], [1.0]], [2.0, -INF], [INF, 1.0])
    result = solve(problem)
    assert result.status is SolverStatus.INFEASIBLE


@BOTH_SOLVERS
def test_unbounded_detected(solve):
    # min -x, x >= 0, no upper bound.
    problem = _lp([-1.0], [[1.0]], [0.0], [INF])
    result = solve(problem)
    assert result.status is SolverStatus.UNBOUNDED


def test_free_variables_in_simplex():
    # min x, -5 <= x + y <= 5, y == 2, x free -> x = -7.
    problem = _lp(
        [1.0, 0.0],
        [[1.0, 1.0], [0.0, 1.0]],
        [-5.0, 2.0],
        [5.0, 2.0],
    )
    reference = solve_lp(problem)
    ours = solve_lp_simplex(problem)
    assert ours.status is SolverStatus.OPTIMAL
    assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
    assert ours.x[0] == pytest.approx(-7.0, abs=1e-6)


def test_degenerate_lp_terminates():
    """Bland's rule must terminate on a degenerate problem."""
    problem = _lp(
        [-0.75, 150.0, -0.02, 6.0],
        [
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ],
        [-INF, -INF, -INF],
        [0.0, 0.0, 1.0],
        x_lower=[0.0, 0.0, 0.0, 0.0],
    )
    ours = solve_lp_simplex(problem)
    reference = solve_lp(problem)
    assert ours.status is SolverStatus.OPTIMAL
    assert ours.objective == pytest.approx(reference.objective, abs=1e-6)


def test_bound_style_problem_matches_between_solvers():
    """Shape of Domo's bound LPs: chains of order constraints."""
    # t0 <= t1 - 1 <= t2 - 2, t0 = 0, t2 = 10; min/max t1.
    A = [[-1.0, 1.0, 0.0], [0.0, -1.0, 1.0]]
    row_lower = [1.0, 1.0]
    row_upper = [INF, INF]
    for c, expected in [([0.0, 1.0, 0.0], 1.0), ([0.0, -1.0, 0.0], -9.0)]:
        problem = _lp(
            c,
            A,
            row_lower,
            row_upper,
            x_lower=[0.0, -INF, 10.0],
            x_upper=[0.0, INF, 10.0],
        )
        fast = solve_lp(problem)
        slow = solve_lp_simplex(problem)
        assert fast.status is SolverStatus.OPTIMAL
        assert slow.status is SolverStatus.OPTIMAL
        assert fast.objective == pytest.approx(expected, abs=1e-6)
        assert slow.objective == pytest.approx(expected, abs=1e-6)


def test_shape_validation():
    with pytest.raises(ValueError):
        _lp([1.0, 2.0], [[1.0]], [0.0], [1.0])
    with pytest.raises(ValueError):
        _lp([1.0], [[1.0]], [0.0, 1.0], [1.0])


@settings(max_examples=30, deadline=None)
@given(
    c=st.lists(st.floats(-3, 3, allow_nan=False), min_size=2, max_size=3),
    seed=st.integers(0, 10_000),
)
def test_simplex_agrees_with_highs_on_random_bounded_lps(c, seed):
    """Random LPs over a box with one coupling row: both solvers agree."""
    n = len(c)
    rng = np.random.default_rng(seed)
    coupling = rng.uniform(-1.0, 1.0, size=(1, n))
    problem = _lp(
        c,
        coupling,
        [-2.0],
        [2.0],
        x_lower=[-1.0] * n,
        x_upper=[1.0] * n,
    )
    fast = solve_lp(problem)
    slow = solve_lp_simplex(problem)
    assert fast.status is SolverStatus.OPTIMAL
    assert slow.status is SolverStatus.OPTIMAL
    assert slow.objective == pytest.approx(fast.objective, abs=1e-5)
