"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_command(capsys):
    code = main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "received packets" in out
    assert "delivery ratio" in out


def test_estimate_command(capsys):
    code = main(
        ["estimate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out


def test_estimate_command_with_workers_and_stats(capsys):
    code = main(
        ["estimate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--workers", "2", "--solver-stats"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out
    assert "solver telemetry" in out
    assert "windows solved" in out
    assert "execution mode       : parallel (workers: 2)" in out
    assert "status tally" in out


def test_report_command(capsys):
    code = main(
        ["report", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "== trace ==" in out
    assert "slowest nodes" in out


def test_save_and_load_trace_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "trace.json.gz")
    assert main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--save-trace", path]
    ) == 0
    first = capsys.readouterr().out
    assert main(["simulate", "--trace", path]) == 0
    second = capsys.readouterr().out
    assert first.splitlines()[0] == second.splitlines()[0]


def test_compare_command(capsys):
    code = main(
        ["compare", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--bound-packets", "20"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Domo" in out
    assert "MNT" in out
    assert "MessageTracing" in out


@pytest.mark.parametrize("command", ["estimate", "compare", "report"])
def test_missing_trace_file_exits_2_with_one_line_error(capsys, command,
                                                        tmp_path):
    code = main([command, "--trace", str(tmp_path / "missing.json")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("domo: error:")
    assert "not found" in err
    assert len(err.strip().splitlines()) == 1
    assert "Traceback" not in err


def test_truncated_gzip_trace_exits_2(capsys, tmp_path):
    path = tmp_path / "trace.json.gz"
    path.write_bytes(b"\x1f\x8b truncated nonsense")
    assert main(["estimate", "--trace", str(path)]) == 2
    assert "domo: error:" in capsys.readouterr().err


def test_non_json_trace_exits_2(capsys, tmp_path):
    path = tmp_path / "trace.json"
    path.write_text("<html>definitely not a trace</html>")
    assert main(["estimate", "--trace", str(path)]) == 2
    err = capsys.readouterr().err
    assert "domo: error:" in err
    assert "JSON" in err


def test_mis_suffixed_gzip_trace_loads_by_magic_bytes(capsys, tmp_path):
    import gzip
    import json

    from repro.sim import NetworkConfig, simulate_network
    from repro.sim.io import trace_to_dict

    trace = simulate_network(NetworkConfig(
        num_nodes=16, placement="grid", duration_ms=20_000.0,
        packet_period_ms=3_000.0, seed=2,
    ))
    path = tmp_path / "trace.json"  # gzip content, no .gz suffix
    path.write_bytes(
        gzip.compress(json.dumps(trace_to_dict(trace)).encode())
    )
    assert main(["simulate", "--trace", str(path)]) == 0
    assert "received packets" in capsys.readouterr().out


def test_dirty_trace_repair_mode_reports_and_succeeds(capsys, tmp_path):
    import json

    from repro.sim import NetworkConfig, simulate_network
    from repro.sim.io import trace_to_dict

    trace = simulate_network(NetworkConfig(
        num_nodes=16, placement="grid", duration_ms=20_000.0,
        packet_period_ms=3_000.0, seed=2,
    ))
    data = trace_to_dict(trace)
    del data["received"][0]["t_sink"]  # truncated record
    data["received"][1]["t_sink"] = -5.0  # impossible timestamps
    path = tmp_path / "dirty.json"
    path.write_text(json.dumps(data))
    assert main(["estimate", "--trace", str(path)]) == 0
    captured = capsys.readouterr()
    assert "validation: 1 quarantined" in captured.err
    assert "mean error" in captured.out
    # strict mode refuses the same file with exit code 2.
    assert main(
        ["estimate", "--trace", str(path), "--validate", "strict"]
    ) == 2


def test_faults_command(capsys):
    code = main(
        ["faults", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--rates", "0.2", "--kinds",
         "delete_received,truncate"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "delete_received" in out
    assert "truncate" in out
    assert "baseline" in out


def test_faults_command_rejects_bad_rates():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["faults", "--rates", "1.5"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["faults", "--rates", "abc"])


def test_stream_command_end_to_end(capsys, tmp_path):
    stream_path = str(tmp_path / "trace.jsonl")
    code = main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--save-stream", stream_path]
    )
    assert code == 0
    capsys.readouterr()
    code = main(
        ["stream", stream_path, "--lateness-ms", "2000", "--chunk", "32"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "committed estimates" in out
    assert "windows committed" in out
    committed = int(
        next(line for line in out.splitlines()
             if line.startswith("committed estimates")).split(":")[1]
    )
    assert committed > 0


def test_stream_command_reads_stdin(capsys, tmp_path, monkeypatch):
    stream_path = tmp_path / "trace.jsonl"
    code = main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--save-stream", str(stream_path)]
    )
    assert code == 0
    capsys.readouterr()
    import io
    import sys

    monkeypatch.setattr(
        sys, "stdin", io.StringIO(stream_path.read_text(encoding="utf-8"))
    )
    code = main(["stream", "-"])
    assert code == 0
    assert "committed estimates" in capsys.readouterr().out


def test_stream_command_missing_file_exits_2(capsys, tmp_path):
    code = main(["stream", str(tmp_path / "absent.jsonl")])
    assert code == 2
    err = capsys.readouterr().err
    assert "domo: error:" in err


def test_stream_follow_rejects_gzip_paths(capsys, tmp_path):
    """Tailing a gzip file is ill-defined — one-line error, not garbage."""
    import gzip

    path = tmp_path / "trace.jsonl.gz"
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write("")
    code = main(["stream", str(path), "--follow", "--idle-timeout", "0"])
    assert code == 2
    err = capsys.readouterr().err
    assert "domo: error:" in err
    assert "--follow" in err and "gzip" in err
    # The same gzip file is fine without --follow.
    assert main(["stream", str(path)]) == 0


def test_version_flag_reports_package_version(capsys):
    import re

    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.strip()
    assert out.startswith(f"domo {__version__}")
    # The version banner also advertises the registered backends
    # (argparse reflows the string, so assert content, not layout).
    from repro.backends import DEFAULT_BACKEND, backend_names

    assert f"backends: {', '.join(backend_names())}" in out
    assert f"(default {DEFAULT_BACKEND})" in out
    # The single source of truth: packaging metadata must agree.
    with open("pyproject.toml", encoding="utf-8") as handle:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', handle.read(), re.MULTILINE
        )
    assert match and match.group(1) == __version__


def test_follow_buffers_partial_lines_until_newline():
    """A record cut mid-write must never be yielded as a truncated line:
    feed the tail one byte at a time and check only whole lines emerge."""
    from repro.cli import _follow_lines

    text = '{"a": 1}\n{"b": 22}\n'

    class ByteDribble:
        def __init__(self, text):
            self.pending = list(text)

        def read(self, _size):
            return self.pending.pop(0) if self.pending else ""

    lines = list(
        _follow_lines(
            ByteDribble(text), poll_interval=1.0, idle_timeout=0.0,
            sleep=lambda _s: None,
        )
    )
    assert lines == ['{"a": 1}\n', '{"b": 22}\n']

    # An unterminated final record is held back until the idle timeout,
    # then yielded whole rather than dropped.
    lines = list(
        _follow_lines(
            ByteDribble('{"a": 1}\n{"tail": 3}'),
            poll_interval=1.0, idle_timeout=2.0, sleep=lambda _s: None,
        )
    )
    assert lines == ['{"a": 1}\n', '{"tail": 3}']


def test_stream_follow_ingests_records_appended_byte_by_byte(
    capsys, tmp_path
):
    """End-to-end tail: a producer appending one byte at a time must not
    corrupt records — the follow run commits exactly what a batch run
    over the finished file does."""
    import shutil
    import threading

    stream_path = tmp_path / "trace.jsonl"
    code = main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--save-stream", str(stream_path)]
    )
    assert code == 0
    capsys.readouterr()

    def committed_of(out):
        return next(
            line for line in out.splitlines()
            if line.startswith("committed estimates")
        )

    code = main(["stream", str(stream_path)])
    assert code == 0
    expected = committed_of(capsys.readouterr().out)

    grown_path = tmp_path / "grown.jsonl"
    grown_path.write_text("", encoding="utf-8")
    data = stream_path.read_bytes()

    def producer():
        with open(grown_path, "ab", buffering=0) as handle:
            for offset in range(0, len(data)):
                handle.write(data[offset:offset + 1])

    writer = threading.Thread(target=producer)
    writer.start()
    try:
        code = main(
            ["stream", str(grown_path), "--follow",
             "--poll-interval", "0.01", "--idle-timeout", "1"]
        )
    finally:
        writer.join()
    assert code == 0
    assert committed_of(capsys.readouterr().out) == expected
