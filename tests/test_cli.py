"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_command(capsys):
    code = main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "received packets" in out
    assert "delivery ratio" in out


def test_estimate_command(capsys):
    code = main(
        ["estimate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out


def test_estimate_command_with_workers_and_stats(capsys):
    code = main(
        ["estimate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--workers", "2", "--solver-stats"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "mean error" in out
    assert "solver telemetry" in out
    assert "windows solved" in out
    assert "execution mode       : parallel (workers: 2)" in out
    assert "status tally" in out


def test_report_command(capsys):
    code = main(
        ["report", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "== trace ==" in out
    assert "slowest nodes" in out


def test_save_and_load_trace_roundtrip(capsys, tmp_path):
    path = str(tmp_path / "trace.json.gz")
    assert main(
        ["simulate", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--save-trace", path]
    ) == 0
    first = capsys.readouterr().out
    assert main(["simulate", "--trace", path]) == 0
    second = capsys.readouterr().out
    assert first.splitlines()[0] == second.splitlines()[0]


def test_compare_command(capsys):
    code = main(
        ["compare", "--nodes", "16", "--duration", "20", "--period", "3",
         "--seed", "2", "--bound-packets", "20"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Domo" in out
    assert "MNT" in out
    assert "MessageTracing" in out
