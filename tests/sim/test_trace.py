"""Tests for trace record types and trace-level operations."""

import numpy as np
import pytest

from repro.sim.packet import PacketId
from repro.sim.trace import (
    GroundTruthPacket,
    ReceivedPacket,
    TraceBundle,
    drop_random_packets,
)


def _received(source=1, seqno=0, path=(1, 0), t0=0.0, t_sink=10.0, s=5):
    return ReceivedPacket(
        packet_id=PacketId(source, seqno),
        path=tuple(path),
        generation_time_ms=t0,
        sink_arrival_ms=t_sink,
        sum_of_delays_ms=s,
    )


def _truth(source=1, seqno=0, path=(1, 0), times=(0.0, 10.0)):
    return GroundTruthPacket(
        packet_id=PacketId(source, seqno),
        path=tuple(path),
        arrival_times_ms=tuple(times),
    )


def test_received_packet_accessors():
    p = _received(path=(3, 2, 0), t0=1.0, t_sink=21.0)
    assert p.path_length == 3
    assert p.e2e_delay_ms == pytest.approx(20.0)
    assert p.node_at(0) == 3
    assert p.node_at(2) == 0


def test_ground_truth_node_delays():
    g = _truth(path=(3, 2, 0), times=(0.0, 4.0, 10.0))
    assert g.node_delay_ms(0) == pytest.approx(4.0)
    assert g.node_delay_ms(1) == pytest.approx(6.0)
    assert g.node_delays() == [4.0, 6.0]


def test_ground_truth_validates_alignment():
    with pytest.raises(ValueError):
        _truth(path=(1, 0), times=(0.0, 1.0, 2.0))


def test_bundle_requires_ground_truth_for_received():
    with pytest.raises(ValueError):
        TraceBundle(received=[_received()], ground_truth={})


def test_bundle_queries():
    received = [
        _received(source=1, seqno=0, path=(1, 0), t0=5.0),
        _received(source=2, seqno=0, path=(2, 1, 0), t0=1.0),
    ]
    truth = {p.packet_id: _truth(p.packet_id.source, p.packet_id.seqno,
                                 p.path, tuple(np.linspace(0, 10, len(p.path))))
             for p in received}
    bundle = TraceBundle(received=received, ground_truth=truth)
    assert bundle.num_received == 2
    ordered = bundle.sorted_by_generation()
    assert ordered[0].packet_id.source == 2
    assert len(bundle.packets_through(1)) == 2
    assert len(bundle.packets_through(2)) == 1


def test_delivery_ratio():
    p = _received()
    bundle = TraceBundle(
        received=[p],
        ground_truth={p.packet_id: _truth()},
        lost_packets=[PacketId(9, 0), PacketId(9, 1), PacketId(9, 2)],
    )
    assert bundle.delivery_ratio == pytest.approx(0.25)


def test_restrict_keeps_ground_truth():
    received = [_received(seqno=i, t0=float(i)) for i in range(4)]
    truth = {
        p.packet_id: _truth(seqno=p.packet_id.seqno) for p in received
    }
    bundle = TraceBundle(received=received, ground_truth=truth)
    smaller = bundle.restrict([received[0].packet_id, received[2].packet_id])
    assert smaller.num_received == 2
    assert len(smaller.ground_truth) == 4  # oracle untouched


def test_drop_random_packets_rate():
    received = [_received(seqno=i, t0=float(i)) for i in range(500)]
    truth = {p.packet_id: _truth(seqno=p.packet_id.seqno) for p in received}
    bundle = TraceBundle(received=received, ground_truth=truth)
    dropped = drop_random_packets(bundle, 0.3, np.random.default_rng(0))
    remaining = dropped.num_received / bundle.num_received
    assert 0.6 < remaining < 0.8


def test_drop_random_rejects_bad_rate():
    bundle = TraceBundle()
    with pytest.raises(ValueError):
        drop_random_packets(bundle, 1.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        drop_random_packets(bundle, -0.1, np.random.default_rng(0))


def test_drop_zero_is_identity():
    received = [_received(seqno=i) for i in range(10)]
    truth = {p.packet_id: _truth(seqno=p.packet_id.seqno) for p in received}
    bundle = TraceBundle(received=received, ground_truth=truth)
    same = drop_random_packets(bundle, 0.0, np.random.default_rng(0))
    assert same.num_received == 10
