"""Tests for the link model (path loss, PRR, fading dynamics)."""

import numpy as np
import pytest

from repro.sim.radio import LinkModel, RadioConfig
from repro.sim.topology import line_topology


def _model(spacing=25.0, n=4, sigma=0.0, seed=0, **cfg):
    topo = line_topology(n, spacing_m=spacing)
    config = RadioConfig(shadowing_sigma_db=sigma, **cfg)
    return LinkModel(topo.positions, config, rng=np.random.default_rng(seed))


def test_prr_decreases_with_distance():
    model = _model(spacing=15.0, n=5, fading_walk_db=0.0)
    prr_near = model.prr(0, 1, 0.0)
    prr_far = model.prr(0, 3, 0.0)
    assert prr_near > prr_far


def test_prr_zero_beyond_range():
    model = _model(spacing=40.0, n=4)
    assert not model.in_range(0, 3)  # 120 m >> 60 m max range
    assert model.prr(0, 3, 0.0) == 0.0


def test_prr_zero_to_self():
    model = _model()
    assert model.prr(2, 2, 0.0) == 0.0


def test_short_links_are_nearly_perfect():
    model = _model(spacing=10.0, fading_walk_db=0.0)
    assert model.prr(0, 1, 0.0) > 0.99


def test_prr_is_probability():
    model = _model(spacing=25.0, sigma=6.0, seed=5)
    for a in range(4):
        for b in range(4):
            if a == b:
                continue
            for t in (0.0, 10_000.0, 60_000.0):
                assert 0.0 <= model.prr(a, b, t) <= 1.0


def test_shadowing_is_symmetric():
    model = _model(sigma=6.0, seed=2, fading_walk_db=0.0)
    assert model.prr(0, 1, 0.0) == pytest.approx(model.prr(1, 0, 0.0))


def test_fading_changes_links_over_time():
    """Link dynamics: PRR at a marginal distance varies across epochs."""
    model = _model(spacing=32.0, seed=3, fading_walk_db=2.0)
    values = {round(model.prr(0, 1, t), 6) for t in np.arange(0, 300_000, 5000)}
    assert len(values) > 3


def test_fading_constant_within_epoch():
    model = _model(spacing=30.0, seed=4, fading_walk_db=2.0)
    assert model.prr(0, 1, 100.0) == model.prr(0, 1, 4900.0)


def test_airtime_scales_with_size():
    model = _model()
    assert model.airtime_ms(100) > model.airtime_ms(20)
    # 24+19 bytes at 250 kbps ~ 1.4 ms
    assert model.airtime_ms(24) == pytest.approx((24 + 19) * 8 / 250.0)


def test_neighbor_map_respects_range():
    model = _model(spacing=25.0, n=5)
    nmap = model.neighbor_map()
    assert 1 in nmap[0] and 2 in nmap[0]  # 25 m, 50 m in range
    assert 3 not in nmap[0]  # 75 m out of range


def test_rssi_monotone_in_distance_without_noise():
    model = _model(spacing=10.0, n=6, sigma=0.0, fading_walk_db=0.0)
    rssi = [model.rssi_dbm(0, k, 0.0) for k in range(1, 6)]
    assert all(a > b for a, b in zip(rssi, rssi[1:]))
