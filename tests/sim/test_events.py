"""Tests for the discrete-event queue."""

import pytest

from repro.sim.events import EventQueue


def test_events_fire_in_time_order():
    q = EventQueue()
    order = []
    q.schedule(5.0, lambda: order.append("b"))
    q.schedule(1.0, lambda: order.append("a"))
    q.schedule(9.0, lambda: order.append("c"))
    q.run_all()
    assert order == ["a", "b", "c"]


def test_ties_fire_in_insertion_order():
    q = EventQueue()
    order = []
    for name in "abcd":
        q.schedule(3.0, lambda n=name: order.append(n))
    q.run_all()
    assert order == list("abcd")


def test_now_advances_with_events():
    q = EventQueue()
    seen = []
    q.schedule(2.0, lambda: seen.append(q.now))
    q.schedule(7.5, lambda: seen.append(q.now))
    q.run_all()
    assert seen == [2.0, 7.5]


def test_run_until_stops_at_horizon():
    q = EventQueue()
    fired = []
    q.schedule(1.0, lambda: fired.append(1))
    q.schedule(10.0, lambda: fired.append(10))
    count = q.run_until(5.0)
    assert count == 1
    assert fired == [1]
    assert q.now == 5.0
    assert len(q) == 1


def test_run_until_leaves_clock_at_horizon_when_empty():
    q = EventQueue()
    q.run_until(42.0)
    assert q.now == 42.0


def test_events_scheduled_during_run_fire():
    q = EventQueue()
    order = []

    def outer():
        order.append("outer")
        q.schedule(1.0, lambda: order.append("inner"))

    q.schedule(1.0, outer)
    q.run_until(10.0)
    assert order == ["outer", "inner"]


def test_negative_delay_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    q = EventQueue()
    q.schedule(5.0, lambda: None)
    q.run_until(5.0)
    with pytest.raises(ValueError):
        q.schedule_at(3.0, lambda: None)


def test_run_all_guards_against_runaway():
    q = EventQueue()

    def loop():
        q.schedule(1.0, loop)

    q.schedule(1.0, loop)
    with pytest.raises(RuntimeError):
        q.run_all(max_events=100)
