"""Tests for node placement and connectivity."""

import numpy as np
import pytest

from repro.sim.topology import (
    Topology,
    grid_topology,
    line_topology,
    uniform_topology,
)


def test_uniform_places_all_nodes_in_square():
    rng = np.random.default_rng(1)
    topo = uniform_topology(100, side_m=200.0, rng=rng)
    assert topo.num_nodes == 100
    assert np.all(topo.positions >= 0.0)
    assert np.all(topo.positions <= 200.0)


def test_uniform_sink_nearest_the_corner():
    topo = uniform_topology(50, rng=np.random.default_rng(2))
    assert topo.sink == 0
    sink_distance = np.hypot(*topo.positions[0])
    others = np.hypot(topo.positions[1:, 0], topo.positions[1:, 1])
    assert sink_distance <= others.min()


def test_uniform_constant_density_scaling():
    """Bigger networks get bigger areas, not denser packing (paper Fig. 8)."""
    rng = np.random.default_rng(3)
    small = uniform_topology(100, rng=rng)
    large = uniform_topology(400, rng=rng)
    ratio = (large.side_m / small.side_m) ** 2
    assert ratio == pytest.approx(4.0, rel=0.01)


def test_uniform_rejects_tiny_networks():
    with pytest.raises(ValueError):
        uniform_topology(1)


def test_grid_layout():
    topo = grid_topology(3, spacing_m=10.0)
    assert topo.num_nodes == 9
    assert topo.distance(0, 1) == pytest.approx(10.0)
    assert topo.distance(0, 8) == pytest.approx(np.hypot(20.0, 20.0))


def test_grid_rejects_degenerate():
    with pytest.raises(ValueError):
        grid_topology(1)


def test_line_topology():
    topo = line_topology(5, spacing_m=20.0)
    assert topo.num_nodes == 5
    assert topo.distance(0, 4) == pytest.approx(80.0)


def test_neighbors_within_radius():
    topo = grid_topology(3, spacing_m=10.0)
    center = 4  # middle of the 3x3 grid
    neighbors = topo.neighbors_within(center, 10.5)
    assert sorted(neighbors) == [1, 3, 5, 7]
    all_but_self = topo.neighbors_within(center, 100.0)
    assert len(all_but_self) == 8


def test_neighbor_map_is_symmetric():
    topo = uniform_topology(30, rng=np.random.default_rng(4))
    nmap = topo.neighbor_map(60.0)
    for node, neighbors in nmap.items():
        for other in neighbors:
            assert node in nmap[other]


def test_invalid_positions_shape_rejected():
    with pytest.raises(ValueError):
        Topology(positions=np.zeros((4, 3)))


def test_invalid_sink_rejected():
    with pytest.raises(ValueError):
        Topology(positions=np.zeros((4, 2)), sink=9)
