"""Tests for the traffic models."""

import numpy as np
import pytest

from repro.sim import NetworkConfig, Simulator
from repro.sim.workloads import (
    BurstyTraffic,
    EventTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    default_workload,
)


def _run(workload, seed=2, duration=40_000.0):
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=duration,
        packet_period_ms=4_000.0,
        seed=seed,
        workload=workload,
    )
    simulator = Simulator(config)
    trace = simulator.run()
    return simulator, trace


def _generation_gaps(simulator, node_id):
    times = [
        entry.local_time_ms
        for entry in simulator.nodes[node_id].log
        if entry.kind == "gen"
    ]
    return np.diff(times)


def test_periodic_traffic_spacing():
    simulator, trace = _run(PeriodicTraffic(period_ms=4_000.0, jitter=0.1))
    gaps = _generation_gaps(simulator, 5)
    assert len(gaps) >= 5
    assert np.all(gaps >= 4_000.0 * 0.9 - 1e-6)
    assert np.all(gaps <= 4_000.0 * 1.1 + 1e-6)


def test_default_workload_matches_config_fields():
    workload = default_workload(
        NetworkConfig(packet_period_ms=1234.0, period_jitter=0.05)
    )
    assert workload.period_ms == 1234.0
    assert workload.jitter == 0.05


def test_poisson_traffic_is_irregular():
    simulator, trace = _run(
        PoissonTraffic(mean_interval_ms=2_000.0), duration=60_000.0
    )
    gaps = _generation_gaps(simulator, 5)
    assert len(gaps) >= 10
    # Exponential gaps: coefficient of variation near 1 (periodic ~ 0).
    cv = np.std(gaps) / np.mean(gaps)
    assert cv > 0.5


def test_bursty_traffic_generates_bursts():
    simulator, trace = _run(
        BurstyTraffic(period_ms=8_000.0, burst_size=3, intra_burst_ms=40.0)
    )
    gaps = _generation_gaps(simulator, 5)
    small = np.sum(gaps < 200.0)
    large = np.sum(gaps > 4_000.0)
    assert small >= large, "bursts should dominate the gap distribution"
    counts = simulator.nodes[5].stats.generated
    assert counts % 3 == 0 or counts >= 3


def test_event_traffic_correlates_nearby_nodes():
    simulator, trace = _run(
        EventTraffic(
            event_interval_ms=5_000.0,
            event_radius_m=60.0,
            background_period_ms=50_000.0,
        ),
        duration=60_000.0,
    )
    # Collect generation times network-wide; events create clusters where
    # several distinct sources fire within the response spread.
    generations = []
    for node_id, node in simulator.nodes.items():
        for entry in node.log:
            if entry.kind == "gen":
                generations.append((entry.local_time_ms, node_id))
    assert len(generations) > 20


def test_reconstruction_works_on_all_workloads():
    """Domo must handle every arrival process, not just periodic."""
    from repro.core.pipeline import DomoConfig, DomoReconstructor

    for workload in (
        PeriodicTraffic(period_ms=4_000.0),
        PoissonTraffic(mean_interval_ms=4_000.0),
        BurstyTraffic(period_ms=10_000.0, burst_size=2),
    ):
        _, trace = _run(workload, duration=30_000.0)
        if trace.num_received < 20:
            continue
        estimate = DomoReconstructor(DomoConfig()).estimate(trace)
        errors = []
        for p in trace.received:
            truth = trace.truth_of(p.packet_id).node_delays()
            errors.extend(
                abs(a - b)
                for a, b in zip(estimate.delays_of(p.packet_id), truth)
            )
        assert float(np.mean(errors)) < 15.0, f"workload {workload}"
