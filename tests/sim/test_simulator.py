"""Integration tests: the simulator must produce Domo-consistent traces.

These tests check the invariants the reconstruction algorithms rely on:
FIFO departures, monotone arrival times, faithful S(p) semantics
(constraints (6)/(7) of the paper) and accurate t0 reconstruction.
"""

import numpy as np
import pytest

from repro.sim import NetworkConfig, Simulator, simulate_network
from repro.sim.packet import SUM_OF_DELAYS_MAX_MS


def small_trace(**overrides):
    defaults = dict(
        num_nodes=25,
        placement="grid",
        duration_ms=60_000.0,
        packet_period_ms=3_000.0,
        seed=11,
    )
    defaults.update(overrides)
    return simulate_network(NetworkConfig(**defaults))


@pytest.fixture(scope="module")
def trace():
    return small_trace()


def test_packets_are_delivered(trace):
    assert trace.num_received > 100
    assert trace.delivery_ratio > 0.9


def test_ground_truth_aligned_with_received(trace):
    for p in trace.received:
        truth = trace.truth_of(p.packet_id)
        assert truth.path == p.path
        assert len(truth.arrival_times_ms) == len(p.path)


def test_paths_start_at_source_end_at_sink(trace):
    for p in trace.received:
        assert p.path[0] == p.packet_id.source
        assert p.path[-1] == trace.sink


def test_arrival_times_strictly_increasing(trace):
    floor = 1.0  # MacConfig.processing_floor_ms default
    for p in trace.received:
        times = trace.truth_of(p.packet_id).arrival_times_ms
        for a, b in zip(times, times[1:]):
            assert b - a >= floor - 1e-9


def test_fifo_property_holds_in_ground_truth(trace):
    """Paper Eq. (1): shared-node packets keep their arrival order.

    This is THE property Domo's FIFO constraints assume; if the simulator
    violated it the whole reconstruction premise would be wrong.
    """
    checked = 0
    by_node: dict[int, list[tuple[float, float]]] = {}
    for p in trace.received:
        truth = trace.truth_of(p.packet_id)
        for hop, node in enumerate(p.path[:-1]):
            by_node.setdefault(node, []).append(
                (truth.arrival_times_ms[hop], truth.arrival_times_ms[hop + 1])
            )
    for node, pairs in by_node.items():
        pairs.sort()
        for (a_in, a_out), (b_in, b_out) in zip(pairs, pairs[1:]):
            if a_in == b_in:
                continue
            assert a_out <= b_out, (
                f"FIFO violated at node {node}: in {a_in}<{b_in} "
                f"but out {a_out}>{b_out}"
            )
            checked += 1
    assert checked > 100


def test_t0_reconstruction_is_millisecond_accurate(trace):
    """e2e-accumulation time reconstruction errs only by clock drift."""
    errors = [
        abs(p.generation_time_ms - trace.truth_of(p.packet_id).arrival_times_ms[0])
        for p in trace.received
    ]
    assert max(errors) < 2.0
    assert float(np.mean(errors)) < 0.5


def test_sum_of_delays_lower_constraint_holds(trace):
    """Paper Eq. (7): S(p) >= D_src(p) + sum over C*(p), even with loss."""
    slack = 2.0  # quantization + drift tolerance
    received = trace.sorted_by_generation()
    by_source: dict[int, list] = {}
    for p in received:
        by_source.setdefault(p.packet_id.source, []).append(p)
    checked = 0
    for source, packets in by_source.items():
        packets.sort(key=lambda p: p.packet_id.seqno)
        for prev, cur in zip(packets, packets[1:]):
            if cur.packet_id.seqno != prev.packet_id.seqno + 1:
                continue  # a local packet was lost in between
            t0_prev = trace.truth_of(prev.packet_id).arrival_times_ms[0]
            t0_cur = trace.truth_of(cur.packet_id).arrival_times_ms[0]
            guaranteed = 0.0
            for x in received:
                # q's own delay was flushed into S(q), and p's delay is the
                # separate D term, so both are excluded from the sum.
                if x.packet_id in (cur.packet_id, prev.packet_id):
                    continue
                if source not in x.path[:-1]:
                    continue
                truth_x = trace.truth_of(x.packet_id)
                if (
                    truth_x.arrival_times_ms[0] >= t0_prev
                    and x.sink_arrival_ms <= t0_cur
                ):
                    hop = x.path.index(source)
                    guaranteed += truth_x.node_delay_ms(hop)
            own = trace.truth_of(cur.packet_id).node_delay_ms(0)
            assert cur.sum_of_delays_ms >= own + guaranteed - slack, (
                f"S(p) constraint violated for {cur.packet_id}"
            )
            checked += 1
    assert checked > 50


def test_sum_of_delays_field_is_quantized(trace):
    for p in trace.received:
        assert isinstance(p.sum_of_delays_ms, int)
        assert 0 <= p.sum_of_delays_ms <= SUM_OF_DELAYS_MAX_MS


def test_node_logs_ordered_locally(trace):
    assert trace.node_logs
    for node, log in trace.node_logs.items():
        times = [entry.local_time_ms for entry in log]
        assert times == sorted(times), f"node {node} log out of order"


def test_same_seed_reproduces_trace():
    a = small_trace(duration_ms=20_000.0)
    b = small_trace(duration_ms=20_000.0)
    assert a.num_received == b.num_received
    for pa, pb in zip(a.received, b.received):
        assert pa == pb


def test_different_seeds_differ():
    a = small_trace(duration_ms=20_000.0, seed=1)
    b = small_trace(duration_ms=20_000.0, seed=2)
    assert a.received != b.received


def test_domo_disabled_clears_instrumentation():
    trace = small_trace(duration_ms=20_000.0, domo_enabled=False)
    assert trace.num_received > 10
    assert all(p.sum_of_delays_ms == 0 for p in trace.received)
    # t0 falls back to the simulator's ground truth (no e2e field).
    for p in trace.received[:20]:
        assert p.generation_time_ms == pytest.approx(
            trace.truth_of(p.packet_id).arrival_times_ms[0]
        )


def test_uniform_network_runs():
    trace = simulate_network(
        num_nodes=50, duration_ms=30_000.0, packet_period_ms=5_000.0, seed=5
    )
    assert trace.num_received > 50
    assert max(p.path_length for p in trace.received) >= 3


def test_invalid_placement_rejected():
    with pytest.raises(ValueError):
        Simulator(NetworkConfig(placement="ring"))
    with pytest.raises(ValueError):
        Simulator(NetworkConfig(placement="grid", num_nodes=10))
