"""Tests for the ETX-gradient routing engine."""

import numpy as np

from repro.sim.ctp import RoutingConfig, RoutingEngine
from repro.sim.radio import LinkModel, RadioConfig
from repro.sim.topology import grid_topology, line_topology


def _engine(topo, seed=0, **routing_kwargs):
    links = LinkModel(
        topo.positions,
        RadioConfig(shadowing_sigma_db=0.0, fading_walk_db=0.0),
        rng=np.random.default_rng(seed),
    )
    config = RoutingConfig(estimate_noise=0.0, **routing_kwargs)
    engine = RoutingEngine(links, sink=topo.sink, config=config,
                           rng=np.random.default_rng(seed))
    engine.refresh(0.0, force=True)
    return engine


def test_line_routes_toward_sink():
    topo = line_topology(5, spacing_m=25.0)
    engine = _engine(topo)
    for node in range(1, 5):
        assert engine.parent(node, 0.0) == node - 1


def test_sink_has_no_parent():
    topo = line_topology(3)
    engine = _engine(topo)
    assert engine.parent(0, 0.0) is None


def test_routes_are_loop_free_within_epoch():
    topo = grid_topology(5, spacing_m=25.0)
    engine = _engine(topo)
    for node in range(1, topo.num_nodes):
        route = engine.route_of(node, 0.0)
        assert route[-1] == topo.sink, f"node {node} not connected"
        assert len(set(route)) == len(route), f"loop in route {route}"


def test_disconnected_node_has_no_route():
    topo = line_topology(4, spacing_m=100.0)  # beyond max range
    engine = _engine(topo)
    assert engine.parent(2, 0.0) is None
    assert not engine.is_connected(2)


def test_routes_change_under_fading():
    """Routing dynamics: parents change over a long run with strong fading."""
    topo = grid_topology(5, spacing_m=30.0)
    links = LinkModel(
        topo.positions,
        RadioConfig(shadowing_sigma_db=3.0, fading_walk_db=3.0),
        rng=np.random.default_rng(7),
    )
    engine = RoutingEngine(
        links,
        sink=0,
        config=RoutingConfig(estimate_noise=0.15, switch_threshold_etx=0.2),
        rng=np.random.default_rng(7),
    )
    engine.refresh(0.0, force=True)
    for t in np.arange(0.0, 600_000.0, 10_000.0):
        engine.refresh(float(t), force=True)
    assert engine.parent_changes > 0


def test_hysteresis_limits_parent_flapping():
    """Higher switch thresholds must not increase parent changes."""
    topo = grid_topology(4, spacing_m=30.0)

    def churn(threshold):
        links = LinkModel(
            topo.positions,
            RadioConfig(shadowing_sigma_db=3.0, fading_walk_db=2.0),
            rng=np.random.default_rng(3),
        )
        engine = RoutingEngine(
            links,
            sink=0,
            config=RoutingConfig(
                estimate_noise=0.2, switch_threshold_etx=threshold
            ),
            rng=np.random.default_rng(3),
        )
        for t in np.arange(0.0, 300_000.0, 10_000.0):
            engine.refresh(float(t), force=True)
        return engine.parent_changes

    assert churn(5.0) <= churn(0.0)


def test_refresh_is_rate_limited():
    topo = line_topology(3)
    engine = _engine(topo, beacon_period_ms=10_000.0)
    engine.refresh(100.0)
    first_update = engine._last_update_ms
    engine.refresh(5_000.0)  # within the beacon period: no-op
    assert engine._last_update_ms == first_update
    engine.refresh(20_000.0)
    assert engine._last_update_ms == 20_000.0
