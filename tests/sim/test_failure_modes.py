"""Failure-injection tests: overflow, retry exhaustion, partitions, faults."""

import numpy as np
import pytest

from repro.sim import NetworkConfig, Simulator
from repro.sim.radio import RadioConfig
from repro.sim.mac import MacConfig


def test_queue_overflow_drops_packets():
    """A tiny queue under heavy load must shed packets, not wedge."""
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=30_000.0,
        packet_period_ms=300.0,  # aggressive load
        queue_capacity=2,
        seed=1,
    )
    simulator = Simulator(config)
    trace = simulator.run()
    overflow = sum(
        node.queue_stats.dropped_overflow
        for node in simulator.nodes.values()
    )
    assert overflow > 0
    assert trace.num_received > 0
    # Every lost packet is accounted for.
    assert len(trace.lost_packets) > 0


def test_retry_exhaustion_on_terrible_links():
    """Weak links force retry exhaustion; the trace stays consistent."""
    config = NetworkConfig(
        num_nodes=9,
        placement="grid",
        duration_ms=30_000.0,
        packet_period_ms=2_000.0,
        seed=2,
        radio=RadioConfig(reference_loss_db=53.0, shadowing_sigma_db=0.0),
        mac=MacConfig(max_transmissions=2),
    )
    simulator = Simulator(config)
    trace = simulator.run()
    exhausted = sum(
        node.stats.dropped_retries for node in simulator.nodes.values()
    )
    assert exhausted > 0
    for p in trace.received:
        truth = trace.truth_of(p.packet_id)
        assert truth.path == p.path


def test_partitioned_network_drops_unroutable_packets():
    """Nodes with no route to the sink give up without wedging."""
    config = NetworkConfig(
        num_nodes=9,
        placement="grid",
        duration_ms=25_000.0,
        packet_period_ms=2_000.0,
        seed=3,
        radio=RadioConfig(max_range_m=20.0),  # grid spacing 25 m: isolated
    )
    simulator = Simulator(config)
    trace = simulator.run()
    assert trace.num_received == 0
    no_route = sum(
        node.stats.dropped_no_route for node in simulator.nodes.values()
    )
    assert no_route > 0


def test_slow_node_fault_injection_increases_its_delay():
    base = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=40_000.0,
        packet_period_ms=3_000.0,
        seed=4,
    )
    healthy = Simulator(base).run()

    victim = 5
    faulty_config = NetworkConfig(
        **{**base.__dict__, "slow_nodes": {victim: 30.0}}
    )
    faulty = Simulator(faulty_config).run()

    def mean_delay_at(trace, node):
        delays = []
        for p in trace.received:
            truth = trace.truth_of(p.packet_id)
            for hop, n in enumerate(p.path[:-1]):
                if n == node:
                    delays.append(truth.node_delay_ms(hop))
        return float(np.mean(delays)) if delays else float("nan")

    healthy_delay = mean_delay_at(healthy, victim)
    faulty_delay = mean_delay_at(faulty, victim)
    assert faulty_delay > healthy_delay + 20.0


def test_sum_of_delays_still_sound_after_retry_losses():
    """Eq. (7) must hold even when lost packets flushed the accumulator."""
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=40_000.0,
        packet_period_ms=1_500.0,
        seed=5,
        radio=RadioConfig(reference_loss_db=50.0),
        mac=MacConfig(max_transmissions=5),
    )
    trace = Simulator(config).run()
    assert len(trace.lost_packets) > 0

    from repro.core.candidate import compute_candidate_sets
    from repro.core.records import TraceIndex

    index = TraceIndex(list(trace.received))
    checked = 0
    for packet in trace.received:
        sets = compute_candidate_sets(index, packet)
        if sets is None or not sets.anchored:
            continue
        guaranteed = 0.0
        for candidate, hop in sets.guaranteed:
            guaranteed += trace.truth_of(candidate.packet_id).node_delay_ms(hop)
        own = trace.truth_of(packet.packet_id).node_delay_ms(0)
        assert packet.sum_of_delays_ms >= own + guaranteed - 2.0
        checked += 1
    assert checked > 10


def test_sum_field_saturates_not_wraps():
    """The 2-byte S(p) field clips at 65535 instead of wrapping."""
    from repro.sim.packet import quantize_ms

    assert quantize_ms(1e9) == 65535
    assert quantize_ms(-5.0) == 0
    assert quantize_ms(12.4) == 12
    assert quantize_ms(12.6) == 13
