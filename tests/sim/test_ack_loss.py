"""Tests for ack loss, duplicate suppression and frame snapshots."""

import numpy as np
import pytest

from repro.sim import NetworkConfig, Simulator
from repro.sim.mac import MacConfig
from repro.sim.packet import Packet, PacketHeader, PacketId


def _run(ack_loss, seed=3, duration=30_000.0):
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=duration,
        packet_period_ms=2_000.0,
        seed=seed,
        mac=MacConfig(ack_loss_prob=ack_loss),
    )
    simulator = Simulator(config)
    return simulator, simulator.run()


def test_ack_loss_produces_suppressed_duplicates():
    simulator, trace = _run(ack_loss=0.2)
    duplicates = sum(
        node.stats.duplicates_suppressed for node in simulator.nodes.values()
    )
    assert duplicates > 0
    assert trace.num_received > 50


def test_no_packet_is_received_twice():
    _, trace = _run(ack_loss=0.3)
    ids = [p.packet_id for p in trace.received]
    assert len(ids) == len(set(ids))


def test_lost_list_excludes_delivered_packets():
    """Retry-exhaustion after an unacked delivery must not mark loss."""
    _, trace = _run(ack_loss=0.3)
    delivered = {p.packet_id for p in trace.received}
    assert not (set(trace.lost_packets) & delivered)


def test_arrival_times_still_monotone_under_ack_loss():
    _, trace = _run(ack_loss=0.25)
    for p in trace.received:
        times = trace.truth_of(p.packet_id).arrival_times_ms
        for a, b in zip(times, times[1:]):
            assert b > a


def test_fifo_preserved_under_ack_loss():
    """First-delivery arrival order still follows queue order."""
    _, trace = _run(ack_loss=0.25)
    by_node: dict[int, list[tuple[float, float]]] = {}
    for p in trace.received:
        truth = trace.truth_of(p.packet_id)
        for hop, node in enumerate(p.path[:-1]):
            by_node.setdefault(node, []).append(
                (truth.arrival_times_ms[hop], truth.arrival_times_ms[hop + 1])
            )
    for node, pairs in by_node.items():
        pairs.sort()
        for (a_in, a_out), (b_in, b_out) in zip(pairs, pairs[1:]):
            if a_in == b_in:
                continue
            assert a_out <= b_out, f"FIFO violated at node {node}"


def test_e2e_field_overcounts_but_stays_bounded():
    """Sojourn over-counting shifts t0 reconstruction, within reason."""
    _, trace = _run(ack_loss=0.25)
    errors = [
        p.generation_time_ms - trace.truth_of(p.packet_id).arrival_times_ms[0]
        for p in trace.received
    ]
    # Over-counted e2e => reconstructed t0 earlier than truth (negative).
    assert min(errors) < 0.5
    assert float(np.mean(np.abs(errors))) < 30.0


def test_delivery_copy_is_independent():
    packet = Packet(
        header=PacketHeader(packet_id=PacketId(1, 0), path=[1]),
        generation_time_ms=5.0,
        arrival_times_ms=[5.0],
    )
    frame = packet.delivery_copy()
    frame.header.path.append(2)
    frame.arrival_times_ms.append(9.0)
    frame.header.e2e_delay_ms += 4.0
    assert packet.header.path == [1]
    assert packet.arrival_times_ms == [5.0]
    assert packet.header.e2e_delay_ms == 0.0
