"""Tests for trace serialization."""

import gzip
import json

import pytest

from repro.sim import NetworkConfig, simulate_network
from repro.sim.io import (
    FORMAT_VERSION,
    GZIP_MAGIC,
    TraceFormatError,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=3_000.0,
            seed=6,
        )
    )


def test_dict_roundtrip(trace):
    restored = trace_from_dict(trace_to_dict(trace))
    assert restored.received == trace.received
    assert restored.ground_truth == trace.ground_truth
    assert restored.node_logs == trace.node_logs
    assert restored.lost_packets == trace.lost_packets
    assert restored.sink == trace.sink
    assert restored.duration_ms == trace.duration_ms


def test_file_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    restored = load_trace(path)
    assert restored.received == trace.received
    assert len(restored.node_logs) == len(trace.node_logs)


def test_gzip_roundtrip(tmp_path, trace):
    plain = tmp_path / "trace.json"
    packed = tmp_path / "trace.json.gz"
    save_trace(trace, plain)
    save_trace(trace, packed)
    assert packed.stat().st_size < plain.stat().st_size
    assert load_trace(packed).received == trace.received


def test_json_is_plain_and_versioned(tmp_path, trace):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    data = json.loads(path.read_text())
    assert data["version"] == FORMAT_VERSION
    assert isinstance(data["received"], list)


def test_version_mismatch_rejected(trace):
    data = trace_to_dict(trace)
    data["version"] = 999
    with pytest.raises(ValueError):
        trace_from_dict(data)


def test_gzip_detected_by_magic_not_suffix(tmp_path, trace):
    """A mis-suffixed archive (classic operator error) still loads."""
    gzipped_as_json = tmp_path / "trace.json"  # gzip bytes, plain suffix
    plain_as_gz = tmp_path / "trace2.json.gz"  # plain text, gzip suffix
    payload = json.dumps(trace_to_dict(trace)).encode("utf-8")
    gzipped_as_json.write_bytes(gzip.compress(payload))
    plain_as_gz.write_bytes(payload)
    assert gzipped_as_json.read_bytes()[:2] == GZIP_MAGIC
    assert load_trace(gzipped_as_json).received == trace.received
    assert load_trace(plain_as_gz).received == trace.received


def test_missing_file_raises_trace_format_error(tmp_path):
    with pytest.raises(TraceFormatError, match="not found"):
        load_trace(tmp_path / "nope.json")


def test_directory_path_raises_trace_format_error(tmp_path):
    with pytest.raises(TraceFormatError, match="directory"):
        load_trace(tmp_path)


def test_truncated_gzip_raises_trace_format_error(tmp_path, trace):
    path = tmp_path / "trace.json.gz"
    save_trace(trace, path)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.raises(TraceFormatError, match="gzip"):
        load_trace(path)


def test_non_json_payload_raises_trace_format_error(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text("this is not json {")
    with pytest.raises(TraceFormatError, match="not valid JSON"):
        load_trace(path)


def test_binary_garbage_raises_trace_format_error(tmp_path):
    path = tmp_path / "trace.json"
    path.write_bytes(b"\xff\xfe\x00\x01 binary junk \x80")
    with pytest.raises(TraceFormatError, match="neither gzip nor UTF-8"):
        load_trace(path)


def test_malformed_record_error_names_packet_and_field(trace):
    data = trace_to_dict(trace)
    pid = data["received"][3]["id"]
    del data["received"][3]["t_sink"]
    with pytest.raises(TraceFormatError) as excinfo:
        trace_from_dict(data)
    message = str(excinfo.value)
    assert f"{pid[0]}#{pid[1]}" in message
    assert "t_sink" in message


def test_type_corrupted_field_error_names_packet(trace):
    data = trace_to_dict(trace)
    pid = data["received"][0]["id"]
    data["received"][0]["t0"] = "yesterday"
    with pytest.raises(TraceFormatError, match=f"{pid[0]}#{pid[1]}"):
        trace_from_dict(data)


def test_load_trace_repair_mode_survives_corruption(tmp_path, trace):
    """Tolerant ingestion drops the bad records and reports them."""
    from repro.core.validation import ValidationConfig

    data = trace_to_dict(trace)
    del data["received"][0]["path"]  # truncated record
    data["received"][1]["t_sink"] = -1.0  # impossible timestamps
    path = tmp_path / "dirty.json"
    path.write_text(json.dumps(data))
    with pytest.raises(TraceFormatError):
        load_trace(path)  # strict parse still refuses
    restored = load_trace(path, validation=ValidationConfig(mode="repair"))
    report = restored.validation_report
    assert report is not None
    assert report.malformed_records == 1
    assert report.num_quarantined == 1
    assert len(restored.received) == trace.num_received - 2


def test_load_trace_strict_validation_raises(tmp_path, trace):
    from repro.core.validation import TraceValidationError, ValidationConfig

    data = trace_to_dict(trace)
    data["received"][1]["t_sink"] = -1.0
    path = tmp_path / "dirty.json"
    path.write_text(json.dumps(data))
    with pytest.raises(TraceValidationError):
        load_trace(path, validation=ValidationConfig(mode="strict"))


def test_reconstruction_on_restored_trace(tmp_path, trace):
    """Domo must produce identical estimates on the reloaded trace."""
    from repro.core.pipeline import DomoConfig, DomoReconstructor

    path = tmp_path / "trace.json.gz"
    save_trace(trace, path)
    restored = load_trace(path)
    domo = DomoReconstructor(DomoConfig())
    original = domo.estimate(trace)
    reloaded = domo.estimate(restored)
    assert original.arrival_times == reloaded.arrival_times


# ----------------------------------------------------------------------
# JSON Lines streaming format
# ----------------------------------------------------------------------


def test_jsonl_roundtrip_preserves_packets(tmp_path, trace):
    from repro.sim.io import iter_packets_jsonl, save_packets_jsonl

    path = tmp_path / "stream.jsonl"
    written = save_packets_jsonl(trace.received, path)
    assert written == trace.num_received
    restored = list(iter_packets_jsonl(path))
    assert restored == trace.received


def test_jsonl_sorts_by_sink_arrival_when_asked(tmp_path, trace):
    from repro.sim.io import iter_packets_jsonl, save_packets_jsonl

    path = tmp_path / "stream.jsonl"
    save_packets_jsonl(trace.received, path, sort_by_arrival=True)
    arrivals = [p.sink_arrival_ms for p in iter_packets_jsonl(path)]
    assert arrivals == sorted(arrivals)


def test_jsonl_gzip_roundtrip(tmp_path, trace):
    from repro.sim.io import iter_packets_jsonl, save_packets_jsonl

    path = tmp_path / "stream.jsonl.gz"
    save_packets_jsonl(trace.received, path)
    assert path.read_bytes()[:2] == GZIP_MAGIC
    assert list(iter_packets_jsonl(path)) == trace.received


def test_jsonl_chunked_reader_covers_everything(tmp_path, trace):
    from repro.sim.io import read_packets_jsonl_chunks, save_packets_jsonl

    path = tmp_path / "stream.jsonl"
    save_packets_jsonl(trace.received, path)
    chunks = list(read_packets_jsonl_chunks(path, chunk_size=7))
    assert all(len(chunk) <= 7 for chunk in chunks)
    assert [p for chunk in chunks for p in chunk] == trace.received
    with pytest.raises(ValueError):
        list(read_packets_jsonl_chunks(path, chunk_size=0))


def test_jsonl_reads_from_any_line_iterable(trace):
    from repro.sim.io import iter_packets_jsonl, packet_to_json

    lines = [json.dumps(packet_to_json(p)) for p in trace.received[:5]]
    lines.insert(2, "")  # blank lines are skipped
    assert list(iter_packets_jsonl(lines)) == trace.received[:5]


def test_jsonl_malformed_line_names_its_number(tmp_path, trace):
    from repro.sim.io import iter_packets_jsonl, save_packets_jsonl

    path = tmp_path / "stream.jsonl"
    save_packets_jsonl(trace.received[:3], path)
    with path.open("a", encoding="utf-8") as handle:
        handle.write("{not json\n")
    with pytest.raises(TraceFormatError, match="line 4"):
        list(iter_packets_jsonl(path))


def test_jsonl_missing_file_raises_format_error(tmp_path):
    from repro.sim.io import iter_packets_jsonl

    with pytest.raises(TraceFormatError, match="not found"):
        list(iter_packets_jsonl(tmp_path / "absent.jsonl"))


def test_jsonl_truncated_final_line_tolerated_and_counted(tmp_path, trace):
    """A producer killed mid-write leaves a cut-off last line; tolerant
    readers skip it and count it, strict readers still raise."""
    from repro.core.validation import ValidationReport
    from repro.sim.io import (
        iter_packets_jsonl,
        packet_to_json,
        read_packets_jsonl_chunks,
        save_packets_jsonl,
    )

    path = tmp_path / "stream.jsonl"
    save_packets_jsonl(trace.received[:5], path)
    torn = json.dumps(packet_to_json(trace.received[5]))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(torn[: len(torn) // 2])  # no newline: torn write

    # Default (strict) behavior is unchanged: the bad line raises.
    with pytest.raises(TraceFormatError, match="line 6"):
        list(iter_packets_jsonl(path))

    report = ValidationReport(mode="repair")
    survivors = list(
        iter_packets_jsonl(
            path, tolerate_truncated_tail=True, report=report
        )
    )
    assert survivors == trace.received[:5]
    assert report.truncated_lines == 1
    assert not report.clean
    assert report.as_dict()["truncated_lines"] == 1

    report2 = ValidationReport(mode="repair")
    chunks = list(
        read_packets_jsonl_chunks(
            path, 2, tolerate_truncated_tail=True, report=report2
        )
    )
    assert [p for chunk in chunks for p in chunk] == trace.received[:5]
    assert report2.truncated_lines == 1


def test_jsonl_bad_line_mid_stream_raises_even_when_tolerant(
    tmp_path, trace
):
    from repro.sim.io import iter_packets_jsonl, save_packets_jsonl

    path = tmp_path / "stream.jsonl"
    save_packets_jsonl(trace.received[:4], path)
    text = path.read_text(encoding="utf-8").splitlines(keepends=True)
    text.insert(2, "{cut off mid\n")
    path.write_text("".join(text), encoding="utf-8")
    with pytest.raises(TraceFormatError, match="line 3"):
        list(iter_packets_jsonl(path, tolerate_truncated_tail=True))
