"""Tests for trace serialization."""

import json

import pytest

from repro.sim import NetworkConfig, simulate_network
from repro.sim.io import (
    FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=3_000.0,
            seed=6,
        )
    )


def test_dict_roundtrip(trace):
    restored = trace_from_dict(trace_to_dict(trace))
    assert restored.received == trace.received
    assert restored.ground_truth == trace.ground_truth
    assert restored.node_logs == trace.node_logs
    assert restored.lost_packets == trace.lost_packets
    assert restored.sink == trace.sink
    assert restored.duration_ms == trace.duration_ms


def test_file_roundtrip(tmp_path, trace):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    restored = load_trace(path)
    assert restored.received == trace.received
    assert len(restored.node_logs) == len(trace.node_logs)


def test_gzip_roundtrip(tmp_path, trace):
    plain = tmp_path / "trace.json"
    packed = tmp_path / "trace.json.gz"
    save_trace(trace, plain)
    save_trace(trace, packed)
    assert packed.stat().st_size < plain.stat().st_size
    assert load_trace(packed).received == trace.received


def test_json_is_plain_and_versioned(tmp_path, trace):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    data = json.loads(path.read_text())
    assert data["version"] == FORMAT_VERSION
    assert isinstance(data["received"], list)


def test_version_mismatch_rejected(trace):
    data = trace_to_dict(trace)
    data["version"] = 999
    with pytest.raises(ValueError):
        trace_from_dict(data)


def test_reconstruction_on_restored_trace(tmp_path, trace):
    """Domo must produce identical estimates on the reloaded trace."""
    from repro.core.pipeline import DomoConfig, DomoReconstructor

    path = tmp_path / "trace.json.gz"
    save_trace(trace, path)
    restored = load_trace(path)
    domo = DomoReconstructor(DomoConfig())
    original = domo.estimate(trace)
    reloaded = domo.estimate(restored)
    assert original.arrival_times == reloaded.arrival_times
