"""Tests for the FIFO send queue and the collision channel."""

import pytest

from repro.sim.mac import Channel, MacConfig
from repro.sim.packet import Packet, PacketHeader, PacketId
from repro.sim.queueing import FifoSendQueue


def _packet(source=1, seqno=0):
    return Packet(header=PacketHeader(packet_id=PacketId(source, seqno)))


class TestFifoSendQueue:
    def test_fifo_order(self):
        q = FifoSendQueue(capacity=5)
        packets = [_packet(seqno=i) for i in range(3)]
        for p in packets:
            assert q.offer(p)
        for p in packets:
            assert q.head() is p
            assert q.pop() is p
        assert q.is_empty

    def test_overflow_drops(self):
        q = FifoSendQueue(capacity=2)
        assert q.offer(_packet(seqno=0))
        assert q.offer(_packet(seqno=1))
        assert not q.offer(_packet(seqno=2))
        assert q.stats.dropped_overflow == 1
        assert len(q) == 2

    def test_stats_track_throughput(self):
        q = FifoSendQueue(capacity=4)
        for i in range(3):
            q.offer(_packet(seqno=i))
        q.pop()
        assert q.stats.enqueued == 3
        assert q.stats.dequeued == 1
        assert q.stats.peak_depth == 3


class TestChannel:
    def test_overlap_detection(self):
        ch = Channel()
        ch.begin(1, 0.0, 4.0)
        ch.begin(2, 2.0, 6.0)
        assert ch.overlapping_senders(0.0, 4.0, exclude=1) == [2]
        assert ch.is_transmitting(1)

    def test_non_overlapping_not_reported(self):
        ch = Channel()
        ch.begin(1, 0.0, 2.0)
        ch.finish(1)
        # A frame strictly after sender 1's airtime does not collide.
        assert ch.overlapping_senders(2.5, 4.0, exclude=9) == []

    def test_finished_frames_stay_visible_within_history(self):
        """A short frame entirely inside a long frame must still collide."""
        ch = Channel()
        ch.begin(1, 0.0, 10.0)  # long frame
        ch.begin(2, 2.0, 4.0)  # short frame inside
        ch.finish(2)
        # The long frame finishes later and must still see sender 2.
        assert 2 in ch.overlapping_senders(0.0, 10.0, exclude=1)

    def test_double_begin_rejected(self):
        ch = Channel()
        ch.begin(1, 0.0, 2.0)
        with pytest.raises(RuntimeError):
            ch.begin(1, 1.0, 3.0)

    def test_finish_returns_transmission(self):
        ch = Channel()
        ch.begin(3, 1.0, 5.0)
        tx = ch.finish(3)
        assert tx.sender == 3
        assert tx.start_ms == 1.0
        assert not ch.is_transmitting(3)

    def test_history_pruning(self):
        ch = Channel(history_ms=10.0)
        for i in range(50):
            start = float(i * 100)
            ch.begin(1, start, start + 1.0)
            ch.finish(1)
        assert len(ch._recent) < 5


def test_mac_config_defaults_are_sane():
    cfg = MacConfig()
    assert cfg.initial_backoff_min_ms < cfg.initial_backoff_max_ms
    assert cfg.retry_backoff_min_ms < cfg.retry_backoff_max_ms
    assert cfg.max_transmissions >= 1
    assert cfg.processing_floor_ms > 0.0
