"""Tests for drifting local clocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.clock import LocalClock


def test_identity_clock():
    clock = LocalClock()
    assert clock.local_time(123.0) == 123.0
    assert clock.elapsed_local(10.0, 20.0) == 10.0


def test_offset_shifts_but_preserves_intervals():
    clock = LocalClock(offset_ms=5000.0)
    assert clock.local_time(0.0) == 5000.0
    assert clock.elapsed_local(100.0, 150.0) == pytest.approx(50.0)


def test_drift_scales_intervals():
    clock = LocalClock(drift_ppm=100.0)  # 1e-4 relative error
    measured = clock.elapsed_local(0.0, 10_000.0)
    assert measured == pytest.approx(10_001.0, abs=1e-6)


def test_random_clock_within_limits():
    rng = np.random.default_rng(0)
    for _ in range(20):
        clock = LocalClock.random(rng, max_offset_ms=1e6, max_drift_ppm=50.0)
        assert 0.0 <= clock.offset_ms <= 1e6
        assert abs(clock.drift_ppm) <= 50.0


@settings(max_examples=50, deadline=None)
@given(
    offset=st.floats(0, 1e7, allow_nan=False),
    drift=st.floats(-50, 50, allow_nan=False),
    start=st.floats(0, 1e6, allow_nan=False),
    span=st.floats(0, 1e4, allow_nan=False),
)
def test_sojourn_measurement_error_is_bounded_by_drift(offset, drift, start, span):
    """The local measurement of an interval errs by at most drift * span.

    This is the property that justifies the paper's assumption that node
    delays are 'measurable accurately at that node' despite unsynchronized
    clocks: offsets cancel in differences.
    """
    clock = LocalClock(offset_ms=offset, drift_ppm=drift)
    measured = clock.elapsed_local(start, start + span)
    error = abs(measured - span)
    assert error <= abs(drift) * 1e-6 * span + 1e-6
