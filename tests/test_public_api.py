"""Smoke tests of the top-level package API."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_readme_quickstart_flow():
    """The README's quickstart snippet must work verbatim (small scale)."""
    from repro import DomoConfig, DomoReconstructor, NetworkConfig, simulate_network

    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=3_000.0,
            seed=1,
        )
    )
    domo = DomoReconstructor(DomoConfig())
    estimate = domo.estimate(trace)
    packet = trace.received[0]
    delays = estimate.delays_of(packet.packet_id)
    assert len(delays) == packet.path_length - 1
    truth = trace.truth_of(packet.packet_id).node_delays()
    assert len(truth) == len(delays)


def test_metrics_exports():
    assert repro.average_displacement(["a", "b"], ["b", "a"]) == 1.0
