"""Tests for balanced label propagation refinement."""

import numpy as np

from repro.graphcut.blp import refine_two_way
from repro.graphcut.graph import ConstraintGraph


def _two_cliques(k=6, bridge_edges=1):
    """Two k-cliques joined by a few bridge edges: an obvious best cut."""
    g = ConstraintGraph()
    left = [f"L{i}" for i in range(k)]
    right = [f"R{i}" for i in range(k)]
    g.add_clique(left)
    g.add_clique(right)
    for i in range(bridge_edges):
        g.add_edge(left[i], right[i])
    return g, set(left), set(right)


def test_refine_fixes_a_bad_split():
    g, left, right = _two_cliques()
    # Start with a deliberately wrong partition: one right vertex swapped in.
    bad = (left - {"L0"}) | {"R0"}
    result = refine_two_way(g, bad, size_bounds=(5, 7))
    assert result.final_cut <= result.initial_cut
    assert result.final_cut <= g.cut_weight(left)


def test_refine_keeps_perfect_split():
    g, left, _ = _two_cliques(bridge_edges=1)
    result = refine_two_way(g, left)
    assert result.inside == left
    assert result.final_cut == 1


def test_frozen_vertices_never_move():
    g, left, right = _two_cliques()
    bad = (left - {"L0"}) | {"R0"}
    result = refine_two_way(
        g, bad, size_bounds=(5, 7), frozen={"R0"}
    )
    assert "R0" in result.inside


def test_size_bounds_respected():
    g, left, right = _two_cliques(k=8)
    start = set(list(left)[:4]) | set(list(right)[:4])
    result = refine_two_way(g, start, size_bounds=(7, 9))
    assert 7 <= len(result.inside) <= 9


def test_cut_never_increases():
    rng = np.random.default_rng(0)
    g = ConstraintGraph()
    n = 40
    for _ in range(120):
        a, b = rng.integers(0, n, size=2)
        g.add_edge(int(a), int(b))
    for trial in range(5):
        inside = {int(v) for v in rng.choice(n, size=20, replace=False)
                  if v in set(g.vertices())}
        inside = {v for v in inside if v in g}
        if not inside:
            continue
        result = refine_two_way(g, inside)
        assert result.final_cut <= result.initial_cut


def test_empty_boundary_terminates_immediately():
    g = ConstraintGraph()
    g.add_clique(["a", "b", "c"])
    g.add_vertex("iso")
    result = refine_two_way(g, {"a", "b", "c"}, size_bounds=(2, 4))
    assert result.final_cut == 0


def test_input_set_not_mutated():
    g, left, _ = _two_cliques()
    original = set(left)
    refine_two_way(g, left)
    assert left == original
