"""Tests for the constraint graph structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphcut.graph import ConstraintGraph


def _path_graph(n):
    g = ConstraintGraph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def test_counts():
    g = _path_graph(5)
    assert g.num_vertices == 5
    assert g.num_edges == 4


def test_add_edge_accumulates_weight():
    g = ConstraintGraph()
    g.add_edge("a", "b")
    g.add_edge("a", "b", weight=2)
    assert g.neighbors("a")["b"] == 3
    assert g.neighbors("b")["a"] == 3
    assert g.num_edges == 1


def test_self_loops_ignored():
    g = ConstraintGraph()
    g.add_edge("a", "a")
    assert g.num_edges == 0


def test_add_clique():
    g = ConstraintGraph()
    g.add_clique(["a", "b", "c"])
    assert g.num_edges == 3
    g.add_clique(["a", "b", "c"])  # reinforces weights
    assert g.neighbors("a")["b"] == 2


def test_add_clique_dedupes_members():
    g = ConstraintGraph()
    g.add_clique(["a", "a", "b"])
    assert g.num_edges == 1
    assert g.neighbors("a")["b"] == 1


def test_isolated_vertex():
    g = ConstraintGraph()
    g.add_vertex("lonely")
    assert "lonely" in g
    assert g.neighbors("lonely") == {}
    assert g.degree("lonely") == 0


def test_degree_is_weighted():
    g = ConstraintGraph()
    g.add_edge("a", "b", weight=2)
    g.add_edge("a", "c", weight=3)
    assert g.degree("a") == 5


def test_bfs_ball_order_and_cap():
    g = _path_graph(10)
    ball = g.bfs_ball(5, 5)
    assert ball[0] == 5
    assert len(ball) == 5
    assert set(ball) <= set(range(10))
    # BFS from the middle reaches both sides before distance-2 vertices.
    assert set(ball[1:3]) == {4, 6}


def test_bfs_ball_whole_component():
    g = _path_graph(4)
    assert set(g.bfs_ball(0, 100)) == {0, 1, 2, 3}


def test_bfs_ball_missing_vertex():
    g = _path_graph(3)
    with pytest.raises(KeyError):
        g.bfs_ball(99, 5)


def test_cut_weight():
    g = _path_graph(6)
    assert g.cut_weight({0, 1, 2}) == 1  # only edge (2, 3) crosses
    assert g.cut_weight({0, 2, 4}) == 5  # every edge crosses
    assert g.cut_weight(set(g.vertices())) == 0
    assert g.cut_weight(set()) == 0


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        max_size=40,
    ),
    inside_bits=st.integers(0, 2 ** 16 - 1),
)
def test_cut_weight_symmetry(edges, inside_bits):
    """cut(S) == cut(complement of S) for any vertex subset."""
    g = ConstraintGraph()
    for a, b in edges:
        g.add_edge(a, b)
    vertices = set(g.vertices())
    inside = {v for v in vertices if inside_bits >> v & 1}
    outside = vertices - inside
    assert g.cut_weight(inside) == g.cut_weight(outside)
