"""Tests for per-target sub-graph extraction."""

import numpy as np
import pytest

from repro.graphcut.extraction import SubgraphExtractor
from repro.graphcut.graph import ConstraintGraph


def _grid_graph(width, height):
    g = ConstraintGraph()
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                g.add_edge((x, y), (x + 1, y))
            if y + 1 < height:
                g.add_edge((x, y), (x, y + 1))
    return g


def test_small_graph_returned_whole():
    g = _grid_graph(3, 3)
    extractor = SubgraphExtractor(g, cut_size=100)
    result = extractor.extract((1, 1))
    assert result.size == 9
    assert result.cut_edges == 0


def test_extraction_contains_target_and_neighbors():
    g = _grid_graph(20, 20)
    extractor = SubgraphExtractor(g, cut_size=50)
    target = (10, 10)
    result = extractor.extract(target)
    assert target in result.inside
    for neighbor in g.neighbors(target):
        assert neighbor in result.inside
    assert 40 <= result.size <= 60


def test_blp_does_not_worsen_bfs_cut():
    g = _grid_graph(25, 25)
    target = (12, 12)
    plain = SubgraphExtractor(g, cut_size=80, use_blp=False).extract(target)
    tuned = SubgraphExtractor(g, cut_size=80, use_blp=True).extract(target)
    assert tuned.cut_edges <= plain.cut_edges


def test_blp_improves_cut_on_irregular_graph():
    """On a lumpy community graph, BLP should beat raw BFS on average."""
    rng = np.random.default_rng(1)
    g = ConstraintGraph()
    # 30 communities of 8, sparse random inter-community edges.
    for c in range(30):
        members = [(c, i) for i in range(8)]
        g.add_clique(members)
    for _ in range(60):
        a, b = rng.integers(0, 30, size=2)
        i, j = rng.integers(0, 8, size=2)
        g.add_edge((int(a), int(i)), (int(b), int(j)))
    plain_cuts, tuned_cuts = [], []
    for c in range(0, 30, 5):
        target = (c, 0)
        plain_cuts.append(
            SubgraphExtractor(g, cut_size=40, use_blp=False).extract(target).cut_edges
        )
        tuned_cuts.append(
            SubgraphExtractor(g, cut_size=40, use_blp=True).extract(target).cut_edges
        )
    assert sum(tuned_cuts) <= sum(plain_cuts)


def test_missing_target_raises():
    g = _grid_graph(3, 3)
    extractor = SubgraphExtractor(g, cut_size=5)
    with pytest.raises(KeyError):
        extractor.extract((99, 99))


def test_invalid_cut_size_rejected():
    with pytest.raises(ValueError):
        SubgraphExtractor(ConstraintGraph(), cut_size=0)


def test_larger_cut_sizes_include_smaller_balls():
    g = _grid_graph(20, 20)
    target = (5, 5)
    small = SubgraphExtractor(g, cut_size=20, use_blp=False).extract(target)
    large = SubgraphExtractor(g, cut_size=120, use_blp=False).extract(target)
    assert small.inside <= large.inside
