"""Tests for the engine state codec (export_state / from_state).

The recovery guarantee rests on this codec: restoring a mid-stream
engine and continuing must be indistinguishable — bit-for-bit in every
committed estimate — from never having stopped.
"""

import json

import pytest

from repro.core.pipeline import DomoConfig
from repro.serve.protocol import committed_window_to_json
from repro.sim import NetworkConfig, simulate_network
from repro.stream.engine import StreamingReconstructor
from repro.stream.state import ENGINE_STATE_SCHEMA, EngineStateError

LATENESS_MS = 5_000.0


def _packets(seed=7):
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_500.0,
            seed=seed,
        )
    )
    return sorted(trace.received, key=lambda p: p.sink_arrival_ms)


def _chunks(packets, size=16):
    return [packets[i:i + size] for i in range(0, len(packets), size)]


def _rows(committed):
    return [committed_window_to_json(cw) for cw in committed]


def test_export_restore_mid_stream_is_bit_identical():
    packets = _packets()
    chunks = _chunks(packets)
    half = len(chunks) // 2

    reference = StreamingReconstructor(DomoConfig(), lateness_ms=LATENESS_MS)
    expected = []
    with reference:
        for chunk in chunks:
            reference.ingest(chunk)
            expected += _rows(reference.poll())
        expected += _rows(reference.flush())

    first = StreamingReconstructor(DomoConfig(), lateness_ms=LATENESS_MS)
    rows = []
    with first:
        for chunk in chunks[:half]:
            first.ingest(chunk)
            rows += _rows(first.poll())
        first.quiesce()
        rows += _rows(first.poll())
        state = first.export_state()

    second = StreamingReconstructor.from_state(
        state, DomoConfig(), lateness_ms=LATENESS_MS
    )
    with second:
        for chunk in chunks[half:]:
            second.ingest(chunk)
            rows += _rows(second.poll())
        rows += _rows(second.flush())

    assert rows == expected
    # Telemetry counters carry across the restore boundary too.
    assert second.report.total_packets == len(packets)


def test_export_restore_export_is_idempotent():
    packets = _packets()
    chunks = _chunks(packets)
    engine = StreamingReconstructor(DomoConfig(), lateness_ms=LATENESS_MS)
    with engine:
        for chunk in chunks[: len(chunks) // 2]:
            engine.ingest(chunk)
            engine.poll()
        engine.quiesce()
        engine.poll()
        state = engine.export_state()
    restored = StreamingReconstructor.from_state(
        state, DomoConfig(), lateness_ms=LATENESS_MS
    )
    with restored:
        state2 = restored.export_state()
    assert json.dumps(state, sort_keys=True) == json.dumps(
        state2, sort_keys=True
    )
    assert state["schema"] == ENGINE_STATE_SCHEMA
    # The document is strict JSON: non-finite floats are encoded, never
    # emitted raw (a snapshot containing NaN would not round-trip).
    json.dumps(state, allow_nan=False)


def test_restore_refuses_wrong_schema_and_used_engine():
    packets = _packets()
    engine = StreamingReconstructor(DomoConfig(), lateness_ms=LATENESS_MS)
    with engine:
        engine.ingest(packets[:8])
        engine.quiesce()
        engine.poll()
        state = engine.export_state()

    with pytest.raises(EngineStateError, match="schema"):
        StreamingReconstructor.from_state(
            {**state, "schema": "domo.engine_state/999"},
            DomoConfig(),
            lateness_ms=LATENESS_MS,
        )

    used = StreamingReconstructor(DomoConfig(), lateness_ms=LATENESS_MS)
    with used:
        used.ingest(packets[:4])
        from repro.stream.state import restore_engine_state

        with pytest.raises(EngineStateError, match="fresh"):
            restore_engine_state(used, state)
