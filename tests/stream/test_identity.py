"""Regression: the streaming engine reproduces the batch pipeline exactly.

``DomoReconstructor.estimate`` is now "ingest everything, then flush" on
:class:`StreamingReconstructor`. These tests pin its output to a
hand-built replica of the pre-refactor batch path (validate ->
``build_window_systems`` -> ``execute_windows`` -> merge in window
order), so any drift in grid anchoring, membership, keep assignment or
commit order shows up as a float-level mismatch.
"""

import math

import numpy as np

from repro.core.pipeline import (
    DomoConfig,
    DomoReconstructor,
    constraint_config_for,
)
from repro.core.preprocessor import build_window_systems, choose_window_span
from repro.core.records import TraceIndex
from repro.core.validation import validate_packets
from repro.runtime.executor import WindowSolveSpec, execute_windows
from repro.sim import NetworkConfig, simulate_network
from repro.stream import StreamingReconstructor


def _trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=25,
            placement="grid",
            duration_ms=40_000.0,
            packet_period_ms=3_000.0,
            seed=23,
        )
    )


def _batch_reference(packets, config):
    """The pre-refactor batch sweep, reproduced verbatim."""
    packets, vreport = validate_packets(packets, config.validation)
    span = (
        config.window_span_ms
        if config.window_span_ms is not None
        else choose_window_span(packets, config.target_window_packets)
    )
    systems = build_window_systems(
        packets,
        constraint_config_for(config, vreport),
        window_span_ms=span,
        effective_ratio=config.effective_window_ratio,
    )
    report = execute_windows(
        systems,
        WindowSolveSpec(
            fifo_mode=config.fifo_mode,
            estimator=config.estimator,
            sdr=config.sdr,
        ),
    )
    estimates = {}
    for result in report.results:
        estimates.update(result.estimates)
    index = TraceIndex(packets, omega_ms=config.omega_ms)
    arrival_times = {}
    for packet in index.packets:
        times = []
        for key in index.keys_of(packet):
            if index.is_known(key):
                times.append(index.known_value(key))
            elif key in estimates:
                times.append(estimates[key])
            else:
                lo, hi = index.trivial_interval(key)
                times.append(0.5 * (lo + hi))
        arrival_times[packet.packet_id] = times
    return estimates, arrival_times, len(systems)


def test_estimate_reproduces_batch_reference_bit_exactly():
    trace = _trace()
    config = DomoConfig()
    ref_estimates, ref_arrivals, ref_windows = _batch_reference(
        list(trace.received), config
    )
    streamed = DomoReconstructor(config).estimate(trace)
    assert streamed.estimates == ref_estimates  # bit-identical floats
    assert streamed.arrival_times == ref_arrivals
    assert streamed.windows_used == ref_windows
    assert streamed.stats["windows"] == ref_windows


def test_chunked_flush_identical_to_single_ingest():
    """Chunking granularity cannot matter when nothing seals early."""
    trace = _trace()
    packets = sorted(trace.received, key=lambda p: p.sink_arrival_ms)

    def run(chunk_size):
        merged = {}
        engine = StreamingReconstructor(DomoConfig(), lateness_ms=math.inf)
        with engine:
            for lo in range(0, len(packets), chunk_size):
                engine.ingest(packets[lo:lo + chunk_size])
            for commit in engine.flush():
                merged.update(commit.estimates)
        return merged

    assert run(chunk_size=len(packets)) == run(chunk_size=7)


def test_finite_lateness_matches_batch_when_span_pinned():
    """With a pinned span and a lateness beyond the worst reordering,
    incremental sealing solves the exact windows the batch planner does,
    so even mid-stream commits are bit-identical to the batch result."""
    trace = _trace()
    config = DomoConfig(window_span_ms=6_000.0)
    batch = DomoReconstructor(config).estimate(trace)

    packets = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    merged = {}
    engine = StreamingReconstructor(config, lateness_ms=4_000.0)
    with engine:
        for lo in range(0, len(packets), 16):
            engine.ingest(packets[lo:lo + 16])
            for commit in engine.poll():
                merged.update(commit.estimates)
        sealed_early = engine.telemetry.windows_sealed
        for commit in engine.flush():
            merged.update(commit.estimates)
    assert sealed_early > 0, "lateness never sealed a window mid-stream"
    assert engine.telemetry.late_quarantined == 0
    assert merged == batch.estimates  # bit-identical floats


def test_streaming_accuracy_equals_batch_accuracy():
    """End to end: per-hop delay errors agree between the two paths."""
    trace = _trace()
    config = DomoConfig(window_span_ms=6_000.0)
    batch = DomoReconstructor(config).estimate(trace)

    packets = sorted(trace.received, key=lambda p: p.sink_arrival_ms)
    streamed_times = {}
    with StreamingReconstructor(config, lateness_ms=4_000.0) as engine:
        for lo in range(0, len(packets), 16):
            engine.ingest(packets[lo:lo + 16])
            for commit in engine.poll():
                streamed_times.update(commit.arrival_times)
        for commit in engine.flush():
            streamed_times.update(commit.arrival_times)

    batch_err, stream_err = [], []
    for p in trace.received:
        truth = trace.truth_of(p.packet_id).node_delays()
        batch_err.extend(
            abs(a - b) for a, b in zip(batch.delays_of(p.packet_id), truth)
        )
        times = streamed_times[p.packet_id]
        delays = [b - a for a, b in zip(times, times[1:])]
        stream_err.extend(abs(a - b) for a, b in zip(delays, truth))
    assert np.mean(stream_err) == np.mean(batch_err)
