"""Tests of the streaming engine's state machine and bookkeeping."""

import math

import pytest

from repro.core.pipeline import DomoConfig
from repro.core.validation import ValidationConfig
from repro.stream import StreamingReconstructor

from tests.core.conftest import make_received

SPAN_MS = 1_000.0


def _stream(num_sources=3, packets_per_source=20, period=400.0):
    """Two-hop periodic traffic through forwarder 1 (interior unknowns),
    returned in sink-arrival order (the order a live sink emits)."""
    received = []
    for source in range(2, 2 + num_sources):
        for seqno in range(packets_per_source):
            t0 = seqno * period + source * 17.0
            packet, _ = make_received(
                source, seqno, (source, 1, 0), (t0, t0 + 10.0, t0 + 20.0)
            )
            received.append(packet)
    received.sort(key=lambda p: p.sink_arrival_ms)
    return received


def _engine(lateness_ms=1_500.0, **config_kwargs):
    config_kwargs.setdefault("window_span_ms", SPAN_MS)
    return StreamingReconstructor(
        DomoConfig(**config_kwargs), lateness_ms=lateness_ms
    )


def _chunks(packets, size=10):
    for lo in range(0, len(packets), size):
        yield packets[lo:lo + size]


def test_watermark_seals_and_commits_before_flush():
    packets = _stream()
    committed_early = []
    with _engine() as engine:
        for chunk in _chunks(packets):
            engine.ingest(chunk)
            committed_early.extend(engine.poll())
        assert committed_early, "nothing committed before the flush"
        tail = engine.flush()
    assert engine.telemetry.windows_committed == len(committed_early) + len(
        tail
    )
    assert engine.telemetry.windows_sealed == engine.telemetry.windows_committed


def test_commits_arrive_in_window_order():
    packets = _stream()
    commits = []
    with _engine() as engine:
        for chunk in _chunks(packets):
            engine.ingest(chunk)
            commits.extend(engine.poll())
        commits.extend(engine.flush())
    solve_indices = [c.solve_index for c in commits]
    assert solve_indices == list(range(len(commits)))
    grid_indices = [c.grid_index for c in commits]
    assert grid_indices == sorted(grid_indices)
    for commit in commits:
        assert commit.seal_to_commit_s >= 0.0
        assert commit.arrival_times  # kept packets have assembled vectors
        for key in commit.estimates:
            assert key.packet_id in commit.arrival_times


def test_eviction_bounds_resident_memory():
    """Committed windows evict their packets: the peak resident set stays
    well below the trace, and a flushed engine holds nothing."""
    packets = _stream(num_sources=4, packets_per_source=40)
    with _engine(lateness_ms=800.0) as engine:
        for chunk in _chunks(packets, size=8):
            engine.ingest(chunk)
            engine.poll()
        engine.flush()
    telemetry = engine.telemetry
    assert telemetry.ingested == len(packets)
    assert telemetry.evicted_packets == telemetry.ingested
    assert telemetry.peak_resident_packets < len(packets)
    assert engine.resident_packets == 0
    assert telemetry.resident_packets == 0


def test_flush_is_terminal_for_pending_windows_but_stream_stays_usable():
    packets = _stream()
    with _engine() as engine:
        engine.ingest(packets[: len(packets) // 2])
        first = engine.flush()
        assert first
        assert engine.flush() == []  # idempotent: nothing left to seal
        # Later (non-late) traffic still flows through the same grid.
        engine.ingest(packets[len(packets) // 2:])
        second = engine.flush()
    assert second
    earlier = max(c.grid_index for c in first)
    assert min(c.grid_index for c in second) > earlier


def test_duplicate_ids_across_chunks_are_quarantined():
    packets = _stream()
    with _engine(validation=ValidationConfig(mode="off")) as engine:
        engine.ingest(packets)
        engine.ingest(packets[:3])  # replay across chunk boundaries
        engine.flush()
    assert engine.telemetry.duplicates == 3
    assert engine.telemetry.ingested == len(packets)
    reasons = engine.report.reason_counts()
    assert reasons.get("duplicate_ingest") == 3


def test_late_packet_is_quarantined_not_solved():
    packets = _stream()
    late_source = packets[0]
    with _engine(lateness_ms=100.0) as engine:
        engine.ingest(packets)
        engine.poll()
        assert engine.telemetry.windows_sealed > 0
        # A straggler whose keeping window sealed long ago: same t0 as
        # the first packet, arriving at the end of the stream.
        straggler, _ = make_received(
            9, 0,
            (9, 1, 0),
            (late_source.generation_time_ms,
             late_source.generation_time_ms + 11.0,
             packets[-1].sink_arrival_ms + 5.0),
        )
        engine.ingest([straggler])
        commits = engine.flush()
    assert engine.telemetry.late_quarantined == 1
    assert engine.report.reason_counts().get("late_arrival") == 1
    assert straggler.packet_id in engine.report.quarantined
    for commit in commits:
        assert straggler.packet_id not in commit.arrival_times


def test_infinite_lateness_defers_everything_to_flush():
    packets = _stream()
    with _engine(lateness_ms=math.inf) as engine:
        for chunk in _chunks(packets):
            engine.ingest(chunk)
            assert engine.poll() == []
        assert engine.telemetry.windows_sealed == 0
        commits = engine.flush()
    assert commits
    assert engine.telemetry.late_quarantined == 0
    kept = set()
    for commit in commits:
        kept.update(commit.arrival_times)
    assert kept == {p.packet_id for p in packets}


def test_stats_shape_matches_batch_plus_streaming_section():
    packets = _stream()
    with _engine() as engine:
        engine.ingest(packets)
        engine.flush()
        stats = engine.stats()
    for key in ("windows", "execution_mode", "workers", "window_span_ms",
                "quarantined_packets", "degraded_constraints", "validation",
                "streaming"):
        assert key in stats, f"missing stats key {key}"
    assert stats["execution_mode"] == "serial"
    assert stats["workers"] == 1
    assert stats["windows"] == engine.telemetry.windows_committed
    streaming = stats["streaming"]
    assert streaming["ingested"] == len(packets)
    assert streaming["evicted_packets"] == len(packets)
    assert streaming["seal_to_commit_max_s"] >= streaming[
        "seal_to_commit_mean_s"] >= 0.0


def test_parallel_engine_matches_serial_commits():
    packets = _stream(num_sources=4, packets_per_source=30)

    def run(parallel):
        engine = _engine(parallel=parallel, max_workers=2 if parallel else None)
        merged = {}
        with engine:
            for chunk in _chunks(packets):
                engine.ingest(chunk)
                for commit in engine.poll():
                    merged.update(commit.estimates)
            for commit in engine.flush():
                merged.update(commit.estimates)
        return merged, engine

    serial_estimates, _ = run(parallel=False)
    parallel_estimates, parallel_engine = run(parallel=True)
    assert parallel_estimates == serial_estimates  # bit-identical floats
    stats = parallel_engine.stats()
    if stats.get("parallel_fallback_reason") is None:
        assert stats["execution_mode"] == "parallel"


def test_negative_lateness_rejected():
    with pytest.raises(ValueError):
        StreamingReconstructor(DomoConfig(), lateness_ms=-1.0)
