"""Tests of the fault-injection campaign runner."""

import pytest

from repro.core.pipeline import DomoConfig
from repro.faults.campaign import (
    DETECTABLE_KINDS,
    CampaignResult,
    format_campaign_table,
    main,
    run_campaign,
    run_cell,
)
from repro.faults.injectors import injector_names, make_injector
from repro.sim import NetworkConfig, simulate_network


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=3_000.0,
            seed=7,
        )
    )


@pytest.fixture(scope="module")
def result(trace):
    """One full sweep: every injector at a paper-range rate."""
    injectors = [make_injector(kind) for kind in injector_names()]
    return run_campaign(trace, injectors=injectors, rates=(0.2,), seed=7)


def test_no_cell_raises(result):
    assert result.clean, format_campaign_table(result)
    assert len(result.cells) == len(injector_names())


def test_detectable_faults_produce_validation_events(result):
    assert result.undetected() == []
    by_kind = {cell.kind: cell for cell in result.cells}
    for kind in DETECTABLE_KINDS:
        assert by_kind[kind].detections > 0, kind


def test_cells_carry_degradation_stats(result):
    by_kind = {cell.kind: cell for cell in result.cells}
    truncate = by_kind["truncate"]
    assert truncate.malformed > 0
    assert truncate.num_survivors < truncate.num_records + truncate.malformed
    for cell in result.cells:
        assert cell.num_records > 0
        assert cell.num_survivors > 0
        assert cell.failed_windows == 0 or cell.relaxed_windows >= 0


def test_baseline_error_is_finite_and_small(result):
    assert result.baseline_error_ms == result.baseline_error_ms  # not NaN
    assert result.baseline_error_ms < 6.0


def test_campaign_is_deterministic(trace):
    injectors = [make_injector("delete_received"), make_injector("wrap_sum")]
    one = run_campaign(trace, injectors=injectors, rates=(0.3,), seed=3)
    two = run_campaign(trace, injectors=injectors, rates=(0.3,), seed=3)
    for a, b in zip(one.cells, two.cells):
        assert (a.kind, a.rate, a.num_survivors, a.quarantined,
                a.distrusted, a.malformed) == (
            b.kind, b.rate, b.num_survivors, b.quarantined,
            b.distrusted, b.malformed)
        assert a.mean_abs_error_ms == b.mean_abs_error_ms


def test_run_cell_records_exceptions_instead_of_raising(trace):
    class Bomb:
        kind = "delete_received"
        rate = 0.1

        def apply(self, data, rng):
            raise RuntimeError("kaboom")

    cell = run_cell(trace, Bomb(), seed=1)
    assert not cell.ok
    assert "kaboom" in cell.error
    result = CampaignResult(cells=[cell])
    assert not result.clean
    assert "RAISED" in format_campaign_table(result)


def test_format_campaign_table_lists_every_cell(result):
    table = format_campaign_table(result)
    for cell in result.cells:
        assert cell.kind in table
    assert "baseline" in table


def test_module_entry_check_mode(capsys):
    code = main([
        "--nodes", "16", "--duration", "20", "--period", "3", "--seed", "7",
        "--rates", "0.2", "--kinds", "delete_received,truncate", "--check",
    ])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "check ok" in out


def test_domo_config_flows_into_cells(trace):
    """A custom DomoConfig (strict-free validation) reaches run_cell."""
    cell = run_cell(
        trace,
        make_injector("saturate_sum", rate=0.3),
        seed=5,
        config=DomoConfig(),
    )
    assert cell.ok, cell.error
    assert cell.distrusted > 0
