"""Tests of the seeded fault injectors (determinism, rates, composition)."""

import copy
import json

import numpy as np
import pytest

from repro.faults.injectors import (
    DEFAULT_INJECTORS,
    FaultInjector,
    inject,
    injector_names,
    make_injector,
)
from repro.sim import NetworkConfig, simulate_network
from repro.sim.io import trace_to_dict


@pytest.fixture(scope="module")
def data():
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=2_000.0,
            seed=9,
        )
    )
    return trace_to_dict(trace)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultInjector(kind="gremlins")


def test_rate_outside_unit_interval_rejected():
    with pytest.raises(ValueError):
        make_injector("delete_received", rate=1.5)
    with pytest.raises(ValueError):
        make_injector("delete_received", rate=-0.1)


def test_registry_covers_the_issue_fault_set():
    names = injector_names()
    for required in (
        "delete_received", "wrap_sum", "saturate_sum", "clock_skew",
        "duplicate", "truncate", "reorder", "corrupt_path",
    ):
        assert required in names
    assert {i.kind for i in DEFAULT_INJECTORS} == set(names)


def test_with_rate_returns_new_injector():
    base = make_injector("duplicate", rate=0.1)
    raised = base.with_rate(0.5)
    assert raised.rate == 0.5
    assert base.rate == 0.1
    assert raised.kind == base.kind


@pytest.mark.parametrize("injector", DEFAULT_INJECTORS,
                         ids=lambda i: i.kind)
def test_same_seed_gives_identical_faults(data, injector):
    one = injector.apply(data, np.random.default_rng(42))
    two = injector.apply(data, np.random.default_rng(42))
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)


@pytest.mark.parametrize("injector", DEFAULT_INJECTORS,
                         ids=lambda i: i.kind)
def test_input_dict_is_never_mutated(data, injector):
    snapshot = copy.deepcopy(data)
    injector.with_rate(0.4).apply(data, np.random.default_rng(1))
    assert data == snapshot


def test_different_seeds_give_different_faults(data):
    injector = make_injector("delete_received", rate=0.3)
    one = injector.apply(data, np.random.default_rng(1))
    two = injector.apply(data, np.random.default_rng(2))
    assert [r["id"] for r in one["received"]] != [
        r["id"] for r in two["received"]
    ]


def test_delete_rate_is_honored(data):
    total = len(data["received"])
    faulted = make_injector("delete_received", rate=0.3).apply(
        data, np.random.default_rng(3)
    )
    removed = total - len(faulted["received"])
    assert 0.15 * total <= removed <= 0.45 * total


def test_wrap_sum_stays_in_wire_range(data):
    faulted = make_injector("wrap_sum", rate=0.5).apply(
        data, np.random.default_rng(4)
    )
    changed = sum(
        a["sum_of_delays"] != b["sum_of_delays"]
        for a, b in zip(data["received"], faulted["received"])
    )
    assert changed > 0
    for record in faulted["received"]:
        assert 0 <= record["sum_of_delays"] <= 65535


def test_saturate_sum_pins_at_maximum(data):
    faulted = make_injector("saturate_sum", rate=0.5).apply(
        data, np.random.default_rng(5)
    )
    saturated = [
        r for r in faulted["received"] if r["sum_of_delays"] == 65535
    ]
    assert saturated


def test_clock_skew_shifts_whole_source_streams(data):
    faulted = make_injector("clock_skew", rate=0.5).apply(
        data, np.random.default_rng(6)
    )
    shifted_sources = {
        tuple(a["id"])[0]
        for a, b in zip(data["received"], faulted["received"])
        if a["t0"] != b["t0"]
    }
    assert shifted_sources
    # Skew is per-node: every packet of a shifted source moved.
    for a, b in zip(data["received"], faulted["received"]):
        if tuple(a["id"])[0] in shifted_sources:
            assert a["t0"] != b["t0"]


def test_duplicate_appends_replayed_records(data):
    faulted = make_injector("duplicate", rate=0.3).apply(
        data, np.random.default_rng(7)
    )
    assert len(faulted["received"]) > len(data["received"])
    ids = [tuple(r["id"]) for r in faulted["received"]]
    assert len(ids) > len(set(ids))


def test_truncate_removes_fields(data):
    faulted = make_injector("truncate", rate=0.4).apply(
        data, np.random.default_rng(8)
    )
    required = ("id", "path", "t0", "t_sink", "sum_of_delays")
    damaged = [
        r for r in faulted["received"]
        if any(name not in r for name in required)
    ]
    assert damaged


def test_reorder_permutes_but_preserves_records(data):
    faulted = make_injector("reorder", rate=0.6).apply(
        data, np.random.default_rng(9)
    )
    assert faulted["received"] != data["received"]
    key = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
    assert sorted(map(key, faulted["received"])) == sorted(
        map(key, data["received"])
    )


def test_corrupt_path_damages_reported_routes(data):
    faulted = make_injector("corrupt_path", rate=0.5).apply(
        data, np.random.default_rng(10)
    )
    changed = [
        (a, b)
        for a, b in zip(data["received"], faulted["received"])
        if a["path"] != b["path"]
    ]
    assert changed
    for original, corrupted in changed:
        # Endpoints survive; only the interior is damaged.
        assert corrupted["path"][0] == original["path"][0]
        assert corrupted["path"][-1] == original["path"][-1]


def test_injectors_compose(data):
    injectors = [
        make_injector("delete_received", rate=0.2),
        make_injector("wrap_sum", rate=0.2),
        make_injector("duplicate", rate=0.1),
    ]
    rng = np.random.default_rng(11)
    faulted = inject(data, injectors, rng)
    assert faulted is not data
    # Deletion happened before duplication; both are visible.
    ids = [tuple(r["id"]) for r in faulted["received"]]
    assert len(ids) != len(data["received"]) or len(ids) > len(set(ids))
