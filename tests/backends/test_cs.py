"""Tests of the compressed-sensing tomography backend.

Hand-built traces with known routing make the (A, y', nodes) system
checkable entry by entry; planted sparse vectors validate the ISTA/OMP
recovery; the expansion tests pin the invariants the backend promises by
construction (exact endpoints, monotone along the path, inside the
Eq. (5) intervals).
"""

import numpy as np
import pytest

from repro.backends import CsConfig, get_backend
from repro.backends.cs import (
    build_routing_system,
    expand_to_arrival_times,
    ista_recover,
    omp_recover,
)
from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.records import ArrivalKey, TraceIndex
from repro.optim.result import SolverStatus
from repro.runtime.executor import WindowSolveSpec
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _system(bundle, **cfg):
    index = TraceIndex(list(bundle.received))
    return build_constraints(index, ConstraintConfig(**cfg))


# -- routing matrix ------------------------------------------------------


def test_routing_system_rows_columns_and_reference_deltas():
    a = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 22.0))
    b = make_received(3, 0, (3, 1, 0), (5.0, 14.0, 30.0))
    c = make_received(1, 0, (1, 0), (40.0, 50.0))
    system = _system(bundle_of(a, b, c))
    A, y, nodes = build_routing_system(system)
    # Columns are the forwarding nodes, sorted; the sink never appears.
    assert nodes == [1, 2, 3]
    assert A.shape == (3, 3)
    # One row per packet: visit counts at [node 1, node 2, node 3].
    assert A.tolist() == [
        [1.0, 1.0, 0.0],  # a: 2 -> 1 -> 0
        [1.0, 0.0, 1.0],  # b: 3 -> 1 -> 0
        [1.0, 0.0, 0.0],  # c: 1 -> 0
    ]
    # y' = end-to-end delay minus omega (default 1 ms) per hop.
    assert y.tolist() == [20.0, 23.0, 9.0]


def test_routing_system_counts_revisits():
    p = make_received(2, 0, (2, 1, 3, 1, 0), (0.0, 9.0, 18.0, 27.0, 40.0))
    system = _system(bundle_of(p))
    A, y, nodes = build_routing_system(system)
    assert nodes == [1, 2, 3]
    # Node 1 is crossed twice; the row weights it accordingly.
    assert A.tolist() == [[2.0, 1.0, 1.0]]
    assert y.tolist() == [40.0 - 4 * 1.0]


# -- sparse recovery -----------------------------------------------------


def _planted(seed=0, rows=40, cols=12):
    rng = np.random.default_rng(seed)
    A = rng.integers(0, 2, size=(rows, cols)).astype(float)
    x_true = np.zeros(cols)
    x_true[3] = 5.0
    x_true[7] = 2.0
    return A, x_true, A @ x_true


def test_ista_recovers_a_planted_sparse_vector():
    A, x_true, y = _planted()
    config = CsConfig(
        lambda_scale=1e-4, max_iterations=5000, tolerance=1e-12
    )
    x, iterations = ista_recover(A, y, config)
    assert iterations > 0
    assert np.all(x >= 0.0)
    assert np.allclose(x, x_true, atol=0.05)


def test_omp_recovers_a_planted_sparse_vector_exactly():
    A, x_true, y = _planted(seed=1)
    x, iterations = omp_recover(A, y, CsConfig(solver="omp"))
    # OMP finds the two-column support and least-squares nails it.
    assert iterations >= 2
    assert np.allclose(x, x_true, atol=1e-8)


@pytest.mark.parametrize("recover", [ista_recover, omp_recover])
def test_recovery_degenerate_inputs_return_zero(recover):
    config = CsConfig()
    x, iterations = recover(np.zeros((0, 5)), np.zeros(0), config)
    assert x.tolist() == [0.0] * 5
    assert iterations == 0
    A = np.ones((4, 3))
    x, iterations = recover(A, np.zeros(4), config)
    assert x.tolist() == [0.0] * 3
    assert iterations == 0


# -- per-packet expansion ------------------------------------------------


def test_expansion_with_no_congestion_splits_delay_uniformly():
    p = make_received(3, 0, (3, 2, 1, 0), (0.0, 10.0, 20.0, 30.0))
    system = _system(bundle_of(p))
    estimates = expand_to_arrival_times(system, {})
    assert set(estimates) == set(system.variables.keys())
    pid = PacketId(3, 0)
    assert estimates[ArrivalKey(pid, 1)] == pytest.approx(10.0)
    assert estimates[ArrivalKey(pid, 2)] == pytest.approx(20.0)


def test_expansion_shifts_delay_onto_the_congested_node():
    p = make_received(3, 0, (3, 2, 1, 0), (0.0, 2.0, 28.0, 30.0))
    system = _system(bundle_of(p))
    uniform = expand_to_arrival_times(system, {})
    congested = expand_to_arrival_times(system, {2: 24.0})
    pid = PacketId(3, 0)
    # Most of the 30 ms now sits at node 2 (the hop into index 2), so
    # the hop-2 arrival moves later than the uniform split's.
    assert congested[ArrivalKey(pid, 2)] > uniform[ArrivalKey(pid, 2)]
    # Invariants hold regardless: monotone along the path, in-interval.
    for estimates in (uniform, congested):
        assert estimates[ArrivalKey(pid, 1)] < estimates[ArrivalKey(pid, 2)]
        for key, value in estimates.items():
            low, high = system.intervals[key]
            assert low <= value <= high


def test_expansion_clamps_into_trivial_intervals():
    p = make_received(3, 0, (3, 2, 1, 0), (0.0, 1.0, 2.0, 3.0))
    system = _system(bundle_of(p))
    # A huge recovered delay at node 3 would push hop 1 past the sink;
    # the clamp keeps every estimate inside its interval.
    estimates = expand_to_arrival_times(system, {3: 1e6})
    for key, value in estimates.items():
        low, high = system.intervals[key]
        assert low <= value <= high


# -- the backend end to end ---------------------------------------------


def _busy_bundle():
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 22.0), sum_of_delays=10)
    y = make_received(3, 0, (3, 1, 0), (5.0, 14.0, 30.0), sum_of_delays=9)
    z = make_received(2, 1, (2, 1, 0), (40.0, 52.0, 61.0), sum_of_delays=12)
    return bundle_of(x, y, z)


@pytest.mark.parametrize("solver", ["ista", "omp"])
def test_solve_window_covers_all_unknowns_inside_intervals(solver):
    system = _system(_busy_bundle())
    spec = WindowSolveSpec(cs=CsConfig(solver=solver))
    solution = get_backend("cs").solve_window(system, spec)
    assert solution.solver == f"cs-{solver}"
    assert solution.result is not None
    assert solution.result.status is SolverStatus.OPTIMAL
    assert solution.result.info["rows"] == 3
    assert set(solution.estimates) == set(system.variables.keys())
    for key, value in solution.estimates.items():
        low, high = system.intervals[key]
        assert low <= value <= high


def test_solve_window_empty_system_is_trivial():
    only_hop = make_received(1, 0, (1, 0), (0.0, 10.0))
    system = _system(bundle_of(only_hop))
    solution = get_backend("cs").solve_window(system, WindowSolveSpec())
    assert solution.solver == "empty"
    assert solution.estimates == {}
    assert solution.result is None


def test_cs_config_validation():
    with pytest.raises(ValueError, match="must be 'ista' or 'omp'"):
        CsConfig(solver="lasso")
    with pytest.raises(ValueError, match="max_iterations must be > 0"):
        CsConfig(max_iterations=0)
    with pytest.raises(ValueError, match="lambda_scale must be >= 0"):
        CsConfig(lambda_scale=-0.1)
