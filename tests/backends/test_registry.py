"""Tests of the estimator-backend registry and its contract."""

import pytest

from repro.backends import (
    DEFAULT_BACKEND,
    EstimatorBackend,
    UnknownBackendError,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)


def test_builtin_backends_are_registered():
    assert backend_names() == ["cs", "domo-qp", "message-tracing", "mnt"]
    assert DEFAULT_BACKEND == "domo-qp"
    assert DEFAULT_BACKEND in backend_names()


def test_get_backend_returns_the_registered_singleton():
    for name in backend_names():
        backend = get_backend(name)
        assert backend.name == name
        assert backend is get_backend(name)


def test_capabilities_encode_the_cost_order():
    qp = get_backend("domo-qp")
    cs = get_backend("cs")
    mnt = get_backend("mnt")
    tracing = get_backend("message-tracing")
    # Only the paper's QP honors the full constraint system, and only it
    # gains anything from a ladder-relaxed re-solve.
    assert qp.capabilities.exact and qp.capabilities.supports_relaxation
    for approx in (cs, mnt, tracing):
        assert not approx.capabilities.exact
        assert not approx.capabilities.supports_relaxation
    # "Downgrade" is well defined: cs is strictly cheaper than the QP.
    assert cs.capabilities.cost_rank < qp.capabilities.cost_rank
    assert tracing.capabilities.cost_rank <= mnt.capabilities.cost_rank


def test_unknown_backend_is_a_value_error_listing_names():
    with pytest.raises(UnknownBackendError) as excinfo:
        get_backend("nope")
    assert isinstance(excinfo.value, ValueError)
    message = str(excinfo.value)
    assert "'nope'" in message
    for name in backend_names():
        assert name in message


def test_available_backends_snapshot_is_sorted():
    snapshot = available_backends()
    assert list(snapshot) == backend_names()
    assert all(snapshot[name].name == name for name in snapshot)


def test_register_backend_requires_a_name():
    with pytest.raises(ValueError, match="non-empty name"):
        register_backend(EstimatorBackend())
