"""Backend selection through the executor and the batch pipeline.

The load-bearing guarantees: the ``domo-qp`` refactor is *bit-exact*
(moving Eq. (8) behind the backend contract changed no estimate), every
backend covers the same unknowns through the same window machinery, and
the ladder's pre-midpoint ``cs_downgrade`` rung only fires when asked.
"""

import pytest

from repro.backends import backend_names
from repro.core.constraints import ConstraintConfig
from repro.core.estimator import EstimatorConfig, estimate_arrival_times_info
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.core.preprocessor import build_window_systems
from repro.optim.result import SolverError, SolverStatus
from repro.runtime.executor import (
    BACKEND_DOWNGRADE_RUNG,
    MIDPOINT_RUNG,
    RELAXATION_LADDER,
    WindowSolveSpec,
    execute_windows,
    solve_one_window,
)

from tests.core.conftest import make_received


def _stream(num_sources=4, packets_per_source=12, period=500.0):
    """Periodic two-hop traffic through forwarder 1 (interior unknowns)."""
    received = []
    for source in range(2, 2 + num_sources):
        for seqno in range(packets_per_source):
            t0 = seqno * period + source * 17.0
            packet, _ = make_received(
                source, seqno, (source, 1, 0), (t0, t0 + 10.0, t0 + 20.0)
            )
            received.append(packet)
    return received


def _systems(span_ms=2_000.0):
    return build_window_systems(
        _stream(), ConstraintConfig(), window_span_ms=span_ms
    )


def test_domo_qp_backend_is_bit_exact_with_the_direct_estimator():
    """The refactor guarantee: solving through the backend contract
    returns byte-identical floats to calling Eq. (8) directly."""
    ws = _systems()[0]
    direct, _ = estimate_arrival_times_info(ws.system, EstimatorConfig())
    kept = {
        key: value
        for key, value in direct.items()
        if key.packet_id in ws.kept_ids
    }
    result = solve_one_window(0, ws, WindowSolveSpec())
    assert result.estimates == kept  # bit-identical floats
    assert result.telemetry.backend == "domo-qp"
    assert result.telemetry.solver == "linearized"


def test_default_config_matches_explicit_domo_qp_backend():
    packets = _stream()
    default = DomoReconstructor(DomoConfig()).estimate(packets)
    explicit = DomoReconstructor(
        DomoConfig(backend="domo-qp")
    ).estimate(packets)
    assert default.estimates == explicit.estimates  # bit-identical floats


def test_every_backend_covers_the_same_unknowns():
    ws = _systems()[0]
    coverage = {}
    for name in backend_names():
        result = solve_one_window(0, ws, WindowSolveSpec(backend=name))
        assert result.telemetry.backend == name
        assert result.telemetry.relax_rung == 0
        coverage[name] = set(result.estimates)
    assert len({frozenset(keys) for keys in coverage.values()}) == 1


def test_cs_backend_flows_through_the_batch_pipeline():
    packets = _stream()
    qp = DomoReconstructor(DomoConfig()).estimate(packets)
    cs = DomoReconstructor(DomoConfig(backend="cs")).estimate(packets)
    # Same coverage, different estimator: the per-node approximation
    # cannot reproduce the QP's per-packet values on this trace.
    assert set(cs.estimates) == set(qp.estimates)
    assert cs.estimates != qp.estimates
    windows = cs.stats["windows"]
    assert cs.stats["backend_windows"] == {"cs": windows}
    assert qp.stats["backend_windows"] == {"domo-qp": windows}


def _always_failing(system, config=None):
    raise SolverError(SolverStatus.NUMERICAL_ERROR, "forced failure")


def test_ladder_downgrades_to_cs_when_allowed(monkeypatch):
    ws = _systems()[0]
    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info",
        _always_failing,
    )
    spec = WindowSolveSpec(allow_backend_downgrade=True)
    result = solve_one_window(0, ws, spec)
    telemetry = result.telemetry
    assert telemetry.relax_rung == BACKEND_DOWNGRADE_RUNG
    assert telemetry.relax_stage == "cs_downgrade"
    assert telemetry.backend == "cs"
    assert telemetry.solver == "cs-ista"
    assert telemetry.status != "fallback"
    # Full ladder walked first, then one downgrade attempt.
    assert telemetry.solve_attempts == 1 + len(RELAXATION_LADDER) + 1
    # A real CS solve happened: estimates are not interval midpoints.
    assert result.estimates
    midpoints = sum(
        result.estimates[key]
        == pytest.approx(0.5 * sum(ws.system.intervals[key]))
        for key in result.estimates
    )
    assert midpoints < len(result.estimates)


def test_ladder_surrenders_to_midpoints_without_the_opt_in(monkeypatch):
    ws = _systems()[0]
    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info",
        _always_failing,
    )
    result = solve_one_window(0, ws, WindowSolveSpec())
    telemetry = result.telemetry
    assert telemetry.relax_rung == MIDPOINT_RUNG
    assert telemetry.relax_stage == "midpoints"
    assert telemetry.backend == "domo-qp"
    assert telemetry.solver == "fallback"
    for key, value in result.estimates.items():
        lo, hi = ws.system.intervals[key]
        assert value == pytest.approx(0.5 * (lo + hi))


def test_backend_downgrade_config_knob_reaches_the_spec():
    spec = DomoConfig(backend_downgrade=True).solve_spec()
    assert spec.allow_backend_downgrade is True
    default = DomoConfig().solve_spec()
    assert default.allow_backend_downgrade is False
    assert default.backend == "domo-qp"
    cs_spec = DomoConfig(backend="cs").solve_spec()
    assert cs_spec.backend == "cs"


def test_unknown_backend_rejected_at_config_time():
    with pytest.raises(ValueError, match="not registered"):
        DomoConfig(backend="nope")


def test_backend_windows_summary_across_a_sweep():
    systems = _systems()
    report = execute_windows(systems, WindowSolveSpec(backend="mnt"))
    from repro.runtime.telemetry import summarize_telemetry

    stats = summarize_telemetry([r.telemetry for r in report.results])
    assert stats["backend_windows"] == {"mnt": len(systems)}
