"""Tests for text rendering of results."""

import numpy as np

from repro.analysis.tables import (
    format_cdf,
    format_stats_table,
    format_sweep_table,
)
from repro.core.metrics import ErrorStats


def _stats(values):
    return ErrorStats(np.asarray(values, dtype=float))


def test_stats_table_contains_methods_and_values():
    table = format_stats_table(
        [("Domo", _stats([1.0, 2.0, 3.0])), ("MNT", _stats([4.0, 6.0]))],
        value_label="error (ms)",
        thresholds=(4.0,),
    )
    assert "Domo" in table
    assert "MNT" in table
    assert "error (ms)" in table
    assert "2.000" in table  # Domo mean
    assert "5.000" in table  # MNT mean


def test_cdf_rendering():
    text = format_cdf([("Domo", _stats(np.arange(100)))], points=5)
    assert text.startswith("CDF Domo")
    assert "@1.00" in text


def test_sweep_table_alignment():
    table = format_sweep_table(
        ["ratio", "error_ms", "time_ms"],
        [[0.3, 3.21, 15.0], [0.5, 3.433, 12.0]],
    )
    lines = table.splitlines()
    assert len(lines) == 4
    assert "ratio" in lines[0]
    assert "3.433" in table


def test_sweep_table_mixed_types():
    table = format_sweep_table(["n", "label"], [[100, "ok"], [225, "good"]])
    assert "100" in table and "good" in table
