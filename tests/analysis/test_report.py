"""Tests for the diagnostic report generator."""

import pytest

from repro.analysis.report import generate_report
from repro.sim import NetworkConfig, Simulator


@pytest.fixture(scope="module")
def trace():
    return Simulator(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=30_000.0,
            packet_period_ms=3_000.0,
            seed=8,
        )
    ).run()


def test_report_sections(trace):
    report = generate_report(trace)
    assert "== trace ==" in report
    assert "== slowest nodes" in report
    assert "== estimation accuracy" in report
    assert "Domo" in report and "MNT" in report
    assert "== event-order displacement ==" in report


def test_report_without_baselines(trace):
    report = generate_report(trace, compare_baselines=False)
    assert "MNT" not in report
    assert "MessageTracing" not in report


def test_report_without_ground_truth(trace):
    """Operator mode: no oracle — only sink-derivable sections appear."""
    from repro.sim.trace import TraceBundle

    # Strip the oracle but keep received packets (valid: received packets
    # require ground truth in TraceBundle, so construct a sink-only view).
    sink_only = TraceBundle(
        received=list(trace.received),
        ground_truth=dict(trace.ground_truth),
        node_logs={},
        sink=trace.sink,
    )
    sink_only.ground_truth = {}
    sink_only.received = list(trace.received)
    report = generate_report(sink_only.restrict([]))
    assert "== trace ==" in report


def test_report_highlights_injected_hotspot():
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=40_000.0,
        packet_period_ms=3_000.0,
        seed=8,
        slow_nodes={5: 40.0},
    )
    trace = Simulator(config).run()
    report = generate_report(trace, compare_baselines=False)
    hotspot_section = report.split("== slowest nodes")[1].splitlines()[1]
    assert "node    5" in hotspot_section
