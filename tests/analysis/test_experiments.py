"""Tests for the evaluation harness."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.scenarios import paper_scenario
from repro.sim import simulate_network


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        paper_scenario(
            num_nodes=36, duration_ms=40_000.0, packet_period_ms=4_000.0,
            seed=3,
        )
    )


def test_scenario_defaults():
    config = paper_scenario()
    assert config.num_nodes == 100
    assert config.placement == "uniform"


def test_accuracy_comparison(trace):
    result = evaluate_accuracy(trace)
    assert result.domo.count == result.mnt.count
    assert result.domo.count > 100
    assert result.domo.mean < result.mnt.mean
    assert result.domo_time_per_delay_ms > 0.0
    # per-node table covers every node that forwarded something.
    assert len(result.per_node_average_delay) > 10
    node, (true_avg, domo_avg, mnt_avg) = next(
        iter(result.per_node_average_delay.items())
    )
    assert true_avg > 0.0


def test_bounds_comparison(trace):
    result = evaluate_bounds(trace, max_packets=40)
    assert result.domo.count > 0
    assert result.mnt.count > result.domo.count  # MNT bounds everything
    assert result.domo.mean < result.mnt.mean
    assert result.domo_time_per_bound_ms > 0.0


def test_displacement_comparison(trace):
    result = evaluate_displacement(trace)
    assert result.domo.count == result.message_tracing.count
    assert result.domo.mean <= result.message_tracing.mean
