"""End-to-end tests of --metrics-out and the `domo report` printer."""

import json

from repro.cli import main
from repro.obs.report import validate_report

SCENARIO = ["--nodes", "16", "--duration", "20", "--period", "3",
            "--seed", "2"]


def _load(path):
    data = json.loads(path.read_text())
    assert validate_report(data) == []
    return data


def test_estimate_metrics_out(tmp_path, capsys):
    out = tmp_path / "est.json"
    code = main(["estimate", *SCENARIO, "--metrics-out", str(out)])
    assert code == 0
    data = _load(out)
    assert data["command"] == "estimate"
    assert data["span_coverage"] >= 0.95
    assert data["metrics"]["counters"]["pipeline.windows_solved"] > 0
    assert data["stats"]["reconstructed_delays"] > 0
    assert data["config"]["nodes"] == 16
    capsys.readouterr()


def test_stream_metrics_out_meets_coverage_bar(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    out = tmp_path / "run.json"
    assert main(["simulate", *SCENARIO, "--save-stream", str(trace)]) == 0
    code = main(
        ["stream", str(trace), "--lateness-ms", "2000", "--chunk", "32",
         "--metrics-out", str(out)]
    )
    assert code == 0
    data = _load(out)
    assert data["command"] == "stream"
    assert data["span_coverage"] >= 0.95
    paths = {entry["path"] for entry in data["spans"]}
    assert {"run", "run/read", "run/ingest", "run/flush"} <= paths
    assert data["stats"]["committed_estimates"] >= 0
    capsys.readouterr()


def test_faults_metrics_out(tmp_path, capsys):
    out = tmp_path / "faults.json"
    code = main(
        ["faults", *SCENARIO, "--rates", "0.1", "--metrics-out", str(out)]
    )
    assert code == 0
    data = _load(out)
    assert data["command"] == "faults"
    assert data["stats"]["cells"] > 0
    capsys.readouterr()


def test_report_pretty_prints_and_checks(tmp_path, capsys):
    out = tmp_path / "est.json"
    assert main(["estimate", *SCENARIO, "--metrics-out", str(out)]) == 0
    capsys.readouterr()

    assert main(["report", str(out), "--check", "0.95"]) == 0
    printed = capsys.readouterr().out
    assert "run report: estimate" in printed
    assert "stage trace" in printed

    # An impossible bar fails the check.
    assert main(["report", str(out), "--check", "1.01"]) == 1
    capsys.readouterr()


def test_report_check_rejects_invalid_document(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "nope", "command": "x"}))
    assert main(["report", str(bad), "--check", "0.5"]) == 1
    # Even without --check, schema problems exit nonzero.
    assert main(["report", str(bad)]) == 1
    capsys.readouterr()


def test_metrics_out_does_not_change_stdout_results(tmp_path, capsys):
    def result_lines(text):
        # Drop the one wall-clock-dependent line; everything else must
        # be identical with and without metrics collection.
        return [l for l in text.splitlines() if "time per delay" not in l]

    assert main(["estimate", *SCENARIO]) == 0
    plain = capsys.readouterr().out
    out = tmp_path / "est.json"
    assert main(["estimate", *SCENARIO, "--metrics-out", str(out)]) == 0
    with_metrics = capsys.readouterr().out
    assert result_lines(plain) == result_lines(with_metrics)
