"""Tests of the RunReport schema: round-trip, validation, coverage."""

import json
import math

import pytest

from repro.obs.registry import COUNT_EDGES, MetricsRegistry
from repro.obs.report import (
    RUN_REPORT_SCHEMA,
    RunReport,
    build_run_report,
    format_run_report,
    sanitize_json,
    span_coverage,
    validate_report,
    write_run_report,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("windows", 3)
    registry.set_gauge("backlog", 2.0)
    registry.observe("unknowns", 12.0, COUNT_EDGES)
    registry.record_span("run", 1.0, error=False)
    registry.record_span("run/ingest", 0.6, error=False)
    registry.record_span("run/ingest/seal", 0.5, error=False)
    registry.record_span("run/solve", 0.38, error=True)
    return registry


def test_build_and_round_trip():
    report = build_run_report(
        "stream",
        argv=["trace.jsonl", "--lateness-ms", "2000"],
        config={"lateness_ms": 2000.0, "bad_float": float("inf")},
        stats={"committed": 7},
        registry=_populated_registry(),
    )
    assert report.wall_time_s == pytest.approx(1.0)
    # direct children of run: ingest (0.6) + solve (0.38); the nested
    # seal span must not double-count.
    assert report.span_coverage == pytest.approx(0.98)

    text = report.to_json()
    assert "Infinity" not in text and "NaN" not in text
    back = RunReport.from_json(text)
    assert back.to_dict() == report.to_dict()
    assert back.config["bad_float"] is None
    assert validate_report(report.to_dict()) == []


def test_write_run_report_is_strict_json(tmp_path):
    path = tmp_path / "r.json"
    write_run_report(
        str(path), build_run_report("estimate", registry=MetricsRegistry())
    )
    data = json.loads(path.read_text())
    assert data["schema"] == RUN_REPORT_SCHEMA
    assert validate_report(data) == []


def test_validator_catches_malformed_reports():
    good = build_run_report("x", registry=_populated_registry()).to_dict()
    assert validate_report(good) == []

    bad_schema = dict(good, schema="domo.run_report/999")
    assert any("schema" in p for p in validate_report(bad_schema))

    bad_hist = json.loads(json.dumps(good))
    bad_hist["metrics"]["histograms"]["unknowns"]["counts"] = [1, 2]
    assert any("buckets" in p for p in validate_report(bad_hist))

    bad_sum = json.loads(json.dumps(good))
    bad_sum["metrics"]["histograms"]["unknowns"]["count"] = 99
    assert any("bucket sum" in p for p in validate_report(bad_sum))

    bad_counter = json.loads(json.dumps(good))
    bad_counter["metrics"]["counters"]["windows"] = -1
    assert any("nonneg" in p for p in validate_report(bad_counter))

    bad_cov = dict(good, span_coverage=1.5)
    assert any("span_coverage" in p for p in validate_report(bad_cov))

    missing = dict(good)
    del missing["spans"]
    assert any("missing key" in p for p in validate_report(missing))

    assert validate_report("not a dict") == ["report is not a JSON object"]


def test_span_coverage_edge_cases():
    assert span_coverage([]) == (0.0, 0.0)
    only_root = [
        {"path": "run", "count": 1, "total_s": 2.0, "min_s": 2.0,
         "max_s": 2.0, "errors": 0}
    ]
    wall, coverage = span_coverage(only_root, root="run")
    assert wall == 2.0 and coverage == 0.0
    # Coverage is capped at 1.0 even when rounding pushes children over.
    spans = only_root + [
        {"path": "run/a", "count": 1, "total_s": 2.1, "min_s": 2.1,
         "max_s": 2.1, "errors": 0}
    ]
    assert span_coverage(spans, root="run")[1] == 1.0


def test_sanitize_json():
    out = sanitize_json(
        {
            1: float("nan"),
            "inf": float("inf"),
            "set": {3, 1, 2},
            "tuple": (1.0, 2.0),
            "nested": {"ok": 5},
        }
    )
    assert out == {
        "1": None,
        "inf": None,
        "set": [1, 2, 3],
        "tuple": [1.0, 2.0],
        "nested": {"ok": 5},
    }
    assert math.isfinite(out["tuple"][0])


def test_format_run_report_renders_tree_parent_first():
    report = build_run_report("stream", registry=_populated_registry())
    text = format_run_report(report.to_dict())
    assert "run report: stream" in text
    assert "stage trace" in text
    lines = text.splitlines()
    run_i = next(i for i, l in enumerate(lines) if l.strip().startswith("run "))
    ingest_i = next(i for i, l in enumerate(lines) if l.strip().startswith("ingest"))
    seal_i = next(i for i, l in enumerate(lines) if l.strip().startswith("seal"))
    assert run_i < ingest_i < seal_i
    assert "counters" in text and "windows" in text
    assert "(1 errors)" in text
