"""Tests of the benchmark harness and the perf-gate regression checker."""

import json

from benchmarks.check_regression import (
    DEFAULT_TOLERANCE,
    bench_name,
    check_report,
    make_baseline,
)
from benchmarks.harness import BenchHarness
from repro.obs.registry import current_registry
from repro.obs.report import validate_report


def test_harness_emits_valid_bench_report(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path))
    with BenchHarness("demo", config={"nodes": 7}) as bench:
        current_registry().inc("demo.events", 3)
        bench.record(num_estimates=42)
    assert bench.path == str(tmp_path / "BENCH_demo.json")
    data = json.loads((tmp_path / "BENCH_demo.json").read_text())
    assert validate_report(data) == []
    assert data["command"] == "bench:demo"
    assert data["config"] == {"nodes": 7}
    assert data["stats"] == {"num_estimates": 42}
    assert data["metrics"]["counters"]["demo.events"] == 3
    assert data["wall_time_s"] > 0.0
    capsys.readouterr()


def test_harness_writes_nothing_on_error(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path))
    try:
        with BenchHarness("boom"):
            raise RuntimeError("bench failed")
    except RuntimeError:
        pass
    assert not (tmp_path / "BENCH_boom.json").exists()


def _report(wall, **stats):
    return {
        "schema": "domo.run_report/1",
        "command": "bench:demo",
        "wall_time_s": wall,
        "stats": stats,
    }


def test_gate_passes_within_tolerance_and_fails_beyond():
    baseline = make_baseline(_report(1.0, num_estimates=392),
                             ["num_estimates"])
    assert baseline["tolerance"] == DEFAULT_TOLERANCE
    assert bench_name(_report(1.0)) == "demo"

    assert check_report(_report(1.25, num_estimates=392), baseline) == []
    problems = check_report(_report(2.0, num_estimates=392), baseline)
    assert len(problems) == 1 and "wall time regression" in problems[0]
    # Getting faster is never a failure.
    assert check_report(_report(0.2, num_estimates=392), baseline) == []


def test_gate_fails_on_parity_drift_even_when_fast():
    baseline = make_baseline(_report(1.0, num_estimates=392),
                             ["num_estimates"])
    problems = check_report(_report(0.5, num_estimates=391), baseline)
    assert len(problems) == 1 and "parity break" in problems[0]
    # A missing parity stat is also a break.
    problems = check_report(_report(0.5), baseline)
    assert any("parity break" in p for p in problems)


def test_gate_tolerance_override():
    baseline = make_baseline(_report(1.0, num_estimates=1),
                             ["num_estimates"])
    report = _report(1.5, num_estimates=1)
    assert check_report(report, baseline) != []
    assert check_report(report, baseline, tolerance=0.6) == []


def test_checked_in_baselines_cover_the_gate_benches():
    """The perf-gate job depends on these two files existing and pinning
    deterministic parity values."""
    import os

    from benchmarks.check_regression import BASELINE_DIR, BASELINE_SCHEMA

    for name, keys in (
        ("parallel_scaling", {"num_estimates", "windows_used"}),
        ("streaming_throughput",
         {"num_estimates", "packets", "windows_committed"}),
    ):
        path = os.path.join(BASELINE_DIR, f"{name}.json")
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert baseline["schema"] == BASELINE_SCHEMA
        assert baseline["bench"] == name
        assert baseline["wall_time_s"] > 0
        assert 0 < baseline["tolerance"] < 1
        assert keys <= set(baseline["parity"])
        assert all(
            isinstance(v, int) for v in baseline["parity"].values()
        ), "parity values must be exact-match integers"
