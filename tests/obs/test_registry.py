"""Tests of the metrics registry: primitives, merge semantics, scoping."""

import itertools
import json

import pytest

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.obs.registry import (
    COUNT_EDGES,
    ITERATION_EDGES,
    TIME_EDGES_S,
    MetricsRegistry,
    current_registry,
    disabled_metrics,
    isolated_registry,
)

from tests.core.conftest import make_received


def _worker_snapshot(i: int) -> dict:
    registry = MetricsRegistry()
    registry.inc("windows", 1)
    registry.inc("solves", i + 1)
    registry.set_gauge("depth", float(i - 1))
    registry.observe("iters", 10.0 * (i + 1), ITERATION_EDGES)
    # Dyadic durations sum exactly in any order, so the merged snapshot
    # is bit-identical across permutations (float addition is only
    # associative when no rounding occurs).
    registry.record_span("solve", 0.25 * 2.0 ** i, error=False)
    return registry.snapshot()


def test_merge_is_order_independent():
    snapshots = [_worker_snapshot(i) for i in range(4)]
    merged = []
    for order in itertools.permutations(range(4)):
        target = MetricsRegistry()
        for i in order:
            target.merge(snapshots[i])
        merged.append(target.snapshot())
    assert all(snap == merged[0] for snap in merged)
    assert merged[0]["counters"]["windows"] == 4
    assert merged[0]["counters"]["solves"] == 1 + 2 + 3 + 4
    assert merged[0]["histograms"]["iters"]["count"] == 4
    assert merged[0]["spans"]["solve"]["count"] == 4


def test_merge_preserves_negative_gauges():
    source = MetricsRegistry()
    source.set_gauge("offset", -5.0)
    target = MetricsRegistry()
    target.merge(source.snapshot())
    gauge = target.snapshot()["gauges"]["offset"]
    assert gauge["last"] == -5.0
    assert gauge["min"] == -5.0
    assert gauge["max"] == -5.0


def test_gauge_last_is_merge_commutative():
    a = MetricsRegistry()
    a.set_gauge("g", 3.0)
    b = MetricsRegistry()
    b.set_gauge("g", 7.0)
    ab = MetricsRegistry()
    ab.merge(a.snapshot())
    ab.merge(b.snapshot())
    ba = MetricsRegistry()
    ba.merge(b.snapshot())
    ba.merge(a.snapshot())
    assert ab.snapshot() == ba.snapshot()


def test_histogram_rejects_bad_edges_and_nan():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", (3.0, 1.0))
    registry.observe("t", float("nan"), TIME_EDGES_S)
    assert registry.snapshot()["histograms"]["t"]["count"] == 0
    with pytest.raises(ValueError):
        registry.histogram("t", COUNT_EDGES)  # conflicting edges


def test_histogram_counts_invariant():
    registry = MetricsRegistry()
    for value in (0.5, 1.5, 1e6, 0.0):
        registry.observe("c", value, COUNT_EDGES)
    data = registry.snapshot()["histograms"]["c"]
    assert len(data["counts"]) == len(data["edges"]) + 1
    assert sum(data["counts"]) == data["count"] == 4
    assert data["counts"][-1] == 1  # the 1e6 overflow


def test_isolated_and_disabled_scopes():
    outer = current_registry()
    with isolated_registry() as registry:
        assert current_registry() is registry
        current_registry().inc("seen")
        with disabled_metrics():
            current_registry().inc("unseen")
            current_registry().set_gauge("unseen_g", 1.0)
        snap = registry.snapshot()
    assert current_registry() is outer
    assert snap["counters"] == {"seen": 1}
    assert "unseen" not in snap["counters"]
    assert snap["gauges"] == {}


def _two_hop_trace(num_sources=4, packets_per_source=10, period=500.0):
    received = []
    for source in range(2, 2 + num_sources):
        for seqno in range(packets_per_source):
            t0 = seqno * period + source * 17.0
            packet, _ = make_received(
                source, seqno, (source, 1, 0), (t0, t0 + 10.0, t0 + 20.0)
            )
            received.append(packet)
    return received


def _estimate_with_registry(trace, parallel: bool):
    config = DomoConfig(
        parallel=parallel, max_workers=2 if parallel else None
    )
    with isolated_registry() as registry:
        result = DomoReconstructor(config).estimate(trace)
    return result, registry.snapshot()


def test_parallel_and_serial_runs_agree_on_deterministic_metrics():
    """Worker snapshots merged at drain == the serial aggregate.

    Only deterministic metrics are compared: event counters and the
    value-shaped histograms (iterations, unknowns, residuals). Timing
    histograms bucket wall clock and legitimately differ run to run.
    """
    trace = _two_hop_trace()
    serial_result, serial = _estimate_with_registry(trace, parallel=False)
    parallel_result, parallel = _estimate_with_registry(trace, parallel=True)
    assert parallel_result.estimates == serial_result.estimates
    assert parallel["counters"] == serial["counters"]
    for name in ("window.unknowns", "window.iterations"):
        if name in serial["histograms"]:
            assert (
                parallel["histograms"][name] == serial["histograms"][name]
            )
    assert serial["counters"]["pipeline.windows_solved"] > 0
    assert (
        serial["counters"]["executor.drained"]
        == serial["counters"]["executor.submitted"]
    )


def test_estimate_identical_with_metrics_on_and_off():
    """Instrumentation must be observation-only: bit-equal estimates."""
    trace = _two_hop_trace()
    with isolated_registry():
        on = DomoReconstructor(DomoConfig()).estimate(trace)
    with disabled_metrics():
        off = DomoReconstructor(DomoConfig()).estimate(trace)

    def canonical(result):
        return json.dumps(
            {
                "arrivals": sorted(
                    (repr(k), v) for k, v in result.arrival_times.items()
                ),
                "estimates": sorted(
                    (repr(k), v) for k, v in result.estimates.items()
                ),
                "windows": result.windows_used,
            }
        )

    assert canonical(on) == canonical(off)
