"""Tests of the nestable span timers and their stage-trace paths."""

import pytest

from repro.obs.registry import isolated_registry
from repro.obs.spans import current_span_path, span


def test_nesting_builds_slash_paths():
    with isolated_registry() as registry:
        with span("run"):
            with span("flush"):
                with span("seal"):
                    assert current_span_path() == "run/flush/seal"
            with span("commit"):
                pass
        paths = list(registry.snapshot()["spans"])
    assert current_span_path() == ""
    assert set(paths) == {
        "run/flush/seal", "run/flush", "run/commit", "run",
    }


def test_same_stage_aggregates_per_path():
    with isolated_registry() as registry:
        with span("run"):
            for _ in range(5):
                with span("ingest"):
                    pass
        spans = registry.snapshot()["spans"]
    assert spans["run/ingest"]["count"] == 5
    assert spans["run"]["count"] == 1
    assert spans["run"]["total_s"] >= spans["run/ingest"]["total_s"]


def test_exception_safety_records_error_and_unwinds():
    with isolated_registry() as registry:
        with pytest.raises(RuntimeError):
            with span("run"):
                with span("solve"):
                    raise RuntimeError("window exploded")
        assert current_span_path() == ""
        with span("after"):
            pass
        spans = registry.snapshot()["spans"]
    assert spans["run/solve"]["errors"] == 1
    assert spans["run"]["errors"] == 1
    assert "after" in spans  # stack unwound, not "run/after"


def test_span_name_must_be_single_component():
    with pytest.raises(ValueError):
        span("a/b")
    with pytest.raises(ValueError):
        span("")
