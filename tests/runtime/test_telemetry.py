"""Tests of telemetry aggregation and reporting."""

import math

from repro.runtime.telemetry import (
    WindowTelemetry,
    format_telemetry_report,
    summarize_telemetry,
)


def _record(index, solver="linearized", status="optimal", **overrides):
    values = dict(
        window_index=index,
        num_packets=10,
        num_unknowns=8,
        num_kept=5,
        solver=solver,
        status=status,
        iterations=100,
        primal_residual=1e-4,
        dual_residual=2e-5,
        solve_time_s=0.25,
    )
    values.update(overrides)
    return WindowTelemetry(**values)


def test_summarize_counts_solver_kinds():
    stats = summarize_telemetry(
        [
            _record(0),
            _record(1, solver="sdr"),
            _record(2, solver="fallback", status="fallback",
                    iterations=0, primal_residual=float("nan"),
                    dual_residual=float("nan")),
            _record(3, solver="empty", iterations=0),
        ]
    )
    assert stats["windows"] == 4
    assert stats["linearized_windows"] == 1
    assert stats["sdr_windows"] == 1
    assert stats["failed_windows"] == 1
    assert stats["empty_windows"] == 1
    assert stats["status_counts"] == {"optimal": 3, "fallback": 1}


def test_summarize_totals_and_maxima():
    stats = summarize_telemetry(
        [
            _record(0, iterations=100, solve_time_s=0.5, primal_residual=1e-3),
            _record(1, iterations=250, solve_time_s=0.1, primal_residual=1e-6),
        ]
    )
    assert stats["total_iterations"] == 350
    assert stats["total_unknowns"] == 16
    assert math.isclose(stats["window_solve_time_s"], 0.6)
    assert math.isclose(stats["max_window_solve_time_s"], 0.5)
    assert math.isclose(stats["max_primal_residual"], 1e-3)


def test_summarize_skips_nan_residuals():
    stats = summarize_telemetry(
        [
            _record(0, primal_residual=float("nan"),
                    dual_residual=float("nan")),
        ]
    )
    assert stats["max_primal_residual"] == 0.0
    assert stats["max_dual_residual"] == 0.0


def test_summarize_exposes_per_window_records():
    records = [_record(0), _record(1, solver="sdr")]
    stats = summarize_telemetry(records)
    assert len(stats["window_telemetry"]) == 2
    assert stats["window_telemetry"][0] == records[0].as_dict()
    assert stats["window_telemetry"][1]["solver"] == "sdr"


def test_empty_run_summarizes_cleanly():
    stats = summarize_telemetry([])
    assert stats["windows"] == 0
    assert stats["window_telemetry"] == []
    assert stats["total_iterations"] == 0


def test_format_report_mentions_key_figures():
    stats = summarize_telemetry([_record(0), _record(1, solver="fallback",
                                                     status="fallback")])
    stats["execution_mode"] = "parallel"
    stats["workers"] = 4
    report = format_telemetry_report(stats)
    assert "windows solved       : 2" in report
    assert "parallel" in report
    assert "workers: 4" in report
    assert "fallback: 1" in report
