"""Tests of the parallel window-solve engine."""

import pytest

from repro.core.constraints import ConstraintConfig
from repro.core.estimator import estimate_arrival_times_info
from repro.core.preprocessor import build_window_systems
from repro.optim.result import SolverError, SolverStatus
from repro.runtime.executor import (
    MIDPOINT_RUNG,
    RELAXATION_LADDER,
    WindowSolveSpec,
    execute_windows,
    resolve_worker_count,
    solve_one_window,
)

from tests.core.conftest import make_received


def _stream(num_sources=4, packets_per_source=12, period=500.0):
    """Periodic two-hop traffic through forwarder 1 (interior unknowns)."""
    received = []
    for source in range(2, 2 + num_sources):
        for seqno in range(packets_per_source):
            t0 = seqno * period + source * 17.0
            packet, _ = make_received(
                source, seqno, (source, 1, 0), (t0, t0 + 10.0, t0 + 20.0)
            )
            received.append(packet)
    return received


def _systems(span_ms=2_000.0):
    return build_window_systems(
        _stream(), ConstraintConfig(), window_span_ms=span_ms
    )


def test_serial_and_parallel_results_identical():
    systems = _systems()
    assert len(systems) >= 2
    spec = WindowSolveSpec()
    serial = execute_windows(systems, spec, parallel=False)
    parallel = execute_windows(systems, spec, parallel=True, max_workers=2)
    assert serial.mode == "serial"
    assert parallel.mode == "parallel"
    assert parallel.workers == 2
    assert len(serial.results) == len(parallel.results)
    for left, right in zip(serial.results, parallel.results):
        assert left.window_index == right.window_index
        assert left.estimates == right.estimates  # bit-identical floats
        assert left.telemetry.solver == right.telemetry.solver
        assert left.telemetry.status == right.telemetry.status


def test_results_come_back_in_window_order():
    systems = _systems()
    report = execute_windows(
        systems, WindowSolveSpec(), parallel=True, max_workers=2
    )
    assert [r.window_index for r in report.results] == list(
        range(len(systems))
    )


def test_single_window_runs_serially_even_when_parallel_requested():
    systems = _systems(span_ms=1e9)
    assert len(systems) == 1
    report = execute_windows(
        systems, WindowSolveSpec(), parallel=True, max_workers=4
    )
    assert report.mode == "serial"
    assert report.workers == 1
    assert report.fallback_reason is None


def test_max_workers_one_disables_the_pool():
    report = execute_windows(
        _systems(), WindowSolveSpec(), parallel=True, max_workers=1
    )
    assert report.mode == "serial"


def test_resolve_worker_count_caps():
    assert resolve_worker_count(10, max_workers=4) == 4
    assert resolve_worker_count(2, max_workers=16) == 2
    assert resolve_worker_count(5, max_workers=None) >= 1
    assert resolve_worker_count(0, max_workers=8) == 1


def test_solver_error_falls_back_to_interval_midpoints(monkeypatch):
    systems = _systems()
    ws = systems[0]

    def boom(system, config=None):
        raise SolverError(SolverStatus.NUMERICAL_ERROR, "forced failure")

    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info", boom
    )
    result = solve_one_window(0, ws, WindowSolveSpec())
    assert result.telemetry.solver == "fallback"
    assert result.telemetry.status == "fallback"
    # The whole ladder was walked before surrendering.
    assert result.telemetry.relax_rung == MIDPOINT_RUNG
    assert result.telemetry.relax_stage == "midpoints"
    assert result.telemetry.solve_attempts == 1 + len(RELAXATION_LADDER)
    # Kept estimates exist and equal the interval midpoints.
    assert result.estimates
    for key, value in result.estimates.items():
        lo, hi = ws.system.intervals[key]
        assert value == pytest.approx(0.5 * (lo + hi))
        assert key.packet_id in ws.kept_ids


def _failing_first_n(n):
    """A stand-in solver that fails its first ``n`` calls, then delegates."""
    calls = {"count": 0}

    def flaky(system, config=None):
        calls["count"] += 1
        if calls["count"] <= n:
            raise SolverError(SolverStatus.ITERATION_LIMIT, "forced")
        return estimate_arrival_times_info(system, config)

    return flaky


def test_relaxation_ladder_first_rung_drops_sum_upper(monkeypatch):
    """An infeasible full system re-solves without Eq. (6) rows."""
    systems = _systems()
    ws = systems[0]
    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info",
        _failing_first_n(1),
    )
    result = solve_one_window(0, ws, WindowSolveSpec())
    telemetry = result.telemetry
    assert telemetry.solver == "linearized"
    assert telemetry.relax_rung == 1
    assert telemetry.relax_stage == "drop_sum_upper"
    assert telemetry.solve_attempts == 2
    # A real solve happened: estimates are not interval midpoints.
    assert result.estimates
    midpoints = sum(
        result.estimates[key]
        == pytest.approx(0.5 * sum(ws.system.intervals[key]))
        for key in result.estimates
    )
    assert midpoints < len(result.estimates)


def test_relaxation_ladder_walks_to_order_only(monkeypatch):
    """Two more failures push the solve down to the order-only rung."""
    systems = _systems()
    ws = systems[0]
    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info",
        _failing_first_n(3),
    )
    result = solve_one_window(0, ws, WindowSolveSpec())
    telemetry = result.telemetry
    assert telemetry.solver == "linearized"
    assert telemetry.relax_rung == 3
    assert telemetry.relax_stage == "order_only"
    assert telemetry.solve_attempts == 4
    assert result.estimates


def test_relaxed_windows_surface_in_summary(monkeypatch):
    from repro.runtime.telemetry import summarize_telemetry

    systems = _systems()
    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info",
        _failing_first_n(1),
    )
    report = execute_windows(systems, WindowSolveSpec())
    stats = summarize_telemetry([r.telemetry for r in report.results])
    assert stats["relaxed_windows"] == 1
    assert stats["relax_retries"] >= 1
    assert stats["relax_rung_histogram"].get("drop_sum_upper") == 1


def test_relaxation_ladder_tags_are_disjoint_families():
    """Each rung keeps strictly fewer constraint families than the last."""
    systems = _systems()
    builder = systems[0].system.builder
    sizes = [len(builder)]
    for _, keep in RELAXATION_LADDER:
        sizes.append(len(builder.filtered(keep)))
    assert sizes == sorted(sizes, reverse=True)
    # order rows are never dropped: the final rung is still nonempty.
    assert sizes[-1] > 0


def test_telemetry_records_solve_shape():
    systems = _systems()
    report = execute_windows(systems, WindowSolveSpec())
    for ws, result in zip(systems, report.results):
        telemetry = result.telemetry
        assert telemetry.num_packets == ws.num_packets
        assert telemetry.num_unknowns == ws.num_unknowns
        assert telemetry.num_kept == len(result.estimates)
        assert telemetry.solver == "linearized"
        assert telemetry.solve_time_s >= 0.0


def test_window_executor_serial_submit_drain():
    from repro.runtime.executor import WindowExecutor

    systems = _systems()
    executor = WindowExecutor(WindowSolveSpec(), parallel=False)
    try:
        for index, ws in enumerate(systems):
            executor.submit(index, ws)
        assert executor.in_flight == len(systems)
        results = executor.drain()
        assert executor.in_flight == 0
        # Serial submits solve inline, so results come in submit order.
        assert [r.window_index for r in results] == list(range(len(systems)))
        assert executor.drain() == []
    finally:
        executor.close()


def test_pool_crash_with_multiple_pending_windows_degrades_cleanly():
    """A broken pool fails every in-flight future at once; drain must
    re-solve each window exactly once serially instead of raising the
    KeyError the old pop-then-degrade sequence hit."""
    from concurrent.futures import Future
    from concurrent.futures.process import BrokenProcessPool

    from repro.runtime.executor import WindowExecutor

    systems = _systems()
    assert len(systems) >= 2
    serial = execute_windows(systems, WindowSolveSpec())
    executor = WindowExecutor(WindowSolveSpec(), parallel=True, max_workers=2)
    try:
        # Stage the crash directly: every submitted window in flight,
        # every future already failed — exactly what BrokenProcessPool
        # does to the pending map when a worker dies.
        for index, ws in enumerate(systems):
            future = Future()
            future.set_exception(BrokenProcessPool("worker died"))
            executor._pending[future] = (index, ws, executor.spec)
        results = executor.drain(block=True)
    finally:
        executor.close()
    assert executor.mode == "serial"
    assert "BrokenProcessPool" in (executor.fallback_reason or "")
    assert executor.in_flight == 0
    # No window lost, none solved twice.
    results.sort(key=lambda r: r.window_index)
    assert [r.window_index for r in results] == list(range(len(systems)))
    for left, right in zip(results, serial.results):
        assert left.estimates == right.estimates  # bit-identical floats


def test_pool_crash_keeps_already_completed_results():
    """Futures that finished before the crash keep their pool results;
    only failed/running windows are re-solved."""
    from concurrent.futures import Future
    from concurrent.futures.process import BrokenProcessPool

    from repro.runtime.executor import (
        WindowExecutor,
        solve_one_window,
    )

    systems = _systems()
    assert len(systems) >= 2
    executor = WindowExecutor(WindowSolveSpec(), parallel=True, max_workers=2)
    try:
        done_result = solve_one_window(0, systems[0], executor.spec)
        ok = Future()
        ok.set_result(done_result)
        executor._pending[ok] = (0, systems[0], executor.spec)
        for index, ws in enumerate(systems[1:], start=1):
            future = Future()
            future.set_exception(BrokenProcessPool("worker died"))
            executor._pending[future] = (index, ws, executor.spec)
        results = executor.drain(block=True)
    finally:
        executor.close()
    assert executor.mode == "serial"
    results.sort(key=lambda r: r.window_index)
    assert [r.window_index for r in results] == list(range(len(systems)))
    # The completed future's object came through untouched.
    assert any(r is done_result for r in results)


def test_window_executor_incremental_parallel_drain():
    """Streaming-style use: submit one at a time, drain non-blocking,
    block only at the end; results match a serial sweep exactly."""
    from repro.runtime.executor import WindowExecutor

    systems = _systems()
    serial = execute_windows(systems, WindowSolveSpec())
    executor = WindowExecutor(WindowSolveSpec(), parallel=True, max_workers=2)
    collected = []
    try:
        for index, ws in enumerate(systems):
            executor.submit(index, ws)
            collected.extend(executor.drain(block=False))
        collected.extend(executor.drain(block=True))
    finally:
        executor.close()
    assert executor.in_flight == 0
    collected.sort(key=lambda r: r.window_index)
    assert len(collected) == len(serial.results)
    for left, right in zip(collected, serial.results):
        assert left.window_index == right.window_index
        assert left.estimates == right.estimates  # bit-identical floats


@pytest.mark.parametrize("parallel", [False, True])
def test_concurrent_producers_share_one_executor(parallel):
    """Two streams interleave submit/drain from their own threads over a
    single executor: every window comes back exactly once, to some
    drainer, bit-identical to a serial sweep (the serve layer's shared
    solver pool relies on exactly this contract)."""
    import threading

    from repro.runtime.executor import WindowExecutor

    systems = _systems()
    assert len(systems) >= 2
    serial = execute_windows(systems, WindowSolveSpec())
    executor = WindowExecutor(
        WindowSolveSpec(), parallel=parallel, max_workers=2
    )
    collected: list = []
    lock = threading.Lock()
    errors: list = []

    def producer(offset):
        try:
            local = []
            for index in range(offset, len(systems), 2):
                executor.submit(index, systems[index])
                local.extend(executor.drain(block=False))
            local.extend(executor.drain(block=True))
            with lock:
                collected.extend(local)
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=producer, args=(k,)) for k in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    executor.close()
    assert not errors, errors
    assert executor.in_flight == 0
    # Exactly-once delivery across concurrent drains: no window lost,
    # none duplicated.
    indices = sorted(r.window_index for r in collected)
    assert indices == list(range(len(systems)))
    collected.sort(key=lambda r: r.window_index)
    for left, right in zip(collected, serial.results):
        assert left.estimates == right.estimates  # bit-identical floats
