"""Tests for the MessageTracing baseline."""

import pytest

from repro.baselines.message_tracing import (
    MessageTracingConfig,
    MessageTracingReconstructor,
)
from repro.core.metrics import average_displacement
from repro.sim import NetworkConfig, simulate_network
from repro.sim.packet import PacketId
from repro.sim.trace import NodeLogEntry, TraceBundle

from tests.core.conftest import bundle_of, make_received


def _with_logs(bundle):
    """Synthesize per-node logs from ground truth (what nodes would log)."""
    logs: dict[int, list] = {}
    events = []
    for pid, truth in bundle.ground_truth.items():
        path = truth.path
        times = truth.arrival_times_ms
        events.append((times[0], path[0], "gen", pid))
        for hop in range(len(path) - 1):
            events.append((times[hop + 1], path[hop], "send", pid))
            events.append((times[hop + 1], path[hop + 1], "recv", pid))
    events.sort(key=lambda e: (e[0], e[2] == "recv"))
    for t, node, kind, pid in events:
        logs.setdefault(node, []).append(NodeLogEntry(kind, pid, t))
    bundle.node_logs = logs
    return bundle


@pytest.fixture
def small_bundle():
    a = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 20.0))
    b = make_received(3, 0, (3, 1, 0), (5.0, 15.0, 30.0))
    c = make_received(2, 1, (2, 1, 0), (40.0, 50.0, 60.0))
    return _with_logs(bundle_of(a, b, c))


def test_true_order(small_bundle):
    mt = MessageTracingReconstructor()
    truth = mt.true_transmission_order(small_bundle)
    assert truth[0] == (PacketId(2, 0), 1)
    assert truth[-1] == (PacketId(2, 1), 2)
    assert len(truth) == 6


def test_reconstruction_contains_all_events(small_bundle):
    mt = MessageTracingReconstructor()
    order = mt.global_transmission_order(small_bundle)
    truth = mt.true_transmission_order(small_bundle)
    assert sorted(order) == sorted(truth)


def test_per_packet_causality_respected(small_bundle):
    """Hop k of a packet always precedes hop k+1 in the output."""
    mt = MessageTracingReconstructor()
    order = mt.global_transmission_order(small_bundle)
    position = {event: i for i, event in enumerate(order)}
    for pid, truth in small_bundle.ground_truth.items():
        for hop in range(1, len(truth.path) - 1):
            assert position[(pid, hop)] < position[(pid, hop + 1)]


def test_easy_trace_reconstructed_exactly(small_bundle):
    """Packets that never overlap in flight are fully recoverable."""
    mt = MessageTracingReconstructor()
    order = mt.global_transmission_order(small_bundle)
    truth = mt.true_transmission_order(small_bundle)
    assert average_displacement(order, truth) < 1.0


def test_order_from_arrival_times():
    mt = MessageTracingReconstructor()
    times = {
        PacketId(1, 0): [0.0, 10.0, 20.0],
        PacketId(2, 0): [5.0, 15.0, 25.0],
    }
    order = mt.order_from_arrival_times(times)
    assert order == [
        (PacketId(1, 0), 1),
        (PacketId(2, 0), 1),
        (PacketId(1, 0), 2),
        (PacketId(2, 0), 2),
    ]


@pytest.fixture(scope="module")
def sim_trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=25,
            placement="grid",
            duration_ms=40_000.0,
            packet_period_ms=2_000.0,
            seed=11,
        )
    )


def test_simulated_trace_sorts_without_cycles(sim_trace):
    mt = MessageTracingReconstructor()
    order = mt.global_transmission_order(sim_trace)
    truth = mt.true_transmission_order(sim_trace)
    assert sorted(order) == sorted(truth)


def test_domo_order_beats_message_tracing(sim_trace):
    """Fig. 6(c)'s shape: Domo's displacement below MessageTracing's."""
    from repro.core.pipeline import DomoConfig, DomoReconstructor

    mt = MessageTracingReconstructor()
    truth = mt.true_transmission_order(sim_trace)
    tracing_order = mt.global_transmission_order(sim_trace)
    estimate = DomoReconstructor(DomoConfig()).estimate(sim_trace)
    domo_order = mt.order_from_arrival_times(estimate.arrival_times)
    domo_disp = average_displacement(domo_order, truth)
    tracing_disp = average_displacement(tracing_order, truth)
    assert domo_disp < tracing_disp


def test_received_only_filter(sim_trace):
    mt_all = MessageTracingReconstructor(
        MessageTracingConfig(received_only=False)
    )
    # Unfiltered logs include lost packets; ordering must still work for
    # the received subset (lost packets simply add vertices).
    order = mt_all.global_transmission_order(sim_trace)
    received = {p.packet_id for p in sim_trace.received}
    received_events = [e for e in order if e[0] in received]
    truth = mt_all.true_transmission_order(sim_trace)
    assert sorted(received_events) == sorted(truth)
