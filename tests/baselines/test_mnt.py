"""Tests for the MNT baseline."""

import numpy as np
import pytest

from repro.baselines.mnt import MntConfig, MntReconstructor
from repro.core.records import ArrivalKey
from repro.sim import NetworkConfig, simulate_network
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def test_local_packet_bracketing_tightens_bounds():
    """A forwarded packet bracketed by two locals gets non-trivial bounds.

    Node 1 generates l1 (t0=0) and l2 (t0=100); packet x from node 2 is
    forwarded by node 1 between them (sink order l1 < x < l2).
    """
    l1 = make_received(1, 0, (1, 0), (0.0, 8.0))
    x = make_received(2, 0, (2, 1, 0), (30.0, 40.0, 52.0))
    l2 = make_received(1, 1, (1, 0), (100.0, 109.0))
    result = MntReconstructor().reconstruct(bundle_of(l1, x, l2))
    key = ArrivalKey(PacketId(2, 0), 1)
    lo, hi = result.intervals[key]
    # Arrival at node 1 is capped by l2's generation time (FIFO).
    assert hi <= 100.0
    # And the true value stays inside.
    assert lo <= 40.0 <= hi


def test_departure_lower_bound_from_predecessor():
    l1 = make_received(1, 0, (1, 0), (35.0, 44.0))
    x = make_received(2, 0, (2, 1, 0), (30.0, 45.0, 60.0))
    result = MntReconstructor().reconstruct(bundle_of(l1, x))
    # x reached the sink after l1, so x departed node 1 after l1 did:
    # t_2(x) >= t0(l1) + omega = 36.
    key = ArrivalKey(PacketId(2, 0), 2)
    lo, hi = result.intervals[key]
    assert lo >= 36.0
    assert lo <= 60.0 <= hi  # t_2(x) is the (known) sink arrival


def test_without_local_packets_bounds_stay_trivial():
    # Node 9 forwards x but never originates packets itself.
    x = make_received(2, 0, (2, 9, 0), (0.0, 10.0, 20.0))
    result = MntReconstructor().reconstruct(bundle_of(x))
    key = ArrivalKey(PacketId(2, 0), 1)
    lo, hi = result.intervals[key]
    assert lo == pytest.approx(1.0)
    assert hi == pytest.approx(19.0)


def test_estimates_are_midpoints():
    x = make_received(2, 0, (2, 9, 0), (0.0, 10.0, 20.0))
    result = MntReconstructor().reconstruct(bundle_of(x))
    times = result.estimated_arrival_times(PacketId(2, 0))
    assert times[0] == 0.0
    assert times[1] == pytest.approx(10.0)  # midpoint of (1, 19)
    assert times[2] == 20.0


def test_delay_helpers():
    x = make_received(2, 0, (2, 9, 0), (0.0, 10.0, 20.0))
    result = MntReconstructor().reconstruct(bundle_of(x))
    delays = result.estimated_delays(PacketId(2, 0))
    assert len(delays) == 2
    assert sum(delays) == pytest.approx(20.0)
    widths = result.delay_widths()
    assert len(widths) == 2


@pytest.fixture(scope="module")
def sim_trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=25,
            placement="grid",
            duration_ms=40_000.0,
            packet_period_ms=3_000.0,
            seed=11,
        )
    )


def test_mostly_sound_on_simulated_trace(sim_trace):
    """MNT's ordering heuristic is not exact, but misses must be rare."""
    result = MntReconstructor().reconstruct(sim_trace)
    misses = 0
    total = 0
    for p in sim_trace.received:
        truth = sim_trace.truth_of(p.packet_id)
        for hop in range(1, p.path_length - 1):
            lo, hi = result.intervals[ArrivalKey(p.packet_id, hop)]
            total += 1
            if not lo - 2.0 <= truth.arrival_times_ms[hop] <= hi + 2.0:
                misses += 1
    assert total > 100
    assert misses / total < 0.02


def test_mnt_less_accurate_than_domo(sim_trace):
    """The paper's headline comparison, in miniature."""
    from repro.core.pipeline import DomoConfig, DomoReconstructor

    mnt = MntReconstructor().reconstruct(sim_trace)
    domo = DomoReconstructor(DomoConfig()).estimate(sim_trace)
    mnt_errors, domo_errors = [], []
    for p in sim_trace.received:
        truth = sim_trace.truth_of(p.packet_id).node_delays()
        mnt_errors.extend(
            abs(a - b)
            for a, b in zip(mnt.estimated_delays(p.packet_id), truth)
        )
        domo_errors.extend(
            abs(a - b) for a, b in zip(domo.delays_of(p.packet_id), truth)
        )
    assert np.mean(domo_errors) < np.mean(mnt_errors)


def test_refinement_rounds_configurable(sim_trace):
    one = MntReconstructor(MntConfig(refinement_rounds=1)).reconstruct(sim_trace)
    three = MntReconstructor(MntConfig(refinement_rounds=3)).reconstruct(sim_trace)
    w1 = np.mean(one.delay_widths())
    w3 = np.mean(three.delay_widths())
    assert w3 <= w1 + 1e-9
