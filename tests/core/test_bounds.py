"""Tests for the sub-graph LP bound computation."""

import numpy as np
import pytest

from repro.core.bounds import BoundComputer, BoundsConfig
from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.records import ArrivalKey, TraceIndex
from repro.sim import NetworkConfig, simulate_network
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _computer(bundle, **cfg):
    index = TraceIndex(list(bundle.received))
    system = build_constraints(index, ConstraintConfig())
    return BoundComputer(system, BoundsConfig(**cfg)), system


def test_known_key_collapses(busy_node_trace):
    computer, _ = _computer(busy_node_trace)
    result = computer.bounds_for(ArrivalKey(PacketId(2, 0), 0))
    assert result.method == "known"
    assert result.lower == result.upper == 0.0


def test_bounds_contain_truth(busy_node_trace):
    computer, system = _computer(busy_node_trace)
    for key in system.variables:
        result = computer.bounds_for(key)
        truth = busy_node_trace.truth_of(key.packet_id).arrival_times_ms[key.hop]
        assert result.lower - 1e-6 <= truth <= result.upper + 1e-6


def test_bounds_at_least_as_tight_as_intervals(busy_node_trace):
    computer, system = _computer(busy_node_trace)
    for key in system.variables:
        result = computer.bounds_for(key)
        lo, hi = system.intervals[key]
        assert result.lower >= lo - 1e-6
        assert result.upper <= hi + 1e-6


def test_sum_equality_pins_bound():
    """Eq. (6)+(7) together pin a lone source's delay within the slack."""
    q = make_received(5, 0, (5, 4, 0), (0.0, 10.0, 20.0), sum_of_delays=10)
    p = make_received(5, 1, (5, 4, 0), (100.0, 112.0, 125.0), sum_of_delays=12)
    computer, _ = _computer(bundle_of(q, p))
    result = computer.bounds_for(ArrivalKey(PacketId(5, 1), 1))
    # slack defaults to 2 ms on each side of S(p) = 12.
    assert result.lower >= 110.0 - 1e-6
    assert result.upper <= 114.0 + 1e-6


def test_bounds_for_all_matches_individual(busy_node_trace):
    computer, system = _computer(busy_node_trace)
    batch = computer.bounds_for_all()
    for key in system.variables:
        single = computer.bounds_for(key)
        assert batch[key].lower == pytest.approx(single.lower, abs=1e-6)
        assert batch[key].upper == pytest.approx(single.upper, abs=1e-6)


def test_bounds_for_packet(busy_node_trace):
    computer, _ = _computer(busy_node_trace)
    results = computer.bounds_for_packet(PacketId(2, 0))
    assert len(results) == 1
    assert results[0].key == ArrivalKey(PacketId(2, 0), 1)


@pytest.fixture(scope="module")
def sim_setup():
    trace = simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=20_000.0,
            packet_period_ms=3_000.0,
            seed=4,
        )
    )
    index = TraceIndex(list(trace.received))
    system = build_constraints(index, ConstraintConfig())
    return trace, system


def test_simulated_bounds_sound_with_extraction(sim_setup):
    """Sub-graph relaxation must stay sound even with a tiny cut size."""
    trace, system = sim_setup
    computer = BoundComputer(system, BoundsConfig(graph_cut_size=30))
    results = computer.bounds_for_all()
    for key, result in results.items():
        truth = trace.truth_of(key.packet_id).arrival_times_ms[key.hop]
        assert result.lower - 1e-5 <= truth <= result.upper + 1e-5


def test_larger_cut_size_not_looser(sim_setup):
    """Fig. 10(a): larger graph cut sizes give (weakly) tighter bounds."""
    trace, system = sim_setup
    small = BoundComputer(system, BoundsConfig(graph_cut_size=25))
    large = BoundComputer(system, BoundsConfig(graph_cut_size=10_000))
    keys = list(system.variables)[:20]
    widths_small = [small.bounds_for(k).width for k in keys]
    widths_large = [large.bounds_for(k).width for k in keys]
    assert np.mean(widths_large) <= np.mean(widths_small) + 1e-6


def test_stats_accumulate(sim_setup):
    _, system = sim_setup
    computer = BoundComputer(system, BoundsConfig(graph_cut_size=10_000))
    computer.bounds_for_all(list(system.variables)[:5])
    assert sum(computer.stats.values()) == 5
