"""Property-based soundness: ground truth always satisfies Domo's rows.

Hypothesis drives the simulator across seeds, loads, link qualities and
MAC settings; for every resulting trace the constraint system built from
sink-side data must (a) keep the true arrival times feasible and (b) keep
every tightened interval containing the truth. This is the core
correctness contract of the whole reconstruction: a violated row could
silently exclude the right answer.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import substrate_domo_config
from repro.core.constraints import build_constraints
from repro.core.records import TraceIndex
from repro.sim import NetworkConfig, Simulator
from repro.sim.mac import MacConfig
from repro.sim.radio import RadioConfig


def _simulate(seed, period_ms, reference_loss_db, ack_loss, max_transmissions):
    config = NetworkConfig(
        num_nodes=16,
        placement="grid",
        duration_ms=15_000.0,
        packet_period_ms=period_ms,
        seed=seed,
        radio=RadioConfig(reference_loss_db=reference_loss_db),
        mac=MacConfig(
            ack_loss_prob=ack_loss, max_transmissions=max_transmissions
        ),
    )
    return Simulator(config).run()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    period_ms=st.sampled_from([800.0, 2_000.0, 5_000.0]),
    reference_loss_db=st.floats(44.0, 50.0),
    ack_loss=st.sampled_from([0.0, 0.1]),
    max_transmissions=st.sampled_from([3, 30]),
)
def test_truth_feasible_for_any_simulated_trace(
    seed, period_ms, reference_loss_db, ack_loss, max_transmissions
):
    trace = _simulate(
        seed, period_ms, reference_loss_db, ack_loss, max_transmissions
    )
    if trace.num_received < 5:
        return
    config = substrate_domo_config()
    index = TraceIndex(list(trace.received), omega_ms=config.omega_ms)
    system = build_constraints(index, config.constraints)
    if system.num_unknowns == 0:
        return

    truth = np.zeros(system.num_unknowns)
    for i, key in enumerate(system.variables):
        truth[i] = trace.truth_of(key.packet_id).arrival_times_ms[key.hop]

    # (a) every emitted row holds at the true point. Eq. (6) rows are the
    # known loss-unsafe exception; they must be the ONLY violated family.
    for row in system.builder.rows:
        violation = row.violation(truth)
        if violation > 1e-6:
            assert row.tag.startswith("sum_hi"), (
                f"sound row {row.tag} violated by {violation:.4f} ms "
                f"(seed={seed}, loss_db={reference_loss_db:.1f}, "
                f"ack_loss={ack_loss})"
            )

    # (b) every tightened interval still contains the truth.
    for i, key in enumerate(system.variables):
        lo, hi = system.intervals[key]
        assert lo - 1e-6 <= truth[i] <= hi + 1e-6, (
            f"interval for {key} excludes truth (seed={seed})"
        )
