"""Tests of trace-ingestion validation (quarantine / repair / distrust)."""

from dataclasses import replace

import pytest

from repro.core.validation import (
    TraceValidationError,
    ValidationConfig,
    ValidationReport,
    sanitize_trace_dict,
    validate_packets,
)
from repro.sim.packet import SUM_OF_DELAYS_MAX_MS

from tests.core.conftest import make_received


def _packets():
    """Three well-formed packets with exact, validation-safe semantics."""
    a, _ = make_received(3, 0, (3, 2, 1, 0), (0.0, 10.0, 20.0, 30.0),
                         sum_of_delays=10)
    b, _ = make_received(2, 0, (2, 1, 0), (100.0, 110.0, 120.0),
                         sum_of_delays=10)
    c, _ = make_received(1, 0, (1, 0), (200.0, 210.0), sum_of_delays=10)
    return [a, b, c]


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        ValidationConfig(mode="paranoid")


def test_clean_trace_passes_through_identically():
    """Byte-identity invariant: same objects, same order, clean report."""
    packets = _packets()
    survivors, report = validate_packets(packets, ValidationConfig())
    assert report.clean
    assert len(survivors) == len(packets)
    for kept, original in zip(survivors, packets):
        assert kept is original


def test_mode_off_skips_all_checks():
    broken = replace(_packets()[0], sink_arrival_ms=-1.0)
    survivors, report = validate_packets(
        [broken], ValidationConfig(mode="off")
    )
    assert survivors == [broken]
    assert report.clean


@pytest.mark.parametrize("mode", ["repair", "drop"])
def test_non_finite_time_quarantined(mode):
    packets = _packets()
    packets[1] = replace(packets[1], generation_time_ms=float("nan"))
    survivors, report = validate_packets(packets, ValidationConfig(mode=mode))
    assert len(survivors) == 2
    assert report.quarantined == [packets[1].packet_id]
    assert report.reason_counts() == {"non_finite_time": 1}


def test_looping_path_quarantined():
    packets = _packets()
    packets[0] = replace(packets[0], path=(3, 2, 3, 0))
    survivors, report = validate_packets(packets, ValidationConfig())
    assert packets[0].packet_id in report.quarantined
    assert report.reason_counts() == {"looping_path": 1}
    assert len(survivors) == 2


def test_short_path_quarantined():
    packets = _packets()
    packets[2] = replace(packets[2], path=(0,))
    _, report = validate_packets(packets, ValidationConfig())
    assert report.reason_counts() == {"short_path": 1}


def test_impossible_timestamps_quarantined():
    """t_sink < t0 + (|p|-1) * omega cannot happen on a real network."""
    packets = _packets()
    packets[0] = replace(packets[0], sink_arrival_ms=1.0)  # 4-node path
    survivors, report = validate_packets(packets, ValidationConfig())
    assert report.reason_counts() == {"impossible_timestamps": 1}
    assert packets[0].packet_id not in {p.packet_id for p in survivors}


def test_omega_scales_the_timestamp_check():
    """A 29 ms e2e delay over 3 hops fails only when omega > 29/3."""
    packet, _ = make_received(3, 0, (3, 2, 1, 0), (0.0, 10.0, 20.0, 29.0))
    _, lenient = validate_packets([packet], ValidationConfig(omega_ms=1.0))
    assert lenient.clean
    _, strict = validate_packets([packet], ValidationConfig(omega_ms=10.0))
    assert strict.reason_counts() == {"impossible_timestamps": 1}


def test_duplicate_id_keeps_first_copy():
    packets = _packets()
    duplicate = replace(packets[0], sink_arrival_ms=31.0)
    survivors, report = validate_packets(
        packets + [duplicate], ValidationConfig()
    )
    assert report.reason_counts() == {"duplicate_id": 1}
    kept = [p for p in survivors if p.packet_id == packets[0].packet_id]
    assert kept == [packets[0]]  # the first copy, original object


def test_sum_out_of_range_repaired_and_distrusted():
    packets = _packets()
    packets[1] = replace(packets[1], sum_of_delays_ms=-5)
    survivors, report = validate_packets(packets, ValidationConfig())
    assert len(survivors) == 3  # repaired, not dropped
    repaired = survivors[1]
    assert repaired.sum_of_delays_ms == 0
    assert packets[1].packet_id in report.distrusted_sums
    assert report.reason_counts() == {"sum_out_of_range": 1}


def test_sum_out_of_range_dropped_in_drop_mode():
    packets = _packets()
    packets[1] = replace(
        packets[1], sum_of_delays_ms=SUM_OF_DELAYS_MAX_MS + 10
    )
    survivors, report = validate_packets(
        packets, ValidationConfig(mode="drop")
    )
    assert len(survivors) == 2
    assert report.quarantined == [packets[1].packet_id]


def test_saturated_sum_distrusted_not_dropped():
    packets = _packets()
    packets[0] = replace(packets[0], sum_of_delays_ms=SUM_OF_DELAYS_MAX_MS)
    survivors, report = validate_packets(packets, ValidationConfig())
    assert len(survivors) == 3
    assert packets[0].packet_id in report.distrusted_sums
    assert report.reason_counts() == {"sum_saturated": 1}
    # With the suspicion configured off, the budget check still nets it.
    _, trusting = validate_packets(
        packets, ValidationConfig(distrust_saturated_sum=False)
    )
    assert trusting.reason_counts() == {"sum_over_budget": 1}


def test_sum_over_budget_distrusted():
    """An S(p) far beyond the e2e budget means a wrapped accumulator."""
    packets = _packets()
    packets[2] = replace(packets[2], sum_of_delays_ms=60_000)
    survivors, report = validate_packets(packets, ValidationConfig())
    assert len(survivors) == 3
    assert report.reason_counts() == {"sum_over_budget": 1}
    assert packets[2].packet_id in report.distrusted_sums


def test_strict_mode_raises_naming_packet_and_field():
    packets = _packets()
    packets[1] = replace(packets[1], sum_of_delays_ms=-5)
    with pytest.raises(TraceValidationError) as excinfo:
        validate_packets(packets, ValidationConfig(mode="strict"))
    message = str(excinfo.value)
    assert str(packets[1].packet_id) in message
    assert "sum_of_delays" in message


def test_strict_mode_raises_on_impossible_timestamps():
    packets = _packets()
    packets[0] = replace(packets[0], sink_arrival_ms=-10.0)
    with pytest.raises(TraceValidationError) as excinfo:
        validate_packets(packets, ValidationConfig(mode="strict"))
    assert "t_sink" in str(excinfo.value)


def test_report_as_dict_and_merge():
    packets = _packets()
    packets[0] = replace(packets[0], path=(3, 2, 3, 0))
    packets[1] = replace(packets[1], sum_of_delays_ms=-1)
    _, report = validate_packets(packets, ValidationConfig())
    summary = report.as_dict()
    assert summary["mode"] == "repair"
    assert summary["total_packets"] == 3
    assert summary["quarantined_packets"] == 1
    assert summary["distrusted_sums"] == 1
    other = ValidationReport(mode="repair", malformed_records=4)
    report.merge(other)
    assert report.as_dict()["malformed_records"] == 4
    assert not report.clean


# ----------------------------------------------------------------------
# Raw-record sanitization
# ----------------------------------------------------------------------


def _raw_trace():
    return {
        "version": 1,
        "received": [
            {"id": [2, 0], "path": [2, 1, 0], "t0": 0.0, "t_sink": 20.0,
             "sum_of_delays": 10},
            {"id": [3, 0], "path": [3, 1, 0], "t0": 5.0, "t_sink": 30.0,
             "sum_of_delays": 9},
        ],
        "ground_truth": [
            {"id": [2, 0], "path": [2, 1, 0], "arrivals": [0.0, 10.0, 20.0]},
            {"id": [3, 0], "path": [3, 1, 0], "arrivals": [5.0, 14.0, 30.0]},
        ],
        "node_logs": {},
        "lost": [],
    }


def test_sanitize_passes_clean_dict_through():
    data = _raw_trace()
    cleaned, report = sanitize_trace_dict(data)
    assert report.clean
    assert cleaned["received"] == data["received"]
    assert cleaned["ground_truth"] == data["ground_truth"]


def test_sanitize_drops_truncated_records():
    data = _raw_trace()
    del data["received"][0]["t_sink"]
    cleaned, report = sanitize_trace_dict(data)
    assert report.malformed_records == 1
    assert [r["id"] for r in cleaned["received"]] == [[3, 0]]


def test_sanitize_drops_type_corrupted_records():
    data = _raw_trace()
    data["received"][1]["t0"] = "yesterday"
    data["received"].append("not even a record")
    cleaned, report = sanitize_trace_dict(data)
    assert report.malformed_records == 2
    assert [r["id"] for r in cleaned["received"]] == [[2, 0]]


def test_sanitize_drops_received_without_ground_truth_twin():
    data = _raw_trace()
    data["ground_truth"][0]["arrivals"] = [0.0]  # misaligned -> dropped
    cleaned, report = sanitize_trace_dict(data)
    # One malformed truth record plus its orphaned received twin.
    assert report.malformed_records == 2
    assert [r["id"] for r in cleaned["received"]] == [[3, 0]]


def test_sanitize_cleans_node_logs_and_lost():
    data = _raw_trace()
    data["node_logs"] = {"1": [["arrive", 2, 0, 10.0], ["bad"]]}
    data["lost"] = [[4, 0], "junk"]
    cleaned, report = sanitize_trace_dict(data)
    assert cleaned["node_logs"]["1"] == [["arrive", 2, 0, 10.0]]
    assert cleaned["lost"] == [[4, 0]]
    assert report.malformed_records == 1


def test_sanitize_rejects_non_dict_payload():
    with pytest.raises(TraceValidationError):
        sanitize_trace_dict([1, 2, 3])
