"""Soundness of the Eq. (7) lower-bound sum rows under packet loss.

The paper's robustness claim (§III.C): the guaranteed candidate set
C*(p) only ever *undercounts* the delays folded into S(p), so the rows
``D(p) + sum over C*(p) <= S(p)`` stay valid no matter how many received
records are missing — as long as unanchorable packets (a seqno gap right
before p) emit no row at all. These tests delete received records at the
paper's evaluated loss rates (10–30%) and assert the surviving ``sum_lo``
rows never exclude the ground-truth arrival times.
"""

import numpy as np
import pytest

from repro.core.candidate import compute_candidate_sets, loss_evidence
from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.records import TraceIndex
from repro.faults.injectors import make_injector
from repro.sim import NetworkConfig, simulate_network
from repro.sim.io import trace_from_dict, trace_to_dict

from tests.core.conftest import bundle_of, make_received


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=16,
            placement="grid",
            duration_ms=30_000.0,
            packet_period_ms=2_000.0,
            seed=5,
        )
    )


def _ground_truth_vector(system, trace) -> np.ndarray:
    """Unknown-variable vector filled with the true arrival times."""
    values = []
    for key in system.variables:
        truth = trace.ground_truth[key.packet_id]
        values.append(truth.arrival_times_ms[key.hop])
    return np.asarray(values)


def _max_sum_lo_violation(faulted, trace, config=None) -> tuple[float, dict]:
    index = TraceIndex(faulted.received, omega_ms=1.0)
    system = build_constraints(index, config or ConstraintConfig())
    x = _ground_truth_vector(system, trace)
    rows = system.builder.rows_by_tag("sum_lo:")
    assert rows, "expected some Eq. (7) rows to survive"
    return max(row.violation(x) for row in rows), system.stats


@pytest.mark.parametrize("rate", [0.1, 0.2, 0.3])
def test_sum_lower_rows_sound_under_loss(trace, rate):
    """Ground truth satisfies every surviving Eq. (7) row at 10-30% loss."""
    injector = make_injector("delete_received", rate=rate)
    rng = np.random.default_rng(int(rate * 100))
    faulted = trace_from_dict(injector.apply(trace_to_dict(trace), rng))
    assert len(faulted.received) < trace.num_received
    # Tolerance: the sum slack is already folded into each row's bound;
    # allow the reconstructed-timeline skew of the simulator's received
    # timestamps (< 2 ms, see §III) on top.
    violation, stats = _max_sum_lo_violation(faulted, trace)
    assert violation <= 2.0, (
        f"Eq. (7) row excludes ground truth by {violation:.3f} ms "
        f"at loss rate {rate}"
    )
    # Loss must be visible: seqno gaps appear, and gapped packets are
    # skipped as unanchored rather than emitting an unsound row.
    index = TraceIndex(faulted.received, omega_ms=1.0)
    assert loss_evidence(index) > 0
    assert stats["sum_unanchored"] > 0


def test_sum_lower_rows_sound_on_clean_trace(trace):
    violation, stats = _max_sum_lo_violation(trace, trace)
    assert violation <= 2.0
    assert stats["sum_unanchored"] == 0


@pytest.mark.parametrize("rate", [0.1, 0.3])
def test_loss_aware_mode_drops_all_upper_rows(trace, rate):
    """With loss evidence, loss_aware_sums suppresses every Eq. (6) row."""
    injector = make_injector("delete_received", rate=rate)
    rng = np.random.default_rng(int(rate * 100))
    faulted = trace_from_dict(injector.apply(trace_to_dict(trace), rng))
    _, stats = _max_sum_lo_violation(
        faulted, trace, ConstraintConfig(loss_aware_sums=True)
    )
    assert stats["sum_upper_rows"] == 0
    assert stats["sum_upper_degraded"] > 0


def test_unanchored_candidate_sets_are_detected_and_skipped():
    """A seqno gap right before p makes C*(p) unanchorable: no sum rows."""
    # Source 2's seqno 1 was lost: 0 then 2 arrive at the sink.
    a = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 20.0), sum_of_delays=10)
    b = make_received(2, 2, (2, 1, 0), (100.0, 110.0, 120.0),
                      sum_of_delays=10)
    bundle = bundle_of(a, b)
    index = TraceIndex(bundle.received, omega_ms=1.0)
    sets = compute_candidate_sets(index, bundle.received[1])
    assert sets is not None
    assert sets.anchored is False
    system = build_constraints(index, ConstraintConfig())
    assert system.stats["sum_unanchored"] == 1
    gapped = bundle.received[1].packet_id
    assert not system.builder.rows_by_tag(f"sum_lo:{gapped}")
