"""Tests for interval propagation."""

import pytest

from repro.core.intervals import (
    clip_to_valid,
    propagate_path_monotonicity,
    trivial_intervals,
    width,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def test_trivial_intervals_cover_all_keys(chain_trace):
    index = TraceIndex(list(chain_trace.received))
    intervals = trivial_intervals(index)
    total_keys = sum(p.path_length for p in chain_trace.received)
    assert len(intervals) == total_keys


def test_trivial_intervals_contain_truth(chain_trace):
    index = TraceIndex(list(chain_trace.received))
    intervals = trivial_intervals(index)
    for packet in chain_trace.received:
        truth = chain_trace.truth_of(packet.packet_id)
        for hop, t in enumerate(truth.arrival_times_ms):
            lo, hi = intervals[ArrivalKey(packet.packet_id, hop)]
            assert lo - 1e-9 <= t <= hi + 1e-9


def test_propagation_is_sound_and_idempotent(chain_trace):
    index = TraceIndex(list(chain_trace.received))
    intervals = trivial_intervals(index)
    propagate_path_monotonicity(index, intervals)
    # A second pass with no external tightening changes nothing.
    assert propagate_path_monotonicity(index, intervals) == 0
    for packet in chain_trace.received:
        truth = chain_trace.truth_of(packet.packet_id)
        for hop, t in enumerate(truth.arrival_times_ms):
            lo, hi = intervals[ArrivalKey(packet.packet_id, hop)]
            assert lo - 1e-9 <= t <= hi + 1e-9


def test_propagation_tightens_after_external_update():
    p, t = make_received(2, 0, (2, 9, 8, 0), (0.0, 10.0, 20.0, 30.0))
    index = TraceIndex([p], omega_ms=1.0)
    intervals = trivial_intervals(index)
    key1 = ArrivalKey(PacketId(2, 0), 1)
    key2 = ArrivalKey(PacketId(2, 0), 2)
    # Externally learn that t1 >= 15 (e.g. a FIFO resolution).
    lo, hi = intervals[key1]
    intervals[key1] = (15.0, hi)
    changed = propagate_path_monotonicity(index, intervals)
    assert changed > 0
    assert intervals[key2][0] >= 16.0  # 15 + omega


def test_clip_to_valid_repairs_inversions():
    intervals = {"a": (5.0, 3.0), "b": (0.0, 1.0)}
    repaired = clip_to_valid(intervals)
    assert repaired == ["a"]
    assert intervals["a"] == (4.0, 4.0)
    assert intervals["b"] == (0.0, 1.0)


def test_width():
    assert width((2.0, 10.0)) == pytest.approx(8.0)
