"""End-to-end tests of the DomoReconstructor public API."""

import numpy as np
import pytest

from repro.core.pipeline import (
    DomoConfig,
    DomoReconstructor,
)
from repro.core.records import ArrivalKey
from repro.sim import NetworkConfig, simulate_network


@pytest.fixture(scope="module")
def trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=25,
            placement="grid",
            duration_ms=40_000.0,
            packet_period_ms=3_000.0,
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def estimate(trace):
    return DomoReconstructor(DomoConfig()).estimate(trace)


def test_config_validates_fifo_mode():
    with pytest.raises(ValueError):
        DomoConfig(fifo_mode="quantum")


def test_config_rejects_zero_window_span():
    """Regression: span 0.0 used to silently fall through to auto-sizing."""
    with pytest.raises(ValueError):
        DomoConfig(window_span_ms=0.0)
    with pytest.raises(ValueError):
        DomoConfig(window_span_ms=-5.0)


def test_config_rejects_bad_max_workers():
    with pytest.raises(ValueError):
        DomoConfig(max_workers=0)
    with pytest.raises(ValueError):
        DomoConfig(max_workers=-2)


def test_explicit_window_span_is_honored(trace):
    config = DomoConfig(window_span_ms=9_000.0)
    estimate = DomoReconstructor(config).estimate(trace.received[:60])
    assert estimate.stats["window_span_ms"] == pytest.approx(9_000.0)


def test_shared_subconfigs_are_not_cross_contaminated():
    """Regression: __post_init__ used to mutate user sub-configs in place."""
    from repro.core.constraints import ConstraintConfig
    from repro.core.estimator import EstimatorConfig
    from repro.core.sdr import SdrConfig

    shared_constraints = ConstraintConfig()
    shared_estimator = EstimatorConfig()
    shared_sdr = SdrConfig()
    one = DomoConfig(
        omega_ms=1.0, epsilon_ms=500.0,
        constraints=shared_constraints, estimator=shared_estimator,
        sdr=shared_sdr,
    )
    two = DomoConfig(
        omega_ms=3.0, epsilon_ms=2_000.0,
        constraints=shared_constraints, estimator=shared_estimator,
        sdr=shared_sdr,
    )
    # The user's objects are untouched...
    assert shared_constraints.omega_ms == ConstraintConfig().omega_ms
    assert shared_estimator.epsilon_ms == EstimatorConfig().epsilon_ms
    assert shared_sdr.estimator is not one.estimator
    # ...and each DomoConfig owns an independent copy.
    assert one.constraints.omega_ms == 1.0
    assert two.constraints.omega_ms == 3.0
    assert one.estimator.epsilon_ms == 500.0
    assert two.estimator.epsilon_ms == 2_000.0
    assert one.sdr.estimator.epsilon_ms == 500.0
    assert two.sdr.estimator.epsilon_ms == 2_000.0


def test_parallel_estimate_identical_to_serial(trace):
    packets = trace.received[:120]
    serial = DomoReconstructor(DomoConfig()).estimate(packets)
    parallel = DomoReconstructor(
        DomoConfig(parallel=True, max_workers=2)
    ).estimate(packets)
    assert parallel.stats["execution_mode"] == "parallel"
    assert serial.arrival_times == parallel.arrival_times
    assert serial.estimates == parallel.estimates


def test_estimate_stats_expose_solver_telemetry(estimate):
    stats = estimate.stats
    assert stats["windows"] == estimate.windows_used
    assert stats["execution_mode"] == "serial"
    assert stats["workers"] == 1
    assert stats["total_iterations"] > 0
    assert stats["window_solve_time_s"] > 0.0
    assert len(stats["window_telemetry"]) == estimate.windows_used
    for record in stats["window_telemetry"]:
        assert record["solver"] in ("linearized", "sdr", "fallback", "empty")
        assert record["solve_time_s"] >= 0.0
    assert sum(stats["status_counts"].values()) == estimate.windows_used


def test_failed_windows_counted_and_fallback_estimates_used(
    trace, monkeypatch
):
    from repro.optim.result import SolverError, SolverStatus

    def boom(system, config=None):
        raise SolverError(SolverStatus.ITERATION_LIMIT, "forced failure")

    monkeypatch.setattr(
        "repro.backends.domo_qp.estimate_arrival_times_info", boom
    )
    estimate = DomoReconstructor(DomoConfig()).estimate(trace.received[:80])
    assert estimate.windows_used >= 1
    assert estimate.stats["failed_windows"] == estimate.windows_used
    # Coverage is preserved: every packet still gets a full vector.
    for p in trace.received[:80]:
        assert len(estimate.arrival_times[p.packet_id]) == p.path_length


def test_estimate_covers_every_received_packet(trace, estimate):
    assert set(estimate.arrival_times) == {
        p.packet_id for p in trace.received
    }
    for p in trace.received:
        assert len(estimate.arrival_times[p.packet_id]) == p.path_length


def test_estimate_endpoints_match_knowns(trace, estimate):
    for p in trace.received:
        times = estimate.arrival_times[p.packet_id]
        assert times[0] == pytest.approx(p.generation_time_ms)
        assert times[-1] == pytest.approx(p.sink_arrival_ms)


def test_estimated_delays_accurate(trace, estimate):
    """Reconstruction error in the paper's ballpark (a few ms)."""
    errors = []
    for p in trace.received:
        truth = trace.truth_of(p.packet_id).node_delays()
        reconstructed = estimate.delays_of(p.packet_id)
        errors.extend(abs(a - b) for a, b in zip(reconstructed, truth))
    mean_error = float(np.mean(errors))
    assert mean_error < 6.0, f"mean error {mean_error:.2f} ms too large"
    assert float(np.mean(np.asarray(errors) < 4.0)) > 0.6


def test_estimate_windows_used(trace, estimate):
    assert estimate.windows_used >= 2
    assert estimate.stats["failed_windows"] == 0
    assert estimate.time_per_delay_ms > 0.0


def test_estimates_within_trivial_intervals(trace, estimate):
    for p in trace.received:
        times = estimate.arrival_times[p.packet_id]
        for hop in range(1, p.path_length - 1):
            lo = p.generation_time_ms + hop * 1.0
            hi = p.sink_arrival_ms - (p.path_length - 1 - hop) * 1.0
            # ADMM satisfies the box only up to its primal tolerance,
            # which scales with the window's absolute times (~0.1 ms).
            assert lo - 0.5 <= times[hop] <= hi + 0.5


def test_bounds_api(trace):
    domo = DomoReconstructor(DomoConfig(graph_cut_size=10_000))
    wanted = [p.packet_id for p in trace.received[:20]]
    bounds = domo.bounds(trace, packet_ids=wanted)
    assert bounds.bounds  # some interior hops exist among the first 20
    for key, result in bounds.bounds.items():
        assert key.packet_id in wanted
        truth = trace.truth_of(key.packet_id).arrival_times_ms[key.hop]
        assert result.lower - 1e-5 <= truth <= result.upper + 1e-5
    widths = [r.width for r in bounds.bounds.values()]
    assert float(np.mean(widths)) < 60.0


def test_delay_bounds_consistent(trace):
    domo = DomoReconstructor(DomoConfig())
    wanted = [p.packet_id for p in trace.received[:10]]
    bounds = domo.bounds(trace, packet_ids=wanted)
    for pid in wanted:
        packet = bounds.index.by_id[pid]
        db = bounds.delay_bounds(pid)
        assert len(db) == packet.path_length - 1
        truth = trace.truth_of(pid).node_delays()
        for (lo, hi), true_delay in zip(db, truth):
            # Bounds live on the sink's reconstructed timeline, which
            # differs from ground truth by the clock-drift error of the
            # e2e-accumulation time reconstruction (< 2 ms, see §III).
            assert lo - 2.0 <= true_delay <= hi + 2.0


def test_fifo_mode_none_still_works(trace):
    domo = DomoReconstructor(DomoConfig(fifo_mode="none"))
    estimate = domo.estimate(trace.received[:150])
    assert estimate.arrival_times


def test_sdr_mode_small_trace(trace):
    config = DomoConfig(fifo_mode="sdr", target_window_packets=15)
    domo = DomoReconstructor(config)
    estimate = domo.estimate(trace.received[:60])
    assert estimate.stats["sdr_windows"] > 0
    errors = []
    for p in trace.received[:60]:
        truth = trace.truth_of(p.packet_id).node_delays()
        errors.extend(
            abs(a - b)
            for a, b in zip(estimate.delays_of(p.packet_id), truth)
        )
    assert float(np.mean(errors)) < 10.0


def test_hardened_pipeline_byte_identical_on_clean_trace(trace):
    """The acceptance bar: validation on (default) vs off — same bytes."""
    from repro.core.validation import ValidationConfig

    packets = trace.received[:120]
    hardened = DomoReconstructor(DomoConfig()).estimate(packets)
    seed_like = DomoReconstructor(
        DomoConfig(validation=ValidationConfig(mode="off"))
    ).estimate(packets)
    assert hardened.estimates == seed_like.estimates  # bit-identical floats
    assert hardened.arrival_times == seed_like.arrival_times
    assert hardened.stats["quarantined_packets"] == 0
    assert hardened.stats["degraded_constraints"] == 0
    assert hardened.stats["validation"]["mode"] == "repair"


def test_dirty_trace_quarantine_and_degradation_visible(trace):
    """Corrupt packets are quarantined and Eq. (6) rows downgraded."""
    from dataclasses import replace as dc_replace

    packets = list(trace.received[:120])
    inverted = dc_replace(packets[5], sink_arrival_ms=-100.0)
    wrapped = dc_replace(packets[9], sum_of_delays_ms=-7)
    packets[5], packets[9] = inverted, wrapped
    estimate = DomoReconstructor(DomoConfig()).estimate(packets)
    stats = estimate.stats
    assert stats["quarantined_packets"] == 1
    assert stats["validation"]["distrusted_sums"] == 1
    assert stats["validation"]["reason_counts"] == {
        "impossible_timestamps": 1,
        "sum_out_of_range": 1,
    }
    # The quarantined packet is gone; the repaired one is reconstructed.
    assert inverted.packet_id not in estimate.arrival_times
    assert wrapped.packet_id in estimate.arrival_times
    # Known loss (the quarantine) arms the C*(p)-only degradation, so at
    # least the distrusted packet's sum rows were skipped.
    assert stats["degraded_constraints"] >= 1


def test_strict_validation_mode_raises_on_dirty_input(trace):
    from dataclasses import replace as dc_replace

    from repro.core.validation import TraceValidationError, ValidationConfig

    packets = list(trace.received[:40])
    packets[0] = dc_replace(packets[0], sink_arrival_ms=-100.0)
    domo = DomoReconstructor(
        DomoConfig(validation=ValidationConfig(mode="strict"))
    )
    with pytest.raises(TraceValidationError):
        domo.estimate(packets)


def test_bounds_stats_expose_validation(trace):
    domo = DomoReconstructor(DomoConfig())
    wanted = [p.packet_id for p in trace.received[:10]]
    bounds = domo.bounds(trace, packet_ids=wanted)
    assert bounds.stats["quarantined_packets"] == 0
    assert bounds.stats["degraded_constraints"] == 0
    assert bounds.stats["validation"]["mode"] == "repair"


def test_accepts_trace_bundle_and_plain_list(trace):
    domo = DomoReconstructor()
    few = trace.received[:30]
    from_bundle = domo.estimate(trace.restrict([p.packet_id for p in few]))
    from_list = domo.estimate(few)
    assert set(from_bundle.arrival_times) == set(from_list.arrival_times)
