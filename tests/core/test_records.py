"""Tests for TraceIndex classification and trivial intervals."""

import pytest

from repro.core.records import ArrivalKey, TraceIndex
from repro.sim.packet import PacketId

from tests.core.conftest import make_received


def _index(trace, omega=1.0):
    return TraceIndex(list(trace.received), omega_ms=omega)


def test_known_vs_unknown(chain_trace):
    index = _index(chain_trace)
    a = PacketId(3, 0)
    assert index.is_known(ArrivalKey(a, 0))
    assert index.is_known(ArrivalKey(a, 3))
    assert not index.is_known(ArrivalKey(a, 1))
    assert not index.is_known(ArrivalKey(a, 2))


def test_known_values(chain_trace):
    index = _index(chain_trace)
    a = PacketId(3, 0)
    assert index.known_value(ArrivalKey(a, 0)) == 0.0
    assert index.known_value(ArrivalKey(a, 3)) == 30.0
    with pytest.raises(ValueError):
        index.known_value(ArrivalKey(a, 1))


def test_unknown_keys_enumeration(chain_trace):
    index = _index(chain_trace)
    unknowns = list(index.unknown_keys())
    # a has 2 interior hops, b has 1, c and d have none.
    assert len(unknowns) == 3
    assert ArrivalKey(PacketId(3, 0), 1) in unknowns
    assert ArrivalKey(PacketId(3, 0), 2) in unknowns
    assert ArrivalKey(PacketId(2, 0), 1) in unknowns


def test_trivial_interval(chain_trace):
    index = _index(chain_trace, omega=1.0)
    key = ArrivalKey(PacketId(3, 0), 1)
    lo, hi = index.trivial_interval(key)
    assert lo == pytest.approx(1.0)  # t0 + 1 * omega
    assert hi == pytest.approx(28.0)  # t_sink - 2 * omega


def test_trivial_interval_collapses_for_knowns(chain_trace):
    index = _index(chain_trace)
    key = ArrivalKey(PacketId(3, 0), 0)
    assert index.trivial_interval(key) == (0.0, 0.0)


def test_trivial_interval_bad_hop(chain_trace):
    index = _index(chain_trace)
    with pytest.raises(ValueError):
        index.trivial_interval(ArrivalKey(PacketId(3, 0), 9))


def test_node_visits(chain_trace):
    index = _index(chain_trace)
    # node 1 forwards a and b and originates c and d; sink never listed.
    visits = index.node_visits[1]
    assert len(visits) == 4
    assert 0 not in index.node_visits


def test_local_packets_ordered_by_seqno(chain_trace):
    index = _index(chain_trace)
    own = index.local_packets_of(1)
    assert [p.packet_id.seqno for p in own] == [0, 1]


def test_previous_local_packet(chain_trace):
    index = _index(chain_trace)
    d = index.by_id[PacketId(1, 1)]
    c = index.previous_local_packet(d)
    assert c is not None and c.packet_id == PacketId(1, 0)
    first = index.by_id[PacketId(1, 0)]
    assert index.previous_local_packet(first) is None


def test_seqno_gap_detection():
    p0, t0 = make_received(5, 0, (5, 0), (0.0, 10.0))
    p2, t2 = make_received(5, 2, (5, 0), (100.0, 110.0))
    index = TraceIndex([p0, p2])
    assert index.has_seqno_gap(p0, p2)


def test_duplicate_ids_rejected(chain_trace):
    packets = list(chain_trace.received)
    with pytest.raises(ValueError):
        TraceIndex(packets + [packets[0]])


def test_negative_omega_rejected(chain_trace):
    with pytest.raises(ValueError):
        TraceIndex(list(chain_trace.received), omega_ms=-1.0)


def test_packets_sorted_by_generation(chain_trace):
    index = _index(chain_trace)
    t0s = [p.generation_time_ms for p in index.packets]
    assert t0s == sorted(t0s)
