"""Tests for the semidefinite relaxation path."""

import numpy as np
import pytest

from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.records import ArrivalKey, TraceIndex
from repro.core.sdr import SdrConfig, solve_window_sdr
from repro.core.estimator import estimate_arrival_times
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _system(bundle, **cfg):
    index = TraceIndex(list(bundle.received))
    return build_constraints(index, ConstraintConfig(**cfg))


def _unresolved_bundle():
    """Two packets with a genuinely unresolved FIFO pair at node 1."""
    x = make_received(2, 0, (2, 1, 4, 0), (0.0, 50.0, 70.0, 100.0))
    y = make_received(3, 0, (3, 1, 5, 0), (1.0, 52.0, 72.0, 101.0))
    return bundle_of(x, y)


def test_sdr_solves_unresolved_window():
    bundle = _unresolved_bundle()
    system = _system(bundle)
    assert system.fifo_unresolved
    estimates = solve_window_sdr(system, SdrConfig())
    assert set(estimates) == set(system.variables.keys())
    for key, value in estimates.items():
        lo, hi = system.intervals[key]
        assert lo - 1.0 <= value <= hi + 1.0


def test_sdr_estimates_close_to_plain_qp(busy_node_trace):
    """On a fully resolved window the SDR must agree with the plain QP."""
    system = _system(busy_node_trace)
    assert not system.fifo_unresolved
    qp = estimate_arrival_times(system)
    sdr = solve_window_sdr(system, SdrConfig())
    for key in qp:
        assert sdr[key] == pytest.approx(qp[key], abs=2.0)


def test_sdr_respects_unknown_cap():
    bundle = _unresolved_bundle()
    system = _system(bundle)
    with pytest.raises(ValueError):
        solve_window_sdr(system, SdrConfig(max_unknowns=1))


def test_sdr_empty_window():
    x = make_received(1, 0, (1, 0), (0.0, 10.0))
    system = _system(bundle_of(x))
    assert solve_window_sdr(system, SdrConfig()) == {}


def test_sdr_bounds_contain_truth_and_tighten():
    """SDP min/max bounds stay sound and within the interval bounds."""
    from repro.core.sdr import sdr_bounds

    bundle = _unresolved_bundle()
    system = _system(bundle)
    for key in system.variables:
        lower, upper = sdr_bounds(system, key, SdrConfig())
        lo_interval, hi_interval = system.intervals[key]
        assert lower >= lo_interval - 1e-6
        assert upper <= hi_interval + 1e-6
        truth = bundle.truth_of(key.packet_id).arrival_times_ms[key.hop]
        assert lower - 0.5 <= truth <= upper + 0.5


def test_sdr_bounds_known_key_is_point():
    from repro.core.sdr import sdr_bounds

    bundle = _unresolved_bundle()
    system = _system(bundle)
    key = ArrivalKey(PacketId(2, 0), 0)
    lower, upper = sdr_bounds(system, key, SdrConfig())
    assert lower == upper == 0.0


def test_randomized_rounding_not_worse_than_mean():
    """Rounding picks the best-scoring candidate, mean solution included."""
    import numpy as np

    from repro.core.sdr import (
        _true_objective,
        _violation,
        solve_window_sdr_randomized,
    )

    bundle = _unresolved_bundle()
    system = _system(bundle)
    rng = np.random.default_rng(1)
    rounded = solve_window_sdr_randomized(
        system, SdrConfig(), num_samples=20, rng=rng
    )
    mean = solve_window_sdr(system, SdrConfig())

    def score(estimates):
        x = np.array([estimates[key] for key in system.variables])
        return _true_objective(system, x) + 10.0 * _violation(system, x)

    assert score(rounded) <= score(mean) + 1e-6


def test_randomized_rounding_respects_order():
    """Repaired samples satisfy the per-packet order constraint."""
    import numpy as np

    from repro.core.sdr import solve_window_sdr_randomized

    bundle = _unresolved_bundle()
    system = _system(bundle)
    estimates = solve_window_sdr_randomized(
        system, SdrConfig(), num_samples=10, rng=np.random.default_rng(2)
    )
    for packet in system.index.packets:
        times = [packet.generation_time_ms]
        for hop in range(1, packet.path_length - 1):
            times.append(estimates[ArrivalKey(packet.packet_id, hop)])
        times.append(packet.sink_arrival_ms)
        for a, b in zip(times, times[1:]):
            assert b - a >= system.index.omega_ms - 1e-6


def test_randomized_rounding_empty_window():
    import numpy as np

    from repro.core.sdr import solve_window_sdr_randomized

    x = make_received(1, 0, (1, 0), (0.0, 10.0))
    system = _system(bundle_of(x))
    assert (
        solve_window_sdr_randomized(
            system, SdrConfig(), rng=np.random.default_rng(0)
        )
        == {}
    )


def test_sdr_lifted_fifo_consistency():
    """SDR estimates keep the FIFO ordering consistent across both hops.

    Whatever order the relaxation settles on at the shared node, the
    next-hop order must not contradict it grossly.
    """
    bundle = _unresolved_bundle()
    system = _system(bundle)
    estimates = solve_window_sdr(system, SdrConfig())
    t_x1 = estimates[ArrivalKey(PacketId(2, 0), 1)]
    t_y1 = estimates[ArrivalKey(PacketId(3, 0), 1)]
    t_x2 = estimates[ArrivalKey(PacketId(2, 0), 2)]
    t_y2 = estimates[ArrivalKey(PacketId(3, 0), 2)]
    product = (t_x1 - t_y1) * (t_x2 - t_y2)
    assert product > -25.0  # no strong order contradiction
