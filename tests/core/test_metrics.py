"""Tests for the accuracy metrics of §VI.A."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    ErrorStats,
    average_displacement,
    bound_width_stats,
    displacement_per_node,
    estimation_error_stats,
)


def test_paper_displacement_example():
    """The worked example in §VI.A: (1+1+2+0+2)/5 = 1.2."""
    truth = ["a", "b", "c", "d", "e"]
    reconstructed = ["b", "a", "e", "d", "c"]
    assert average_displacement(reconstructed, truth) == pytest.approx(1.2)


def test_displacement_zero_for_identical():
    seq = list(range(10))
    assert average_displacement(seq, seq) == 0.0


def test_displacement_maximal_for_reversal():
    truth = [0, 1, 2, 3]
    assert average_displacement(truth[::-1], truth) == pytest.approx(2.0)


def test_displacement_validates_inputs():
    with pytest.raises(ValueError):
        average_displacement([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        average_displacement([1, 1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        average_displacement([1, 2, 4], [1, 2, 3])


@settings(max_examples=50, deadline=None)
@given(perm_seed=st.integers(0, 10_000), n=st.integers(1, 30))
def test_displacement_symmetry(perm_seed, n):
    """Displacement(a, b) == Displacement(b, a) for permutations."""
    rng = np.random.default_rng(perm_seed)
    truth = list(range(n))
    other = list(rng.permutation(n))
    assert average_displacement(other, truth) == pytest.approx(
        average_displacement(truth, other)
    )


def test_error_stats_summaries():
    stats = estimation_error_stats([-1.0, 2.0, 3.0, -4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.median == pytest.approx(2.5)
    assert stats.fraction_below(4.0) == pytest.approx(0.75)
    assert stats.percentile(100) == pytest.approx(4.0)


def test_error_stats_empty():
    stats = estimation_error_stats([])
    assert np.isnan(stats.mean)
    assert stats.cdf() == []


def test_cdf_is_monotone():
    rng = np.random.default_rng(0)
    stats = bound_width_stats(rng.exponential(5.0, size=500))
    cdf = stats.cdf(points=20)
    values = [v for v, _ in cdf]
    fractions = [f for _, f in cdf]
    assert values == sorted(values)
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_cdf_small_input_uses_all_points():
    stats = bound_width_stats([1.0, 2.0, 3.0])
    assert len(stats.cdf(points=50)) == 3


def test_displacement_per_node_pools():
    truth = {1: ["a", "b", "c"], 2: ["x", "y"], 3: ["solo"]}
    reconstructed = {1: ["b", "a", "c"], 2: ["x", "y"], 3: ["solo"]}
    stats = displacement_per_node(reconstructed, truth)
    # node 3 skipped (fewer than 2 events); nodes 1, 2 pooled.
    assert stats.count == 2
    assert stats.mean == pytest.approx((2.0 / 3.0 + 0.0) / 2.0)
