"""Tests for the Eq. (8) minimum-delay-variance estimator."""

import numpy as np
import pytest

from repro.core.constraints import ConstraintConfig, build_constraints
from repro.core.estimator import (
    EstimatorConfig,
    enumerate_pairs,
    estimate_arrival_times,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _system(bundle, **cfg):
    index = TraceIndex(list(bundle.received))
    return build_constraints(index, ConstraintConfig(**cfg))


def test_pair_enumeration_respects_epsilon(busy_node_trace):
    system = _system(busy_node_trace)
    near = enumerate_pairs(system, EstimatorConfig(epsilon_ms=10.0))
    far = enumerate_pairs(system, EstimatorConfig(epsilon_ms=1000.0))
    assert len(near) < len(far)
    # With eps=10 only (x, y) at nodes 1 qualifies (t0 gap 5 < 10).
    assert all(
        abs(
            system.index.by_id[a.packet_id].generation_time_ms
            - system.index.by_id[b.packet_id].generation_time_ms
        )
        < 10.0
        for _, a, _, b, _ in near
    )


def test_pair_cap(busy_node_trace):
    system = _system(busy_node_trace)
    capped = enumerate_pairs(
        system, EstimatorConfig(epsilon_ms=1000.0, max_pairs_per_visit=1)
    )
    uncapped = enumerate_pairs(
        system, EstimatorConfig(epsilon_ms=1000.0, max_pairs_per_visit=100)
    )
    assert len(capped) <= len(uncapped)


def test_estimates_satisfy_intervals(busy_node_trace):
    system = _system(busy_node_trace)
    estimates = estimate_arrival_times(system)
    for key, value in estimates.items():
        lo, hi = system.intervals[key]
        assert lo - 1e-3 <= value <= hi + 1e-3


def test_estimator_uses_delay_similarity():
    """Two same-window packets through one node get similar delays.

    Packet x: (2,1,0) with true times (0, 10, 20) — both hops unknown? No:
    only t(x@1) unknown. Packet y: (3,1,0) generated 5ms later. Without
    any other information, minimizing delay variance at nodes 2, 3 and 1
    should place both node-1 delays close to each other.
    """
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 20.0))
    y = make_received(3, 0, (3, 1, 0), (5.0, 15.0, 25.0))
    system = _system(bundle_of(x, y))
    estimates = estimate_arrival_times(system)
    d1_x = 20.0 - estimates[ArrivalKey(PacketId(2, 0), 1)]
    d1_y = 25.0 - estimates[ArrivalKey(PacketId(3, 0), 1)]
    assert d1_x == pytest.approx(d1_y, abs=1.0)


def test_estimate_exact_with_enough_constraints():
    """A sum-of-delays equality pins the unknown exactly.

    Source 5 sends q then p; S(p) = D_5(p) = 12 and no other packets exist,
    so Eq. (7) gives t(p@1) - t0(p) <= 12 + slack and Eq. (6) gives
    >= 12 - slack: the unknown is pinned within the slack.
    """
    q = make_received(5, 0, (5, 4, 0), (0.0, 10.0, 20.0), sum_of_delays=10)
    p = make_received(5, 1, (5, 4, 0), (100.0, 112.0, 125.0), sum_of_delays=12)
    system = _system(bundle_of(q, p), sum_slack_ms=0.5)
    estimates = estimate_arrival_times(system)
    assert estimates[ArrivalKey(PacketId(5, 1), 1)] == pytest.approx(
        112.0, abs=1.0
    )


def test_empty_system():
    x = make_received(1, 0, (1, 0), (0.0, 10.0))
    system = _system(bundle_of(x))
    assert estimate_arrival_times(system) == {}


def test_estimates_cover_all_unknowns(busy_node_trace):
    system = _system(busy_node_trace)
    estimates = estimate_arrival_times(system)
    assert set(estimates) == set(system.variables.keys())


def test_pairing_horizon_boundary_is_excluded():
    """A generation-time gap of exactly epsilon does NOT pair (the scan
    breaks on ``>= epsilon_ms``), while any smaller gap does."""
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 22.0))
    y = make_received(3, 0, (3, 1, 0), (10.0, 24.0, 30.0))
    system = _system(bundle_of(x, y))
    assert enumerate_pairs(system, EstimatorConfig(epsilon_ms=10.0)) == []
    inside = enumerate_pairs(system, EstimatorConfig(epsilon_ms=10.5))
    assert len(inside) == 1
    assert inside[0][0] == 1  # node 1 is the only shared forwarder


def test_identical_generation_times_pair_under_any_epsilon():
    """Zero gap sits strictly below every legal (positive) epsilon."""
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 22.0))
    y = make_received(3, 0, (3, 1, 0), (0.0, 12.0, 25.0))
    system = _system(bundle_of(x, y))
    pairs = enumerate_pairs(system, EstimatorConfig(epsilon_ms=1e-9))
    assert len(pairs) == 1
    node, a, _, b, _ = pairs[0]
    assert node == 1
    assert a.packet_id != b.packet_id


def test_pair_cap_zero_disables_pairing_but_not_the_solve(busy_node_trace):
    system = _system(busy_node_trace)
    config = EstimatorConfig(max_pairs_per_visit=0)
    assert enumerate_pairs(system, config) == []
    # The solve degrades to the anchor objective and still covers
    # every unknown inside its interval.
    estimates = estimate_arrival_times(system, config)
    assert set(estimates) == set(system.variables.keys())
    for key, value in estimates.items():
        lo, hi = system.intervals[key]
        assert lo - 1e-3 <= value <= hi + 1e-3


def test_self_pairs_excluded_on_multi_hop_revisit():
    """A packet crossing the same node twice must not pair with itself
    there — only with other packets' visits."""
    p = make_received(2, 0, (2, 1, 3, 1, 0), (0.0, 10.0, 20.0, 30.0, 40.0))
    q = make_received(4, 0, (4, 1, 0), (2.0, 12.0, 24.0))
    system = _system(bundle_of(p, q))
    pairs = enumerate_pairs(system, EstimatorConfig(epsilon_ms=1000.0))
    assert pairs
    assert all(a.packet_id != b.packet_id for _, a, _, b, _ in pairs)
    # Each of p's two node-1 visits pairs with q's single visit there.
    at_shared_node = [pair for pair in pairs if pair[0] == 1]
    assert len(at_shared_node) == 2


def test_estimator_config_rejects_nonpositive_epsilon():
    with pytest.raises(ValueError, match="epsilon_ms must be > 0"):
        EstimatorConfig(epsilon_ms=0.0)
    with pytest.raises(ValueError, match="epsilon_ms must be > 0"):
        EstimatorConfig(epsilon_ms=-5.0)


def test_estimator_config_rejects_negative_pair_cap():
    with pytest.raises(ValueError, match="max_pairs_per_visit must be >= 0"):
        EstimatorConfig(max_pairs_per_visit=-1)
    # Zero is legal: it disables pairing, not the estimator.
    assert EstimatorConfig(max_pairs_per_visit=0).max_pairs_per_visit == 0


def test_anchor_centers_unconstrained_packet():
    """A lone two-hop packet with no peers sits near its interval midpoint."""
    x = make_received(2, 0, (2, 1, 0), (0.0, 30.0, 100.0))
    system = _system(bundle_of(x))
    estimates = estimate_arrival_times(system)
    key = ArrivalKey(PacketId(2, 0), 1)
    lo, hi = system.intervals[key]
    assert estimates[key] == pytest.approx(0.5 * (lo + hi), abs=2.0)
