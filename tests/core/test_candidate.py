"""Tests for candidate set computation (C(p), C*(p))."""

import pytest

from repro.core.candidate import CandidateSets, compute_candidate_sets
from repro.core.records import TraceIndex
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _sets_for(bundle, source, seqno):
    index = TraceIndex(list(bundle.received))
    packet = index.by_id[PacketId(source, seqno)]
    return compute_candidate_sets(index, packet)


def test_first_local_packet_has_no_sets(chain_trace):
    assert _sets_for(chain_trace, 1, 0) is None


def test_guaranteed_subset_of_possible():
    # forwarded packet fully inside [t0(q), t0(p)]: in C and C*.
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    x = make_received(2, 0, (2, 1, 0), (20.0, 30.0, 40.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    assert sets is not None
    assert [c.packet_id for c, _ in sets.possible] == [PacketId(2, 0)]
    assert [c.packet_id for c, _ in sets.guaranteed] == [PacketId(2, 0)]
    assert sets.anchored


def test_straggler_is_possible_but_not_guaranteed():
    # x generated before q but delivered between q and p: may or may not
    # have departed the source before q did -> C only.
    q = make_received(1, 0, (1, 0), (50.0, 60.0))
    x = make_received(2, 0, (2, 1, 0), (10.0, 70.0, 80.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    assert [c.packet_id for c, _ in sets.possible] == [PacketId(2, 0)]
    assert sets.guaranteed == []


def test_late_delivery_excluded_from_guaranteed():
    # x delivered after t0(p): its delay may fall outside S(p)'s window.
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    x = make_received(2, 0, (2, 1, 0), (20.0, 90.0, 120.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    assert [c.packet_id for c, _ in sets.possible] == [PacketId(2, 0)]
    assert sets.guaranteed == []


def test_packet_generated_after_p_excluded():
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    x = make_received(2, 0, (2, 1, 0), (150.0, 160.0, 170.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    assert sets.possible == []


def test_packet_delivered_before_q_excluded():
    # x came and went before q even existed.
    x = make_received(2, 0, (2, 1, 0), (0.0, 5.0, 10.0))
    q = make_received(1, 0, (1, 0), (50.0, 60.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(x, q, p), 1, 1)
    assert sets.possible == []


def test_q_and_p_excluded_from_sets():
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, p), 1, 1)
    ids = {c.packet_id for c, _ in sets.possible}
    assert PacketId(1, 0) not in ids
    assert PacketId(1, 1) not in ids


def test_packets_not_through_source_excluded():
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    x = make_received(3, 0, (3, 2, 0), (20.0, 30.0, 40.0))  # avoids node 1
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    assert sets.possible == []


def test_seqno_gap_marks_unanchored():
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    p = make_received(1, 2, (1, 0), (100.0, 110.0))  # seqno 1 lost
    sets = _sets_for(bundle_of(q, p), 1, 2)
    assert sets is not None
    assert not sets.anchored


def test_candidate_hop_is_source_position():
    q = make_received(1, 0, (1, 0), (0.0, 10.0))
    x = make_received(3, 0, (3, 1, 0), (20.0, 30.0, 40.0))
    p = make_received(1, 1, (1, 0), (100.0, 110.0))
    sets = _sets_for(bundle_of(q, x, p), 1, 1)
    (candidate, hop), = sets.possible
    assert candidate.packet_id == PacketId(3, 0)
    assert hop == 1  # node 1 is position 1 of x's path


def test_subset_invariant_enforced():
    q, tq = make_received(1, 0, (1, 0), (0.0, 10.0))
    x, tx = make_received(2, 0, (2, 1, 0), (20.0, 30.0, 40.0))
    p, tp = make_received(1, 1, (1, 0), (100.0, 110.0))
    with pytest.raises(ValueError):
        CandidateSets(
            packet=p, previous_local=q, possible=[], guaranteed=[(x, 1)]
        )
