"""Shared fixtures: hand-built traces with exactly known semantics."""

import pytest

from repro.sim.packet import PacketId
from repro.sim.trace import GroundTruthPacket, ReceivedPacket, TraceBundle


def make_received(source, seqno, path, times, sum_of_delays=0):
    """A ReceivedPacket plus its GroundTruthPacket from true arrival times."""
    pid = PacketId(source, seqno)
    received = ReceivedPacket(
        packet_id=pid,
        path=tuple(path),
        generation_time_ms=float(times[0]),
        sink_arrival_ms=float(times[-1]),
        sum_of_delays_ms=int(sum_of_delays),
    )
    truth = GroundTruthPacket(
        packet_id=pid,
        path=tuple(path),
        arrival_times_ms=tuple(float(t) for t in times),
    )
    return received, truth


def bundle_of(*pairs):
    received = [r for r, _ in pairs]
    truth = {t.packet_id: t for _, t in pairs}
    return TraceBundle(received=received, ground_truth=truth)


@pytest.fixture
def chain_trace():
    """Three packets over the chain 3 -> 2 -> 1 -> 0 plus locals of node 1.

    Node delays are 10 ms everywhere; packets are spaced 100 ms apart.
    Packet a: source 3, path (3,2,1,0), t = (0, 10, 20, 30).
    Packet b: source 2, path (2,1,0),   t = (100, 110, 120).
    Packet c: source 1, path (1,0),     t = (200, 210).
    Packet d: source 1, path (1,0),     t = (300, 310), S(d) covers a, b, c.
    """
    a = make_received(3, 0, (3, 2, 1, 0), (0.0, 10.0, 20.0, 30.0))
    b = make_received(2, 0, (2, 1, 0), (100.0, 110.0, 120.0))
    c = make_received(1, 0, (1, 0), (200.0, 210.0), sum_of_delays=10)
    # S(d) = D_1(d) + D_1(a) + D_1(b) = 10 + 10 + 10 (c's delay flushed
    # into S(c); a and b departed node 1 between c and d).
    # a departed node 1 at t=30 > dep(c)=210? No - a departed *before* c,
    # so S(d) actually covers only b? Keep the arithmetic honest:
    # dep_1(c)=210, dep_1(d)=310; only packets departing node 1 in
    # (210, 310] count - there are none, so S(d) = D_1(d) = 10.
    d = make_received(1, 1, (1, 0), (300.0, 310.0), sum_of_delays=10)
    return bundle_of(a, b, c, d)


@pytest.fixture
def busy_node_trace():
    """Two sources funneling through node 1 close together in time.

    Packet x: source 2, path (2,1,0), t = (0, 10, 22).
    Packet y: source 3, path (3,1,0), t = (5, 14, 30).
    Packet z: source 2, path (2,1,0), t = (40, 52, 61).
    FIFO at node 1: x (arr 10) before y (arr 14) before z (arr 52).
    """
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 22.0), sum_of_delays=10)
    y = make_received(3, 0, (3, 1, 0), (5.0, 14.0, 30.0), sum_of_delays=9)
    # S(z) = D_2(z) = 52 - 40 = 12 (nothing else departed node 2 between).
    z = make_received(2, 1, (2, 1, 0), (40.0, 52.0, 61.0), sum_of_delays=12)
    return bundle_of(x, y, z)
