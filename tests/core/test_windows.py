"""Tests for the improved overlapping time-window planner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windows import iter_window_grid, plan_windows


def test_single_window_when_span_covers_everything():
    windows = plan_windows([0.0, 10.0, 20.0], window_span_ms=1000.0)
    assert len(windows) == 1
    w = windows[0]
    assert w.keep_start_ms == -np.inf
    assert w.keep_end_ms == np.inf


def test_keep_regions_tile_the_timeline():
    t0s = list(np.linspace(0.0, 10_000.0, 200))
    windows = plan_windows(t0s, window_span_ms=1_000.0, effective_ratio=0.5)
    for t in t0s:
        keepers = [w for w in windows if w.keeps(t)]
        assert len(keepers) == 1, f"t={t} kept by {len(keepers)} windows"
        # The keeping window must also contain the packet for solving.
        assert keepers[0].contains(t)


def test_windows_overlap():
    t0s = list(np.linspace(0.0, 10_000.0, 100))
    windows = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=0.5)
    assert len(windows) >= 2
    for a, b in zip(windows, windows[1:]):
        assert b.start_ms < a.end_ms, "consecutive windows must overlap"


def test_smaller_ratio_means_more_windows():
    t0s = list(np.linspace(0.0, 20_000.0, 100))
    few = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=0.9)
    many = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=0.3)
    assert len(many) > len(few)


def test_ratio_one_means_disjoint_windows():
    t0s = list(np.linspace(0.0, 9_999.0, 50))
    windows = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=1.0)
    for a, b in zip(windows, windows[1:]):
        assert b.start_ms == pytest.approx(a.end_ms)


def test_empty_input():
    assert plan_windows([], 100.0) == []


def test_single_packet_gets_one_all_covering_window():
    windows = plan_windows([42.0], window_span_ms=100.0, effective_ratio=0.5)
    assert len(windows) == 1
    w = windows[0]
    assert w.contains(42.0) and w.keeps(42.0)
    assert w.keep_start_ms == -np.inf
    assert w.keep_end_ms == np.inf


def test_all_identical_generation_times():
    """A zero-duration trace still plans exactly one covering window."""
    windows = plan_windows([7.0] * 25, window_span_ms=50.0,
                           effective_ratio=0.3)
    assert len(windows) == 1
    assert windows[0].contains(7.0) and windows[0].keeps(7.0)


def test_ratio_one_keeps_each_packet_exactly_once():
    """With ratio 1.0 (no overlap) keep == solve; tiling still holds."""
    t0s = [0.0, 500.0, 1_000.0, 1_999.999, 2_000.0, 3_500.0]
    windows = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=1.0)
    for t in t0s:
        keepers = [w for w in windows if w.keeps(t)]
        assert len(keepers) == 1
        assert keepers[0].contains(t)


def test_exact_keep_boundary_kept_by_exactly_one_window():
    """t0 exactly on a keep boundary goes to the later window, only it.

    Span 2000 / ratio 0.5 puts keep boundaries at multiples of 1000
    (half-open [keep_start, keep_end) regions).
    """
    t0s = [0.0, 1_000.0, 2_000.0, 3_000.0, 4_000.0]
    windows = plan_windows(t0s, window_span_ms=2_000.0, effective_ratio=0.5)
    assert len(windows) >= 3
    for t in t0s:
        keepers = [i for i, w in enumerate(windows) if w.keeps(t)]
        assert len(keepers) == 1, f"t={t} kept by windows {keepers}"
    # The boundary packet belongs to the window whose keep region starts
    # there, not the one ending there.
    inner = [w for w in windows if w.keep_start_ms == 2_000.0]
    assert len(inner) == 1 and inner[0].keeps(2_000.0)


def test_grid_matches_plan_windows_boundaries():
    """The streaming grid and the batch planner share bit-identical
    window boundaries (same repeated-addition arithmetic)."""
    t0s = list(np.linspace(3.7, 25_013.9, 157))
    span, ratio = 1_234.5, 0.4
    planned = plan_windows(t0s, window_span_ms=span, effective_ratio=ratio)
    grid = iter_window_grid(min(t0s), span, ratio)
    for planned_window in planned:
        nominal = next(grid)
        assert planned_window.start_ms == nominal.start_ms
        assert planned_window.end_ms == nominal.end_ms


def test_invalid_parameters():
    with pytest.raises(ValueError):
        plan_windows([0.0], window_span_ms=100.0, effective_ratio=0.0)
    with pytest.raises(ValueError):
        plan_windows([0.0], window_span_ms=100.0, effective_ratio=1.5)
    with pytest.raises(ValueError):
        plan_windows([0.0], window_span_ms=0.0)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 60),
    span=st.floats(10.0, 5_000.0),
    ratio=st.floats(0.1, 1.0),
    seed=st.integers(0, 1000),
)
def test_every_packet_kept_exactly_once(n, span, ratio, seed):
    """Property: keep regions partition any generation-time set."""
    rng = np.random.default_rng(seed)
    t0s = sorted(rng.uniform(0.0, 30_000.0, size=n).tolist())
    windows = plan_windows(t0s, window_span_ms=span, effective_ratio=ratio)
    for t in t0s:
        keepers = [w for w in windows if w.keeps(t)]
        assert len(keepers) == 1
        assert keepers[0].contains(t)
