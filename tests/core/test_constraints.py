"""Tests for constraint construction: order, FIFO, sum-of-delays.

The central property — checked both on hand-built fixtures and on real
simulator traces — is **soundness**: the true arrival times always satisfy
every emitted row.
"""

import numpy as np
import pytest

from repro.core.constraints import (
    ConstraintConfig,
    build_constraints,
)
from repro.core.records import ArrivalKey, TraceIndex
from repro.sim import NetworkConfig, simulate_network
from repro.sim.packet import PacketId

from tests.core.conftest import bundle_of, make_received


def _system(bundle, **cfg):
    index = TraceIndex(list(bundle.received))
    return build_constraints(index, ConstraintConfig(**cfg))


def _truth_vector(system, bundle):
    x = np.zeros(system.num_unknowns)
    for i, key in enumerate(system.variables):
        x[i] = bundle.truth_of(key.packet_id).arrival_times_ms[key.hop]
    return x


def test_order_rows_emitted(busy_node_trace):
    system = _system(busy_node_trace)
    order_rows = system.builder.rows_by_tag("order")
    # x and z have one unknown each: two order rows survive folding per
    # packet (t1-t0 >= w and t2-t1 >= w), y likewise.
    assert len(order_rows) == 6


def test_truth_satisfies_all_rows_hand_built(busy_node_trace):
    system = _system(busy_node_trace)
    x = _truth_vector(system, busy_node_trace)
    assert system.builder.max_violation(x) <= 1e-9


def test_fifo_pairs_resolved_on_busy_node(busy_node_trace):
    system = _system(busy_node_trace)
    # x and z from the same source are unambiguous; x/y overlap at node 1
    # but their sink arrivals resolve them via the next-hop intervals.
    assert len(system.fifo_resolved) >= 1


def test_fifo_direction_matches_truth(busy_node_trace):
    system = _system(busy_node_trace)
    for pair in system.fifo_resolved:
        t_x = busy_node_trace.truth_of(pair.x_at.packet_id).arrival_times_ms[
            pair.x_at.hop
        ]
        t_y = busy_node_trace.truth_of(pair.y_at.packet_id).arrival_times_ms[
            pair.y_at.hop
        ]
        expected = 1 if t_x < t_y else -1
        assert pair.direction == expected, f"pair at node {pair.node}"


def test_unresolvable_pair_goes_to_sdr_list():
    # Two packets through node 1 whose arrival intervals overlap at the
    # shared hop AND whose next hops are interior (unknown) too: no sound
    # resolution exists.
    x = make_received(2, 0, (2, 1, 4, 0), (0.0, 50.0, 70.0, 100.0))
    y = make_received(3, 0, (3, 1, 5, 0), (1.0, 52.0, 72.0, 101.0))
    system = _system(bundle_of(x, y))
    assert len(system.fifo_unresolved) == 1
    assert len(system.fifo_resolved) == 0


def test_fifo_horizon_limits_pairs():
    x = make_received(2, 0, (2, 1, 0), (0.0, 10.0, 20.0))
    y = make_received(3, 0, (3, 1, 0), (50_000.0, 50_010.0, 50_020.0))
    system = _system(bundle_of(x, y), fifo_horizon_ms=1000.0)
    assert len(system.fifo_resolved) + len(system.fifo_unresolved) == 0


def test_sum_lower_row_accounted(chain_trace):
    system = _system(chain_trace)
    # Packet d anchors a sum row, but d is single-hop so every term is
    # known: the row folds to a (consistent) constant and is not emitted.
    assert system.stats["sum_lower_rows"] == 1
    assert len(system.builder.rows_by_tag("sum_lo")) == 0
    assert system.stats.get("inconsistent_known_rows", 0) == 0


def test_sum_lower_row_with_unknown_terms():
    # Source 5 is two hops from the sink, so D_5(p) involves the unknown
    # t(p@1): the Eq. (7) row survives folding.
    q = make_received(5, 0, (5, 4, 0), (0.0, 10.0, 20.0), sum_of_delays=10)
    p = make_received(5, 1, (5, 4, 0), (100.0, 112.0, 125.0), sum_of_delays=12)
    system = _system(bundle_of(q, p))
    assert len(system.builder.rows_by_tag("sum_lo")) == 1


def test_sum_rows_skipped_on_seqno_gap():
    q = make_received(1, 0, (1, 0), (0.0, 10.0), sum_of_delays=10)
    p = make_received(1, 2, (1, 0), (100.0, 110.0), sum_of_delays=10)
    system = _system(bundle_of(q, p))
    assert len(system.builder.rows_by_tag("sum_lo")) == 0
    assert len(system.builder.rows_by_tag("sum_hi")) == 0


def test_upper_sum_can_be_disabled(chain_trace):
    system = _system(chain_trace, use_upper_sum=False)
    assert len(system.builder.rows_by_tag("sum_hi")) == 0


def test_known_only_rows_checked_not_emitted():
    # Single-hop packets: everything known; sum rows fold to constants.
    q = make_received(1, 0, (1, 0), (0.0, 10.0), sum_of_delays=10)
    p = make_received(1, 1, (1, 0), (100.0, 110.0), sum_of_delays=10)
    system = _system(bundle_of(q, p))
    assert system.num_unknowns == 0
    assert len(system.builder) == 0


def test_inconsistent_known_row_counted():
    # S(p) = 3 but D(p) = 10 with everything known: impossible row.
    q = make_received(1, 0, (1, 0), (0.0, 10.0), sum_of_delays=10)
    p = make_received(1, 1, (1, 0), (100.0, 110.0), sum_of_delays=3)
    system = _system(bundle_of(q, p), sum_slack_ms=0.0)
    assert system.stats.get("inconsistent_known_rows", 0) >= 1


def test_interval_tightening_recorded_in_system(busy_node_trace):
    system = _system(busy_node_trace)
    index = TraceIndex(list(busy_node_trace.received))
    for key, (lo, hi) in system.intervals.items():
        t_lo, t_hi = index.trivial_interval(key)
        assert lo >= t_lo - 1e-9
        assert hi <= t_hi + 1e-9


@pytest.fixture(scope="module")
def sim_trace():
    return simulate_network(
        NetworkConfig(
            num_nodes=25,
            placement="grid",
            duration_ms=30_000.0,
            packet_period_ms=3_000.0,
            seed=11,
        )
    )


def test_truth_satisfies_all_rows_simulated(sim_trace):
    """Soundness on a real trace: ground truth inside the feasible set."""
    index = TraceIndex(list(sim_trace.received))
    system = build_constraints(index, ConstraintConfig())
    x = _truth_vector(system, sim_trace)
    assert system.builder.max_violation(x) <= 1e-6


def test_intervals_contain_truth_simulated(sim_trace):
    index = TraceIndex(list(sim_trace.received))
    system = build_constraints(index, ConstraintConfig())
    for key in system.variables:
        lo, hi = system.intervals[key]
        t = sim_trace.truth_of(key.packet_id).arrival_times_ms[key.hop]
        assert lo - 1e-6 <= t <= hi + 1e-6


def test_resolution_statistics_populated(sim_trace):
    index = TraceIndex(list(sim_trace.received))
    system = build_constraints(index, ConstraintConfig())
    assert system.stats["unknowns"] == system.num_unknowns
    assert system.stats["fifo_resolved"] > 0
    assert system.stats["rows"] == len(system.builder)
