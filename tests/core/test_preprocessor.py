"""Tests for trace preprocessing (window span choice, window systems)."""

import numpy as np
import pytest

from repro.core.constraints import ConstraintConfig
from repro.core.preprocessor import (
    build_window_systems,
    choose_window_span,
)
from repro.sim.packet import PacketId

from tests.core.conftest import make_received


def _stream(num_sources=4, packets_per_source=10, period=1000.0):
    """Synthetic periodic single-hop traffic from several sources."""
    received = []
    for source in range(2, 2 + num_sources):
        for seqno in range(packets_per_source):
            t0 = seqno * period + source * 17.0
            packet, _ = make_received(
                source, seqno, (source, 0), (t0, t0 + 10.0)
            )
            received.append(packet)
    return received


def test_span_targets_packet_count():
    packets = _stream(num_sources=4, packets_per_source=25, period=100.0)
    span = choose_window_span(packets, target_window_packets=20)
    duration = max(p.generation_time_ms for p in packets) - min(
        p.generation_time_ms for p in packets
    )
    density = len(packets) / duration
    # 20 packets at this density need span 20/density, but the span is
    # also floored at 3 generation periods (300 ms here).
    assert span >= 20 / density - 1e-9
    assert span >= 3 * 100.0 - 1e-9


def test_span_covers_generation_periods():
    """The span must include several per-source periods (sum anchors)."""
    packets = _stream(num_sources=40, packets_per_source=10, period=5000.0)
    span = choose_window_span(packets, target_window_packets=10)
    assert span >= 3 * 5000.0 * 0.99


def test_span_handles_tiny_traces():
    packets = _stream(num_sources=1, packets_per_source=2)
    span = choose_window_span(packets, target_window_packets=100)
    assert span > 0
    assert choose_window_span([], 10) > 0


def test_window_systems_partition_kept_ids():
    packets = _stream(num_sources=4, packets_per_source=20, period=500.0)
    systems = build_window_systems(
        packets,
        ConstraintConfig(),
        window_span_ms=2_000.0,
        effective_ratio=0.5,
    )
    assert len(systems) >= 2
    kept_total: list[PacketId] = []
    for ws in systems:
        kept_total.extend(ws.kept_ids)
    # Every packet's estimate is kept exactly once.
    assert sorted(kept_total, key=lambda p: (p.source, p.seqno)) == sorted(
        (p.packet_id for p in packets), key=lambda p: (p.source, p.seqno)
    )


def test_window_members_contain_kept_ids():
    packets = _stream(num_sources=3, packets_per_source=15, period=700.0)
    systems = build_window_systems(
        packets, ConstraintConfig(), window_span_ms=3_000.0
    )
    for ws in systems:
        member_ids = {p.packet_id for p in ws.index.packets}
        assert ws.kept_ids <= member_ids


def test_keep_boundary_packet_kept_exactly_once():
    """A t0 exactly on a keep-region boundary belongs to one window only.

    With span 2000 and ratio 0.5 the keep regions tile at multiples of
    1000 ms; half-open [keep_start, keep_end) intervals mean a packet
    generated exactly at a boundary is kept by the *later* window and
    only that one.
    """
    received = []
    for seqno, t0 in enumerate([0.0, 500.0, 1000.0, 1500.0, 2000.0,
                                2500.0, 3000.0, 3500.0, 4000.0]):
        packet, _ = make_received(2, seqno, (2, 0), (t0, t0 + 10.0))
        received.append(packet)
    systems = build_window_systems(
        received,
        ConstraintConfig(),
        window_span_ms=2_000.0,
        effective_ratio=0.5,
    )
    assert len(systems) >= 2
    keep_counts: dict[PacketId, int] = {}
    boundary_pids = set()
    for p in received:
        if p.generation_time_ms % 1_000.0 == 0.0:
            boundary_pids.add(p.packet_id)
    for ws in systems:
        for pid in ws.kept_ids:
            keep_counts[pid] = keep_counts.get(pid, 0) + 1
    assert boundary_pids  # the scenario does exercise exact boundaries
    for p in received:
        assert keep_counts.get(p.packet_id, 0) == 1, (
            f"packet at t0={p.generation_time_ms} kept "
            f"{keep_counts.get(p.packet_id, 0)} times"
        )


def test_unsorted_input_builds_identical_systems():
    """The bisect sweep is input-order independent (it sorts first)."""
    packets = _stream(num_sources=4, packets_per_source=15, period=600.0)
    rng = np.random.default_rng(5)
    shuffled = list(packets)
    rng.shuffle(shuffled)
    assert shuffled != packets  # the scenario does exercise reordering
    reference = build_window_systems(
        packets, ConstraintConfig(), window_span_ms=2_000.0
    )
    permuted = build_window_systems(
        shuffled, ConstraintConfig(), window_span_ms=2_000.0
    )
    assert len(reference) == len(permuted)
    for left, right in zip(reference, permuted):
        assert left.window == right.window
        assert left.kept_ids == right.kept_ids
        assert [p.packet_id for p in left.index.packets] == [
            p.packet_id for p in right.index.packets
        ]
        assert left.system.intervals == right.system.intervals
        assert len(left.system.builder) == len(right.system.builder)


def test_empty_input():
    assert build_window_systems([], ConstraintConfig(), 1000.0) == []


def test_single_window_when_span_exceeds_duration():
    packets = _stream(num_sources=2, packets_per_source=3, period=100.0)
    systems = build_window_systems(
        packets, ConstraintConfig(), window_span_ms=1e9
    )
    assert len(systems) == 1
    assert len(systems[0].kept_ids) == len(packets)
