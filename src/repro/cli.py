"""Command-line entry point: ``domo`` — simulate, reconstruct, compare.

Subcommands::

    domo simulate  --nodes 100 --duration 120 --seed 1
        Run a collection-network simulation and print trace statistics.
    domo estimate  --nodes 100 --seed 1
        Simulate, run Domo's estimated-value reconstruction, report error.
    domo compare   --nodes 100 --seed 1
        The Fig. 6 comparison: Domo vs MNT vs MessageTracing.
    domo faults    --nodes 16 --rates 0.1,0.3 --seed 7
        Seeded fault-injection campaign through the hardened pipeline.
    domo stream    trace.jsonl --lateness-ms 2000 [--follow]
        Incremental reconstruction over a JSON Lines packet stream
        (``-`` reads stdin; ``--follow`` tails a growing file).
    domo serve     --socket domo.sock [--port 7734]
        Multi-stream reconstruction service over unix/TCP sockets
        (newline-delimited records in, strict-JSON query replies out).
    domo route     --shards 3 --state-dir tier/ --socket domo.sock
        Sharded serve tier: consistent-hash router over N supervised
        shard processes with live stream migration (MIGRATE/DRAIN).

Operational errors — a missing, truncated or non-JSON trace file —
print a one-line message and exit with code 2 instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import __version__

from repro.analysis.experiments import (
    evaluate_accuracy,
    evaluate_bounds,
    evaluate_displacement,
)
from repro.analysis.scenarios import paper_scenario
from repro.analysis.tables import format_stats_table
from repro.backends import DEFAULT_BACKEND, available_backends, backend_names
from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.obs.spans import span
from repro.sim import simulate_network


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=100)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds")
    parser.add_argument("--period", type=float, default=8.0,
                        help="per-node generation period, seconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--trace", type=str, default=None,
                        help="load a saved trace instead of simulating")
    parser.add_argument("--save-trace", type=str, default=None,
                        help="save the (simulated) trace to this path")
    parser.add_argument(
        "--validate", choices=("off", "strict", "repair", "drop"),
        default="repair",
        help="trace-ingestion validation mode (default: repair — "
             "quarantine impossible records, distrust suspect S(p) fields)")


def _scenario(args):
    return paper_scenario(
        num_nodes=args.nodes,
        seed=args.seed,
        duration_ms=args.duration * 1000.0,
        packet_period_ms=args.period * 1000.0,
    )


def _validation_config(args):
    from repro.core.validation import ValidationConfig

    return ValidationConfig(mode=getattr(args, "validate", "repair"))


def _obtain_trace(args):
    """Load the trace from disk or simulate it, honoring --save-trace."""
    from repro.sim.io import load_trace, save_trace

    if args.trace:
        trace = load_trace(args.trace, validation=_validation_config(args))
        report = trace.validation_report
        if report is not None and not report.clean:
            summary = report.as_dict()
            print(
                f"validation: {summary['quarantined_packets']} quarantined, "
                f"{summary['distrusted_sums']} distrusted, "
                f"{summary['malformed_records']} malformed records dropped",
                file=sys.stderr,
            )
    else:
        trace = simulate_network(_scenario(args))
    if args.save_trace:
        save_trace(trace, args.save_trace)
    return trace


def _cmd_simulate(args) -> int:
    trace = _obtain_trace(args)
    if args.save_stream:
        from repro.sim.io import save_packets_jsonl

        written = save_packets_jsonl(
            trace.received, args.save_stream, sort_by_arrival=True
        )
        print(f"stream records   : {written} -> {args.save_stream}",
              file=sys.stderr)
    delays = []
    hops = []
    for p in trace.received:
        truth = trace.truth_of(p.packet_id)
        delays.extend(truth.node_delays())
        hops.append(p.path_length - 1)
    print(f"received packets : {trace.num_received}")
    print(f"lost packets     : {len(trace.lost_packets)}")
    print(f"delivery ratio   : {trace.delivery_ratio:.3f}")
    print(f"mean path length : {np.mean(hops):.2f} hops")
    print(f"mean node delay  : {np.mean(delays):.2f} ms")
    print(f"p95 node delay   : {np.percentile(delays, 95):.2f} ms")
    return 0


def _domo_config(args) -> DomoConfig:
    """DomoConfig honoring --workers, --validate, and --backend knobs."""
    workers = getattr(args, "workers", None)
    return DomoConfig(
        parallel=workers is not None and workers > 1,
        max_workers=workers,
        validation=_validation_config(args),
        backend=getattr(args, "backend", None) or DEFAULT_BACKEND,
    )


def _cli_config(args) -> dict:
    """The parsed arguments as a plain dict, for the RunReport config."""
    return {
        key: value
        for key, value in sorted(vars(args).items())
        if key != "handler"
    }


def _run_with_metrics(args, command: str, body) -> int:
    """Run a command body, honoring ``--metrics-out``.

    ``body`` returns ``(exit_code, stats_dict)``. Without --metrics-out it
    just runs (its spans land in the process-default registry and are
    discarded). With it, the body runs under an isolated registry and a
    root ``run`` span, and a ``domo.run_report/1`` JSON is written.
    """
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        code, _ = body()
        return code
    from repro.obs.registry import isolated_registry
    from repro.obs.report import build_run_report, write_run_report

    with isolated_registry() as registry:
        with span("run"):
            code, stats = body()
        report = build_run_report(
            command,
            argv=list(sys.argv[1:]),
            config=_cli_config(args),
            stats=stats,
            registry=registry,
        )
    write_run_report(metrics_out, report)
    print(f"metrics report        : {metrics_out}", file=sys.stderr)
    return code


def _format_backends() -> str:
    """One line per registered estimator backend, with its capabilities."""
    lines = []
    for name in backend_names():
        caps = available_backends()[name].capabilities
        default = "  (default)" if name == DEFAULT_BACKEND else ""
        lines.append(
            f"{name:16s} exact={str(caps.exact).lower():5s} "
            f"relaxation={str(caps.supports_relaxation).lower():5s} "
            f"cost_rank={caps.cost_rank}{default}"
        )
    return "\n".join(lines)


def _cmd_estimate(args) -> int:
    from repro.runtime.telemetry import format_telemetry_report

    if args.list_backends:
        print(_format_backends())
        return 0

    def body() -> tuple[int, dict]:
        with span("setup"):
            trace = _obtain_trace(args)
        domo = DomoReconstructor(_domo_config(args))
        with span("estimate"):
            estimate = domo.estimate(trace)
        with span("score"):
            errors = []
            for p in trace.received:
                truth = trace.truth_of(p.packet_id).node_delays()
                errors.extend(
                    abs(a - b)
                    for a, b in zip(estimate.delays_of(p.packet_id), truth)
                )
        print(f"reconstructed delays : {len(errors)}")
        print(f"mean error           : {np.mean(errors):.3f} ms")
        print(f"fraction < 4 ms      : {np.mean(np.asarray(errors) < 4):.2f}")
        print(f"time per delay       : {estimate.time_per_delay_ms:.2f} ms")
        if args.solver_stats:
            print()
            print("solver telemetry")
            print(format_telemetry_report(estimate.stats))
        stats = dict(estimate.stats)
        stats.update(
            reconstructed_delays=len(errors),
            mean_error_ms=float(np.mean(errors)) if errors else 0.0,
            windows_used=estimate.windows_used,
            solve_time_s=estimate.solve_time_s,
        )
        return 0, stats

    return _run_with_metrics(args, "estimate", body)


def _cmd_compare(args) -> int:
    trace = _obtain_trace(args)
    accuracy = evaluate_accuracy(trace)
    print(format_stats_table(
        [("Domo", accuracy.domo), ("MNT", accuracy.mnt)],
        value_label="estimation error (ms)",
        thresholds=(4.0,),
    ))
    bounds = evaluate_bounds(trace, max_packets=args.bound_packets)
    print()
    print(format_stats_table(
        [("Domo", bounds.domo), ("MNT", bounds.mnt)],
        value_label="delay bound width (ms)",
    ))
    displacement = evaluate_displacement(trace)
    print()
    print(format_stats_table(
        [
            ("Domo", displacement.domo),
            ("MessageTracing", displacement.message_tracing),
        ],
        value_label="event displacement",
    ))
    return 0


def _cmd_report(args) -> int:
    if args.metrics_json:
        return _cmd_report_metrics(args)
    from repro.analysis.report import generate_report

    trace = _obtain_trace(args)
    print(generate_report(trace))
    return 0


def _cmd_report_metrics(args) -> int:
    """Pretty-print (and optionally gate) a ``--metrics-out`` JSON file."""
    import json

    from repro.obs.report import format_run_report, validate_report

    with open(args.metrics_json, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    problems = validate_report(data)
    print(format_run_report(data))
    for problem in problems:
        print(f"schema problem: {problem}", file=sys.stderr)
    if args.check is not None:
        coverage = data.get("span_coverage")
        covered = isinstance(coverage, (int, float)) and coverage >= args.check
        if problems or not covered:
            print(
                f"check failed: coverage={coverage} "
                f"(threshold {args.check}), {len(problems)} schema "
                f"problem(s)",
                file=sys.stderr,
            )
            return 1
        print(f"check passed: coverage={coverage:.4f}", file=sys.stderr)
    return 0 if not problems else 1


def _parse_rates(text: str) -> tuple[float, ...]:
    try:
        rates = tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"rates must be comma-separated numbers, got {text!r}"
        ) from None
    if not rates or not all(0.0 <= r <= 1.0 for r in rates):
        raise argparse.ArgumentTypeError(
            f"rates must lie in [0, 1], got {text!r}"
        )
    return rates


def _cmd_faults(args) -> int:
    from repro.faults import (
        DEFAULT_INJECTORS,
        format_campaign_table,
        make_injector,
        run_campaign,
    )

    def body() -> tuple[int, dict]:
        with span("setup"):
            trace = _obtain_trace(args)
        if args.kinds:
            injectors = [
                make_injector(kind.strip()) for kind in args.kinds.split(",")
            ]
        else:
            injectors = list(DEFAULT_INJECTORS)
        with span("campaign"):
            result = run_campaign(
                trace,
                injectors=injectors,
                rates=args.rates,
                seed=args.seed,
                config=_domo_config(args),
            )
        print(format_campaign_table(result))
        stats = {
            "cells": len(result.cells),
            "failures": len(result.failures),
            "undetected": len(result.undetected()),
            "baseline_error_ms": result.baseline_error_ms,
            "rates": list(args.rates),
        }
        return (0 if result.clean else 1), stats

    return _run_with_metrics(args, "faults", body)


def _follow_lines(
    handle, poll_interval: float, idle_timeout: float, sleep=None
):
    """Tail a growing file: yield complete lines, polling on EOF.

    Splits raw chunks on newlines itself rather than trusting
    ``readline``: at EOF ``readline`` returns whatever partial text the
    producer has written so far, and a record cut mid-write must be
    buffered until its newline lands — not parsed as a truncated (and
    therefore corrupt) record. A final *unterminated* line is yielded
    only once the idle timeout expires, so a producer that never wrote
    the last newline still gets its record processed instead of lost.
    ``sleep`` is injectable for tests.
    """
    import time

    if sleep is None:
        sleep = time.sleep
    buffer = ""
    idle = 0.0
    while True:
        chunk = handle.read(65536)
        if chunk:
            idle = 0.0
            buffer += chunk
            while True:
                cut = buffer.find("\n")
                if cut < 0:
                    break
                yield buffer[: cut + 1]
                buffer = buffer[cut + 1:]
            continue
        if idle >= idle_timeout:
            if buffer:
                yield buffer
            return
        sleep(poll_interval)
        idle += poll_interval


def _read_chunks(chunks):
    """Pull chunks one at a time, charging read/parse time to a span.

    The explicit ``next()`` keeps the file I/O and JSON decoding of each
    chunk inside ``span("read")`` while the downstream ingest/poll work
    is charged to the engine's own spans.
    """
    iterator = iter(chunks)
    while True:
        with span("read"):
            chunk = next(iterator, None)
        if chunk is None:
            return
        yield chunk


def _cmd_stream(args) -> int:
    from dataclasses import replace

    from repro.sim.io import read_packets_jsonl_chunks
    from repro.stream import StreamingReconstructor, format_stream_report

    config = _domo_config(args)
    if args.window_span_ms is not None:
        config = replace(config, window_span_ms=args.window_span_ms)

    def body() -> tuple[int, dict]:
        committed_windows = 0
        committed_estimates = 0

        def consume(batch) -> None:
            nonlocal committed_windows, committed_estimates
            for cw in batch:
                committed_windows += 1
                committed_estimates += cw.num_estimates
                if args.verbose:
                    print(
                        f"window {cw.solve_index:4d} committed: "
                        f"{cw.num_estimates} estimates, "
                        f"seal->commit {1e3 * cw.seal_to_commit_s:.1f} ms",
                        file=sys.stderr,
                    )

        with StreamingReconstructor(
            config, lateness_ms=args.lateness_ms
        ) as engine:
            # A producer killed mid-write leaves a torn final line; every
            # mode except strict skips it and counts it in the report.
            tail_kwargs = dict(
                tolerate_truncated_tail=args.validate != "strict",
                report=engine.report,
            )
            try:
                if args.path == "-":
                    chunks = read_packets_jsonl_chunks(
                        sys.stdin, args.chunk, **tail_kwargs
                    )
                    for chunk in _read_chunks(chunks):
                        engine.ingest(chunk)
                        consume(engine.poll())
                elif args.follow:
                    # Tailing reads whatever text appears after EOF, which
                    # is meaningless inside a gzip stream — reject up front
                    # instead of yielding UnicodeDecodeError garbage. (The
                    # non-follow path is gzip-aware via iter_packets_jsonl.)
                    if args.path.endswith(".gz"):
                        raise ValueError(
                            "--follow cannot tail a gzip-compressed file; "
                            "decompress it or drop --follow"
                        )
                    with open(args.path, "r", encoding="utf-8") as handle:
                        lines = _follow_lines(
                            handle, args.poll_interval, args.idle_timeout
                        )
                        chunks = read_packets_jsonl_chunks(
                            lines, args.chunk, **tail_kwargs
                        )
                        for chunk in _read_chunks(chunks):
                            engine.ingest(chunk)
                            consume(engine.poll())
                else:
                    chunks = read_packets_jsonl_chunks(
                        args.path, args.chunk, **tail_kwargs
                    )
                    for chunk in _read_chunks(chunks):
                        engine.ingest(chunk)
                        consume(engine.poll())
            except KeyboardInterrupt:
                print("interrupted: flushing open windows", file=sys.stderr)
            consume(engine.flush())
            telemetry = engine.telemetry
            stats = engine.stats()

        print(f"committed windows     : {committed_windows}")
        print(f"committed estimates   : {committed_estimates}")
        print(format_stream_report(telemetry))
        stats.update(
            committed_windows=committed_windows,
            committed_estimates=committed_estimates,
        )
        return 0, stats

    return _run_with_metrics(args, "stream", body)


def _free_port(host: str) -> int:
    """Bind-and-release a TCP port so ``--port 0`` resolves *before* the
    first supervised spawn — every restarted child rebinds the same
    address and clients can reconnect without rediscovery."""
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _serve_child_argv(args, *, port) -> list[str]:
    """The child command line for ``--supervise``: the same serve
    invocation, minus ``--supervise`` itself, with the port pinned."""
    argv = [sys.executable, "-m", "repro.cli", "serve"]
    if args.socket is not None:
        argv += ["--socket", args.socket]
    if port is not None:
        argv += ["--host", args.host, "--port", str(port)]
    argv += [
        "--max-sessions", str(args.max_sessions),
        "--lateness-ms", str(args.lateness_ms),
        "--chunk", str(args.chunk),
        "--queue-capacity", str(args.queue_capacity),
        "--validate", args.validate,
        "--adoption-grace-ms", str(args.adoption_grace_ms),
        "--max-line-bytes", str(args.max_line_bytes),
    ]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if getattr(args, "backend", None):
        argv += ["--backend", args.backend]
    if args.wal_dir is not None:
        argv += [
            "--wal-dir", args.wal_dir,
            "--fsync", args.fsync,
            "--snapshot-interval", str(args.snapshot_interval),
        ]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    return argv


def _cmd_serve_supervised(args) -> int:
    from repro.serve.durability.supervisor import CrashLoopError, Supervisor

    port = args.port
    if port == 0:
        port = _free_port(args.host)
        print(f"supervisor: resolved --port 0 to {port}", file=sys.stderr)
    supervisor = Supervisor(
        _serve_child_argv(args, port=port),
        max_restarts=args.max_restarts,
        backoff_s=args.backoff_ms / 1000.0,
    )
    try:
        return supervisor.run()
    except CrashLoopError as exc:
        print(f"domo serve: CrashLoopError: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.durability import DurabilityConfig, WalCorruptionError
    from repro.serve.durability.recovery import RecoveryError
    from repro.serve.server import ReconstructionServer

    if args.socket is None and args.port is None:
        raise ValueError("domo serve needs --socket and/or --port")
    if args.supervise:
        return _cmd_serve_supervised(args)

    durability = None
    if args.wal_dir is not None:
        from pathlib import Path

        durability = DurabilityConfig(
            wal_dir=Path(args.wal_dir),
            fsync=args.fsync,
            snapshot_interval=args.snapshot_interval,
        )

    def on_ready(server) -> None:
        for endpoint in server.endpoints:
            print(f"serving on {endpoint}", file=sys.stderr)

    server = ReconstructionServer(
        _domo_config(args),
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        lateness_ms=args.lateness_ms,
        chunk=args.chunk,
        queue_capacity=args.queue_capacity,
        metrics_out=args.metrics_out,
        argv=list(sys.argv[1:]),
        on_ready=on_ready,
        durability=durability,
        adoption_grace_s=args.adoption_grace_ms / 1000.0,
        max_line_bytes=args.max_line_bytes,
    )
    # The server wraps itself in an isolated registry + root "run" span
    # and writes its own RunReport at drain, so no _run_with_metrics.
    try:
        report = asyncio.run(server.run())
    except (WalCorruptionError, RecoveryError) as exc:
        # Keep the exception's name in the one-line error: a supervisor
        # breaker tripping on repeated boot failures carries this stderr
        # tail, and "WalCorruptionError: ..." tells the operator what to
        # fix where a bare message would not.
        print(
            f"domo: error: {type(exc).__name__}: {exc}", file=sys.stderr
        )
        return 2
    stats = report.stats
    print(
        f"drained: {stats.get('sessions', 0)} session(s), "
        f"{stats.get('server', {}).get('records_accepted', 0)} record(s) "
        f"accepted",
        file=sys.stderr,
    )
    if args.metrics_out:
        print(f"metrics report        : {args.metrics_out}", file=sys.stderr)
    return 0


def _cmd_route(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.serve.protocol import MAX_ADMIN_LINE_BYTES
    from repro.serve.router import RouterServer, ShardSpec

    if args.socket is None and args.port is None:
        raise ValueError("domo route needs --socket and/or --port")
    state_dir = Path(args.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    specs = []
    for i in range(args.shards):
        name = f"shard-{i}"
        shard_dir = state_dir / name
        shard_dir.mkdir(parents=True, exist_ok=True)
        shard_socket = str(state_dir / f"{name}.sock")
        metrics_path = str(shard_dir / "report.json")
        shard_argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--socket", shard_socket,
            "--wal-dir", str(shard_dir / "wal"),
            "--fsync", args.fsync,
            "--snapshot-interval", str(args.snapshot_interval),
            "--max-sessions", str(args.max_sessions),
            "--lateness-ms", str(args.lateness_ms),
            "--chunk", str(args.chunk),
            "--queue-capacity", str(args.queue_capacity),
            "--validate", args.validate,
            "--adoption-grace-ms", str(args.adoption_grace_ms),
            # IMPORT lines carry a whole exported stream; the socket is
            # internal, so the hostile-client line cap does not apply.
            "--max-line-bytes", str(MAX_ADMIN_LINE_BYTES),
            "--metrics-out", metrics_path,
        ]
        if args.workers is not None:
            shard_argv += ["--workers", str(args.workers)]
        if getattr(args, "backend", None):
            shard_argv += ["--backend", args.backend]
        specs.append(
            ShardSpec(
                name, shard_socket, argv=shard_argv,
                metrics_path=metrics_path,
            )
        )

    def on_ready(router) -> None:
        for endpoint in router.endpoints:
            print(
                f"routing on {endpoint} over {args.shards} shard(s)",
                file=sys.stderr,
            )

    router = RouterServer(
        specs,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        state_dir=str(state_dir),
        failover_deadline_s=args.failover_deadline_ms / 1000.0,
        supervisor_max_restarts=args.max_restarts,
        supervisor_backoff_s=args.backoff_ms / 1000.0,
        metrics_out=args.metrics_out,
        argv=list(sys.argv[1:]),
        on_ready=on_ready,
    )
    # Like serve, the router wraps itself in an isolated registry and a
    # root "run" span and writes its own (tier-wide) RunReport at drain.
    report = asyncio.run(router.run())
    stats = report.stats["router"]
    print(
        f"router drained: {stats['streams']} stream(s), "
        f"{stats['records_accepted']} record(s) forwarded, "
        f"{stats['migrations']} migration(s)",
        file=sys.stderr,
    )
    if args.metrics_out:
        print(f"metrics report        : {args.metrics_out}", file=sys.stderr)
    return 0


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", type=str, default=None, choices=backend_names(),
        metavar="NAME",
        help="estimator backend (default %s); list them with "
             "'domo estimate --list-backends'" % DEFAULT_BACKEND,
    )


def _add_metrics_out(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write a machine-readable run report (counters, histograms, "
             "stage trace; schema domo.run_report/1) to this JSON file; "
             "inspect it with 'domo report PATH'",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="domo",
        description="Domo delay tomography (ICDCS'14) reproduction",
    )
    parser.add_argument(
        "--version", action="version",
        version=(
            f"domo {__version__}\n"
            f"backends: {', '.join(backend_names())} "
            f"(default {DEFAULT_BACKEND})"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="run the simulator")
    _add_scenario_arguments(simulate)
    simulate.add_argument(
        "--save-stream", type=str, default=None,
        help="also write the received packets as JSON Lines in "
             "sink-arrival order (the input format of 'domo stream')",
    )
    simulate.set_defaults(handler=_cmd_simulate)

    estimate = commands.add_parser("estimate", help="Domo estimation demo")
    _add_scenario_arguments(estimate)
    estimate.add_argument(
        "--workers", type=_positive_int, default=None,
        help="solve windows on a process pool with this many workers "
             "(>1 enables parallel execution; results are identical)",
    )
    estimate.add_argument(
        "--solver-stats", action="store_true",
        help="print per-run solver telemetry (iterations, residuals, "
             "window timings, status tally)",
    )
    _add_backend_argument(estimate)
    estimate.add_argument(
        "--list-backends", action="store_true",
        help="list the registered estimator backends and exit",
    )
    _add_metrics_out(estimate)
    estimate.set_defaults(handler=_cmd_estimate)

    compare = commands.add_parser("compare", help="Domo vs MNT vs MsgTracing")
    _add_scenario_arguments(compare)
    compare.add_argument("--bound-packets", type=int, default=100,
                         help="packets whose bounds are LP-solved")
    compare.set_defaults(handler=_cmd_compare)

    report = commands.add_parser(
        "report",
        help="operator-style diagnostic report, or pretty-print a "
             "--metrics-out JSON file",
    )
    _add_scenario_arguments(report)
    report.add_argument(
        "metrics_json", nargs="?", default=None,
        help="a run-report JSON written by --metrics-out; when given, "
             "pretty-print it instead of generating a trace diagnostic")
    report.add_argument(
        "--check", type=float, default=None, metavar="COVERAGE",
        help="with a metrics JSON: exit 1 unless the report is "
             "schema-valid and its span coverage is >= this fraction "
             "(e.g. 0.95); for CI gating")
    report.set_defaults(handler=_cmd_report)

    faults = commands.add_parser(
        "faults", help="seeded fault-injection campaign"
    )
    _add_scenario_arguments(faults)
    faults.add_argument(
        "--rates", type=_parse_rates, default=(0.1, 0.2, 0.3),
        help="comma-separated fault rates (default 0.1,0.2,0.3)")
    faults.add_argument(
        "--kinds", type=str, default=None,
        help="comma-separated injector kinds (default: all)")
    _add_metrics_out(faults)
    faults.set_defaults(handler=_cmd_faults)

    stream = commands.add_parser(
        "stream",
        help="incremental reconstruction over a JSON Lines packet stream",
    )
    stream.add_argument(
        "path", type=str,
        help="JSONL trace ('domo simulate --save-stream'); '-' reads stdin")
    stream.add_argument(
        "--lateness-ms", type=float, default=5_000.0,
        help="watermark allowance for out-of-order arrivals before a "
             "window seals (default 5000; 'inf' defers all work to the "
             "end-of-stream flush)")
    stream.add_argument(
        "--follow", action="store_true",
        help="keep tailing the file for new records instead of stopping "
             "at end-of-file")
    stream.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between polls of a followed file (default 0.5)")
    stream.add_argument(
        "--idle-timeout", type=float, default=10.0,
        help="stop following after this many idle seconds (default 10)")
    stream.add_argument(
        "--chunk", type=_positive_int, default=256,
        help="packets per ingest call (default 256)")
    stream.add_argument(
        "--window-span-ms", type=float, default=None,
        help="explicit window span; default: auto from packet density")
    stream.add_argument(
        "--workers", type=_positive_int, default=None,
        help="solve sealed windows on a process pool with this many "
             "workers (>1 enables parallel execution)")
    stream.add_argument(
        "--validate", choices=("off", "strict", "repair", "drop"),
        default="repair",
        help="trace-ingestion validation mode (default: repair); strict "
             "also refuses a truncated final JSONL line instead of "
             "skipping and counting it")
    stream.add_argument(
        "--verbose", action="store_true",
        help="log each window commit to stderr as it happens")
    _add_backend_argument(stream)
    _add_metrics_out(stream)
    stream.set_defaults(handler=_cmd_stream)

    serve = commands.add_parser(
        "serve",
        help="multi-stream reconstruction service over unix/TCP sockets",
    )
    serve.add_argument(
        "--socket", type=str, default=None, metavar="PATH",
        help="listen on this unix-domain socket")
    serve.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None,
        help="listen on this TCP port (0 picks a free one)")
    serve.add_argument(
        "--max-sessions", type=_positive_int, default=64,
        help="admission limit on concurrently active streams "
             "(default 64); excess streams get a clean error line")
    serve.add_argument(
        "--workers", type=_positive_int, default=None,
        help="solve sealed windows on a shared process pool with this "
             "many workers (>1 enables parallel execution)")
    serve.add_argument(
        "--lateness-ms", type=float, default=float("inf"),
        help="watermark allowance per stream (default 'inf': all "
             "sealing deferred to FLUSH/shutdown, making served results "
             "bit-identical to 'domo estimate' for any interleaving)")
    serve.add_argument(
        "--chunk", type=_positive_int, default=256,
        help="max records per engine ingest call (default 256)")
    serve.add_argument(
        "--queue-capacity", type=_positive_int, default=1024,
        help="per-stream ingest queue bound; a full queue pauses that "
             "connection's reader (backpressure) instead of buffering "
             "without bound (default 1024)")
    serve.add_argument(
        "--validate", choices=("off", "strict", "repair", "drop"),
        default="repair",
        help="ingest validation mode for every stream (default: repair)")
    serve.add_argument(
        "--wal-dir", type=str, default=None, metavar="DIR",
        help="enable durability: write-ahead-log every ingest batch "
             "under this directory and snapshot engine state, so a "
             "killed server recovers every acknowledged record on "
             "restart (one subdirectory per stream)")
    serve.add_argument(
        "--fsync", choices=("always", "interval", "never"),
        default="interval",
        help="WAL fsync policy (default interval: bounded-loss batching "
             "of disk syncs; 'always' syncs every append; 'never' "
             "still survives process death, not power loss)")
    serve.add_argument(
        "--snapshot-interval", type=int, default=256, metavar="N",
        help="snapshot a stream's engine state every N WAL records so "
             "recovery replays at most N records (default 256; 0 "
             "disables periodic snapshots — recovery replays the "
             "whole WAL)")
    serve.add_argument(
        "--adoption-grace-ms", type=float, default=250.0, metavar="MS",
        help="how long a drained stream stays queryable for adoption "
             "by a new connection before eviction (default 250)")
    serve.add_argument(
        "--max-line-bytes", type=_positive_int, default=1 << 20,
        metavar="N",
        help="per-connection readline limit (default 1 MiB); a router "
             "raises this on its internal shard sockets so IMPORT "
             "lines carrying a whole exported stream fit")
    serve.add_argument(
        "--supervise", action="store_true",
        help="run the server in a supervised child process: restart it "
             "on crash with exponential backoff, give up with a named "
             "CrashLoopError when it keeps dying at boot (e.g. a "
             "corrupt WAL)")
    serve.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="with --supervise: consecutive fast failures tolerated "
             "before the crash-loop breaker trips (default 5)")
    serve.add_argument(
        "--backoff-ms", type=float, default=200.0, metavar="MS",
        help="with --supervise: base restart delay, doubled per "
             "consecutive fast failure (default 200)")
    _add_backend_argument(serve)
    _add_metrics_out(serve)
    serve.set_defaults(handler=_cmd_serve)

    route = commands.add_parser(
        "route",
        help="sharded serve tier: consistent-hash router over N "
             "supervised shard processes",
    )
    route.add_argument(
        "--shards", type=_positive_int, default=2, metavar="N",
        help="number of shard processes to spawn (default 2), each a "
             "full durable reconstruction server with its own WAL dir")
    route.add_argument(
        "--state-dir", type=str, required=True, metavar="DIR",
        help="tier state root: per-shard sockets, WAL dirs, shutdown "
             "reports, and the router's routing.json live here")
    route.add_argument(
        "--socket", type=str, default=None, metavar="PATH",
        help="client-facing unix-domain socket")
    route.add_argument(
        "--host", type=str, default="127.0.0.1",
        help="client-facing TCP bind address (default 127.0.0.1)")
    route.add_argument(
        "--port", type=int, default=None,
        help="client-facing TCP port (0 picks a free one)")
    route.add_argument(
        "--replicas", type=_positive_int, default=64, metavar="N",
        help="virtual points per shard on the consistent-hash ring "
             "(default 64)")
    route.add_argument(
        "--failover-deadline-ms", type=float, default=15000.0,
        metavar="MS",
        help="total ceiling on one shard failover (reconnect dials + "
             "backoff), bounding the client-visible stall (default "
             "15000)")
    route.add_argument(
        "--max-sessions", type=_positive_int, default=64,
        help="per-shard admission limit on active streams (default 64)")
    route.add_argument(
        "--workers", type=_positive_int, default=None,
        help="per-shard solver pool workers (>1 enables parallel "
             "execution inside each shard)")
    route.add_argument(
        "--lateness-ms", type=float, default=float("inf"),
        help="per-stream watermark allowance (default 'inf': sealing "
             "deferred to FLUSH/shutdown for bit-parity with "
             "'domo estimate')")
    route.add_argument(
        "--chunk", type=_positive_int, default=256,
        help="per-shard max records per engine ingest call (default 256)")
    route.add_argument(
        "--queue-capacity", type=_positive_int, default=1024,
        help="per-stream ingest queue bound on each shard (default 1024)")
    route.add_argument(
        "--validate", choices=("off", "strict", "repair", "drop"),
        default="repair",
        help="ingest validation mode for every stream (default: repair)")
    route.add_argument(
        "--fsync", choices=("always", "interval", "never"),
        default="interval",
        help="shard WAL fsync policy (default interval)")
    route.add_argument(
        "--snapshot-interval", type=int, default=256, metavar="N",
        help="shard snapshot cadence in WAL records (default 256)")
    route.add_argument(
        "--adoption-grace-ms", type=float, default=250.0, metavar="MS",
        help="shard-side eviction grace for orphaned streams "
             "(default 250)")
    route.add_argument(
        "--max-restarts", type=int, default=5, metavar="N",
        help="per-shard crash-loop breaker: consecutive fast failures "
             "tolerated before the shard is given up on (default 5)")
    route.add_argument(
        "--backoff-ms", type=float, default=200.0, metavar="MS",
        help="per-shard base restart delay, doubled per consecutive "
             "fast failure (default 200)")
    _add_backend_argument(route)
    _add_metrics_out(route)
    route.set_defaults(handler=_cmd_route)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (OSError, ValueError) as exc:
        # Operational failures (unreadable/corrupt trace files, strict
        # validation rejections) get a one-line error, not a traceback.
        print(f"domo: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
