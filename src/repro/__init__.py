"""Domo: passive per-hop per-packet delay tomography — ICDCS 2014 reproduction.

Quick start::

    from repro import DomoConfig, DomoReconstructor, NetworkConfig, simulate_network

    trace = simulate_network(NetworkConfig(num_nodes=100, seed=1))
    domo = DomoReconstructor(DomoConfig())
    estimate = domo.estimate(trace)          # per-hop arrival-time estimates
    bounds = domo.bounds(trace)              # per-hop lower/upper bounds

Package map:

* :mod:`repro.sim` — discrete-event collection-network simulator
  (replaces the paper's TOSSIM/TinyOS testbed);
* :mod:`repro.core` — Domo itself: constraints, estimation QP, SDR,
  bound LPs, windowing, metrics;
* :mod:`repro.stream` — incremental ingest -> seal -> solve -> commit
  engine (the online form of the reconstruction; the batch API runs on
  top of it);
* :mod:`repro.baselines` — MNT and MessageTracing comparison methods;
* :mod:`repro.optim` — from-scratch QP/LP/SDP solvers;
* :mod:`repro.graphcut` — constraint graph, BLP, sub-graph extraction;
* :mod:`repro.analysis` — experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

from repro.baselines import MntReconstructor, MessageTracingReconstructor
from repro.core import (
    DomoConfig,
    DomoReconstructor,
    average_displacement,
    bound_width_stats,
    estimation_error_stats,
)
from repro.sim import (
    NetworkConfig,
    Simulator,
    TraceBundle,
    drop_random_packets,
    simulate_network,
)
from repro.stream import StreamingReconstructor

__version__ = "1.0.0"

__all__ = [
    "DomoConfig",
    "DomoReconstructor",
    "MessageTracingReconstructor",
    "MntReconstructor",
    "NetworkConfig",
    "Simulator",
    "StreamingReconstructor",
    "TraceBundle",
    "__version__",
    "average_displacement",
    "bound_width_stats",
    "drop_random_packets",
    "estimation_error_stats",
    "simulate_network",
]
