"""Seeded fault injectors over the raw JSON form of a trace.

Every injector is a :class:`FaultInjector`: a named, pure transformation
``apply(data, rng) -> data`` over the dict produced by
:func:`repro.sim.io.trace_to_dict`. Injectors never mutate their input
(they deep-copy the record lists they touch), always draw randomness from
the passed :class:`numpy.random.Generator` (same seed -> same faults),
and compose: ``inject(data, [a, b], rng)`` applies ``a`` then ``b``.

The modeled pathologies, mapped to the paper's failure discussion
(§IV.A) and to what deployments actually produce:

====================  =================================================
``delete_received``   received-packet loss (the paper's Fig. 7 sweep);
``wrap_sum``          S(p) exceeded 65535 ms and wrapped (16-bit
                      accumulator, §V Table I);
``saturate_sum``      S(p) pinned at 65535 (clipping firmware);
``clock_skew``        per-node offset+drift on reconstructed t0 —
                      breaks t_sink > t0 when large;
``duplicate``         records replayed by a flaky backhaul;
``truncate``          records that lost fields in flash;
``reorder``           sink log not in arrival order;
``corrupt_path``      path reconstruction errors (dropped, swapped or
                      repeated interior nodes).
====================  =================================================
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

#: modulus of the 2-byte sum-of-delays field.
_SUM_MODULUS = 65536


@dataclass(frozen=True)
class FaultInjector:
    """One named fault with its parameters.

    ``rate`` is the fraction of eligible records (or nodes, for
    ``clock_skew``) affected; ``params`` carries injector-specific knobs.
    """

    kind: str
    rate: float = 0.1
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _APPLIERS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {sorted(_APPLIERS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate} outside [0, 1]")

    def with_rate(self, rate: float) -> "FaultInjector":
        return replace(self, rate=rate)

    def apply(self, data: dict, rng: np.random.Generator) -> dict:
        """Return a faulted deep copy of the trace dict."""
        faulted = dict(data)
        faulted["received"] = copy.deepcopy(data.get("received", []))
        return _APPLIERS[self.kind](faulted, self.rate, self.params, rng)


def _pick(records: list, rate: float, rng: np.random.Generator) -> list[int]:
    """Indices of the records selected at ``rate`` (independent draws)."""
    return [i for i in range(len(records)) if rng.random() < rate]


# ----------------------------------------------------------------------
# Individual injectors
# ----------------------------------------------------------------------


def _delete_received(data, rate, params, rng):
    """Drop received records; ground truth is kept for the survivors."""
    kept = [r for r in data["received"] if rng.random() >= rate]
    data["received"] = kept
    return data


def _wrap_sum(data, rate, params, rng):
    """Model a 16-bit accumulator that overflowed one or more times.

    The stored value becomes ``(s + k * 65536) mod 65536 == s`` — so to
    model the *effect* seen at the sink (a sum that silently lost k *
    65536 ms) we instead *add* a large delay burst and wrap: the sink
    reads ``(s + burst) mod 65536``, which is smaller than the true sum
    whenever the burst pushes past the modulus.
    """
    lo = params.get("burst_lo_ms", 40_000)
    hi = params.get("burst_hi_ms", 200_000)
    for i in _pick(data["received"], rate, rng):
        record = dict(data["received"][i])
        burst = int(rng.integers(lo, hi))
        record["sum_of_delays"] = (record["sum_of_delays"] + burst) % _SUM_MODULUS
        data["received"][i] = record
    return data


def _saturate_sum(data, rate, params, rng):
    """Pin S(p) at the field maximum (clipping firmware)."""
    for i in _pick(data["received"], rate, rng):
        record = dict(data["received"][i])
        record["sum_of_delays"] = _SUM_MODULUS - 1
        data["received"][i] = record
    return data


def _clock_skew(data, rate, params, rng):
    """Per-node offset and drift on the reconstructed generation times.

    Models errors of the time-reconstruction layer ([7] in the paper): a
    fraction ``rate`` of source nodes gets a fixed offset plus a linear
    drift applied to the t0 of every packet they generated. Large skews
    produce physically impossible ``t_sink < t0`` records that the
    validation layer must quarantine.
    """
    max_skew = params.get("max_skew_ms", 50.0)
    drift_ppm = params.get("drift_ppm", 200.0)
    sources = sorted({tuple(r["id"])[0] for r in data["received"]})
    skewed = {s for s in sources if rng.random() < rate}
    offsets = {
        s: float(rng.uniform(-max_skew, max_skew)) for s in skewed
    }
    drifts = {
        s: float(rng.uniform(-drift_ppm, drift_ppm)) * 1e-6 for s in skewed
    }
    for i, record in enumerate(data["received"]):
        source = tuple(record["id"])[0]
        if source not in skewed:
            continue
        record = dict(record)
        record["t0"] = (
            record["t0"]
            + offsets[source]
            + drifts[source] * record["t0"]
        )
        data["received"][i] = record
    return data


def _duplicate(data, rate, params, rng):
    """Append duplicate copies of selected records (backhaul replay)."""
    duplicates = [
        copy.deepcopy(data["received"][i])
        for i in _pick(data["received"], rate, rng)
    ]
    data["received"] = data["received"] + duplicates
    return data


def _truncate(data, rate, params, rng):
    """Remove one random field from selected records (flash damage)."""
    fields = ("path", "t0", "t_sink", "sum_of_delays")
    for i in _pick(data["received"], rate, rng):
        record = dict(data["received"][i])
        record.pop(fields[int(rng.integers(len(fields)))], None)
        data["received"][i] = record
    return data


def _reorder(data, rate, params, rng):
    """Shuffle the received list (sink log not in arrival order).

    ``rate`` scales how much of the list is permuted; at any rate > 0
    the reconstruction must be invariant to the record order.
    """
    records = data["received"]
    chosen = _pick(records, max(rate, 0.0), rng)
    permuted = list(chosen)
    rng.shuffle(permuted)
    reordered = list(records)
    for src, dst in zip(chosen, permuted):
        reordered[dst] = records[src]
    data["received"] = reordered
    return data


def _corrupt_path(data, rate, params, rng):
    """Damage the reported routing path of selected records.

    Three equally likely corruptions: drop an interior node, swap two
    interior nodes, or repeat an interior node (a routing loop — which
    validation quarantines as physically inconsistent).
    """
    for i in _pick(data["received"], rate, rng):
        record = dict(data["received"][i])
        path = list(record["path"])
        if len(path) < 3:
            continue
        interior = list(range(1, len(path) - 1))
        mode = int(rng.integers(3))
        if mode == 0:
            del path[interior[int(rng.integers(len(interior)))]]
        elif mode == 1 and len(interior) >= 2:
            a, b = rng.choice(interior, size=2, replace=False)
            path[a], path[b] = path[b], path[a]
        else:
            j = interior[int(rng.integers(len(interior)))]
            path.insert(j, path[j])
        record["path"] = path
        data["received"][i] = record
    return data


_APPLIERS = {
    "delete_received": _delete_received,
    "wrap_sum": _wrap_sum,
    "saturate_sum": _saturate_sum,
    "clock_skew": _clock_skew,
    "duplicate": _duplicate,
    "truncate": _truncate,
    "reorder": _reorder,
    "corrupt_path": _corrupt_path,
}

#: one instance of every injector at its default rate — the campaign's
#: default sweep set.
DEFAULT_INJECTORS: tuple[FaultInjector, ...] = tuple(
    FaultInjector(kind=kind) for kind in sorted(_APPLIERS)
)


def injector_names() -> list[str]:
    """Names of all registered fault kinds."""
    return sorted(_APPLIERS)


def make_injector(kind: str, rate: float = 0.1, **params) -> FaultInjector:
    """Construct an injector by name with keyword parameters."""
    return FaultInjector(kind=kind, rate=rate, params=dict(params))


def inject(
    data: dict,
    injectors,
    rng: np.random.Generator,
) -> dict:
    """Apply a sequence of injectors to a trace dict (composition)."""
    for injector in injectors:
        data = injector.apply(data, rng)
    return data
