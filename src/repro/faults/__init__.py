"""Fault injection: seeded, composable corruption of collected traces.

The robustness tier's test harness. Injectors operate on the **raw JSON
dict** form of a trace (:func:`repro.sim.io.trace_to_dict`), the exact
surface a real deployment's dirty data enters through — so every fault a
flash archive, a lossy backhaul or a wrapped on-mote counter can produce
is expressible, including record-level damage (truncation, duplication)
that the typed in-memory classes cannot represent.

* :mod:`repro.faults.injectors` — the injector registry: received-packet
  loss, S(p) 16-bit wraparound and saturation, per-node clock skew and
  drift, duplicated and truncated records, out-of-order sink arrivals,
  path inconsistencies.
* :mod:`repro.faults.campaign` — the campaign runner sweeping fault
  types x rates through the full hardened pipeline, checking that every
  cell completes without an uncaught exception and that degradation is
  visible in the reconstruction stats.
"""

from repro.faults.injectors import (
    DEFAULT_INJECTORS,
    FaultInjector,
    inject,
    injector_names,
    make_injector,
)
from repro.faults.campaign import (
    CampaignCell,
    CampaignResult,
    format_campaign_table,
    run_campaign,
)

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "DEFAULT_INJECTORS",
    "FaultInjector",
    "format_campaign_table",
    "inject",
    "injector_names",
    "make_injector",
    "run_campaign",
]
