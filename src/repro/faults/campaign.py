"""Fault-injection campaign runner: sweep fault types x rates end to end.

For every (injector, rate) cell the runner corrupts the trace at the raw
JSON level, pushes it through the tolerant ingestion path
(:func:`~repro.core.validation.sanitize_trace_dict` +
:func:`~repro.core.validation.validate_packets`) and the hardened
:class:`~repro.core.pipeline.DomoReconstructor`, then scores the
surviving estimates against ground truth. A cell that raises records the
exception instead of aborting the sweep — the acceptance bar is **zero
uncaught exceptions** across the whole campaign, with every degradation
event visible in the per-cell stats.

Runnable as a module (used by the CI smoke job)::

    python -m repro.faults.campaign --nodes 16 --duration 20 --seed 7 \
        --rates 0.2 --check
"""

from __future__ import annotations

import argparse
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.core.pipeline import DomoConfig, DomoReconstructor
from repro.core.validation import sanitize_trace_dict, validate_packets
from repro.faults.injectors import (
    DEFAULT_INJECTORS,
    FaultInjector,
    make_injector,
)
from repro.sim.io import trace_from_dict, trace_to_dict
from repro.sim.trace import TraceBundle

#: the paper's loss-robustness evaluation range (Fig. 7).
DEFAULT_RATES = (0.1, 0.2, 0.3)

#: injectors whose faults the validation layer is expected to *detect*
#: (quarantine/distrust/drop at some rate); the others (loss, reorder)
#: produce traces that are dirty but individually well-formed.
DETECTABLE_KINDS = frozenset(
    {"clock_skew", "corrupt_path", "duplicate", "saturate_sum", "truncate"}
)


@dataclass
class CampaignCell:
    """Outcome of one (injector, rate) cell."""

    kind: str
    rate: float
    #: received records after injection (before validation).
    num_records: int = 0
    #: packets surviving ingestion + validation.
    num_survivors: int = 0
    quarantined: int = 0
    distrusted: int = 0
    malformed: int = 0
    degraded_constraints: int = 0
    relaxed_windows: int = 0
    failed_windows: int = 0
    mean_abs_error_ms: float = float("nan")
    #: traceback summary when the pipeline raised (must never happen).
    error: str | None = None

    @property
    def detections(self) -> int:
        """Validation events of any kind in this cell."""
        return self.quarantined + self.distrusted + self.malformed

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """All cells of one campaign sweep."""

    cells: list[CampaignCell] = field(default_factory=list)
    baseline_error_ms: float = float("nan")

    @property
    def failures(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if not cell.ok]

    @property
    def clean(self) -> bool:
        return not self.failures

    def undetected(self) -> list[CampaignCell]:
        """Cells of detectable fault kinds where validation saw nothing."""
        return [
            cell
            for cell in self.cells
            if cell.ok
            and cell.kind in DETECTABLE_KINDS
            and cell.rate > 0.0
            and cell.detections == 0
        ]


def _score(trace: TraceBundle, estimate) -> float:
    """Mean absolute per-hop delay error over scorable packets."""
    errors: list[float] = []
    for packet_id, times in estimate.arrival_times.items():
        truth = trace.ground_truth.get(packet_id)
        if truth is None or len(truth.arrival_times_ms) != len(times):
            continue
        true_delays = truth.node_delays()
        delays = [b - a for a, b in zip(times, times[1:])]
        errors.extend(abs(a - b) for a, b in zip(delays, true_delays))
    return float(np.mean(errors)) if errors else float("nan")


def run_cell(
    trace: TraceBundle,
    injector: FaultInjector,
    seed: int,
    config: DomoConfig | None = None,
) -> CampaignCell:
    """Inject one fault into ``trace`` and run the hardened pipeline."""
    cell = CampaignCell(kind=injector.kind, rate=injector.rate)
    rng = np.random.default_rng(seed)
    try:
        data = injector.apply(trace_to_dict(trace), rng)
        cell.num_records = len(data.get("received", []))
        data, ingest_report = sanitize_trace_dict(data)
        faulted = trace_from_dict(data)
        config = config or DomoConfig()
        survivors, report = validate_packets(
            faulted.received, config.validation
        )
        report.merge(ingest_report)
        faulted = faulted.with_received(survivors)
        faulted.validation_report = report
        cell.num_survivors = len(survivors)

        estimate = DomoReconstructor(config).estimate(faulted)
        stats = estimate.stats
        validation = stats.get("validation", {})
        cell.quarantined = validation.get("quarantined_packets", 0)
        cell.distrusted = validation.get("distrusted_sums", 0)
        cell.malformed = validation.get("malformed_records", 0)
        cell.degraded_constraints = stats.get("degraded_constraints", 0)
        cell.relaxed_windows = stats.get("relaxed_windows", 0)
        cell.failed_windows = stats.get("failed_windows", 0)
        cell.mean_abs_error_ms = _score(trace, estimate)
    except Exception:
        cell.error = traceback.format_exc(limit=8)
    return cell


def run_campaign(
    trace: TraceBundle,
    injectors=DEFAULT_INJECTORS,
    rates=DEFAULT_RATES,
    seed: int = 0,
    config: DomoConfig | None = None,
) -> CampaignResult:
    """Sweep every injector over every rate against one base trace.

    Each cell gets a deterministic per-cell seed derived from ``seed``,
    so a campaign is reproducible fault-for-fault.
    """
    result = CampaignResult()
    baseline = DomoReconstructor(config or DomoConfig()).estimate(trace)
    result.baseline_error_ms = _score(trace, baseline)
    for i, injector in enumerate(injectors):
        for j, rate in enumerate(rates):
            cell_seed = seed * 100_003 + i * 1_009 + j
            result.cells.append(
                run_cell(trace, injector.with_rate(rate), cell_seed, config)
            )
    return result


def format_campaign_table(result: CampaignResult) -> str:
    """Operator-readable summary of a campaign sweep."""
    header = (
        f"{'fault':<16}{'rate':>6}{'records':>9}{'kept':>7}{'quar':>6}"
        f"{'dist':>6}{'malf':>6}{'degr':>6}{'relax':>7}{'err ms':>9}  status"
    )
    lines = [header, "-" * len(header)]
    for cell in result.cells:
        status = "ok" if cell.ok else "RAISED"
        error = (
            f"{cell.mean_abs_error_ms:9.2f}"
            if cell.mean_abs_error_ms == cell.mean_abs_error_ms
            else f"{'n/a':>9}"
        )
        lines.append(
            f"{cell.kind:<16}{cell.rate:>6.2f}{cell.num_records:>9}"
            f"{cell.num_survivors:>7}{cell.quarantined:>6}"
            f"{cell.distrusted:>6}{cell.malformed:>6}"
            f"{cell.degraded_constraints:>6}{cell.relaxed_windows:>7}"
            f"{error}  {status}"
        )
    lines.append(
        f"baseline (clean) mean error: {result.baseline_error_ms:.2f} ms"
    )
    if result.failures:
        lines.append(f"FAILURES: {len(result.failures)} cell(s) raised")
        for cell in result.failures:
            lines.append(f"--- {cell.kind} @ {cell.rate}:")
            lines.append(cell.error or "")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Module entry point (CI smoke job)
# ----------------------------------------------------------------------


def _parse_rates(text: str) -> tuple[float, ...]:
    return tuple(float(part) for part in text.split(",") if part)


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.scenarios import paper_scenario
    from repro.sim import simulate_network

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.campaign",
        description="seeded fault-injection campaign over the Domo pipeline",
    )
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds")
    parser.add_argument("--period", type=float, default=3.0,
                        help="per-node generation period, seconds")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rates", type=_parse_rates, default=DEFAULT_RATES,
                        help="comma-separated fault rates (default 0.1,0.2,0.3)")
    parser.add_argument(
        "--kinds", type=str, default=None,
        help="comma-separated injector kinds (default: all)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit nonzero on any raised cell or on a detectable fault "
             "kind producing zero validation events (CI regression gate)")
    args = parser.parse_args(argv)

    trace = simulate_network(paper_scenario(
        num_nodes=args.nodes,
        seed=args.seed,
        duration_ms=args.duration * 1000.0,
        packet_period_ms=args.period * 1000.0,
    ))
    if args.kinds:
        injectors = [
            make_injector(kind.strip()) for kind in args.kinds.split(",")
        ]
    else:
        injectors = list(DEFAULT_INJECTORS)
    result = run_campaign(
        trace, injectors=injectors, rates=args.rates, seed=args.seed
    )
    print(format_campaign_table(result))
    if args.check:
        if not result.clean:
            print(f"check failed: {len(result.failures)} cell(s) raised")
            return 1
        undetected = result.undetected()
        if undetected:
            print(
                "check failed: no validation events for "
                + ", ".join(
                    f"{c.kind}@{c.rate}" for c in undetected
                )
            )
            return 1
        print("check ok: no uncaught exceptions, detectable faults detected")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
