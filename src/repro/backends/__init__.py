"""Pluggable per-window estimator backends.

Importing this package registers the four built-in backends:

* ``domo-qp`` — the paper's Eq. (8) minimum-delay-variance QP (default;
  also takes the SDR lift under ``fifo_mode="sdr"``);
* ``cs`` — compressed-sensing delay tomography (ISTA/OMP sparse
  recovery over the window's routing matrix);
* ``mnt`` — MNT bracketing midpoints (SenSys'12 baseline);
* ``message-tracing`` — order-only uniform spacing (baseline).

Resolve one with :func:`get_backend`; see :mod:`repro.backends.base`
for the contract.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendCapabilities,
    EstimatorBackend,
    UnknownBackendError,
    WindowSolution,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.backends.baselines import MessageTracingBackend, MntBackend
from repro.backends.cs import CsBackend, CsConfig
from repro.backends.domo_qp import DomoQpBackend, EstimatorConfig

#: the default backend name (the paper's estimator).
DEFAULT_BACKEND = "domo-qp"

register_backend(DomoQpBackend())
register_backend(CsBackend())
register_backend(MntBackend())
register_backend(MessageTracingBackend())

__all__ = [
    "BackendCapabilities",
    "CsBackend",
    "CsConfig",
    "DEFAULT_BACKEND",
    "DomoQpBackend",
    "EstimatorBackend",
    "EstimatorConfig",
    "MessageTracingBackend",
    "MntBackend",
    "UnknownBackendError",
    "WindowSolution",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
]
