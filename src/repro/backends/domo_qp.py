"""The default backend: minimum delay variance (paper Eq. (8)).

Within a short period, the sojourn times of packets crossing the *same*
node are similar, so Domo picks — among all arrival-time assignments
satisfying the constraints — the one minimizing

    sum over nodes n, packet pairs (x, y) through n with |t0 diff| < eps
        of  (D_n(x) - D_n(y))^2 .

That objective is a convex quadratic in the unknown arrival times; with
the order/sum/resolved-FIFO rows it is a QP solved by
:func:`repro.optim.qp.solve_qp`. A tiny Tikhonov pull toward the interval
midpoints selects a canonical solution when the variance objective alone
is indifferent (e.g. packets with no epsilon-neighbor).

This module is the historical ``repro.core.estimator`` moved behind the
:class:`~repro.backends.base.EstimatorBackend` contract; that module
remains as a re-export shim, and :class:`DomoQpBackend` dispatches
bit-identically to the pre-refactor executor (empty window -> ``{}``,
``fifo_mode="sdr"`` under the unknown cap -> SDR lift, else the
linearized QP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.backends.base import (
    BackendCapabilities,
    EstimatorBackend,
    WindowSolution,
)
from repro.core.constraints import ConstraintSystem
from repro.core.records import ArrivalKey
from repro.optim.qp import QPProblem, QPSettings, solve_qp
from repro.optim.result import SolverError, SolverResult


@dataclass
class EstimatorConfig:
    """Knobs of the Eq. (8) objective and its solve.

    Raises:
        ValueError: ``"epsilon_ms must be > 0"`` when the pairing
            horizon is zero or negative (an empty objective, silently,
            otherwise), and ``"max_pairs_per_visit must be >= 0"`` for a
            negative pair cap. ``max_pairs_per_visit=0`` is legal: it
            disables pairing and leaves only the anchor objective.
    """

    #: the paper's epsilon: pairing horizon on generation times, ms.
    epsilon_ms: float = 1000.0
    #: each node visit is paired with at most this many successors within
    #: epsilon (keeps the Hessian sparse on busy forwarders).
    max_pairs_per_visit: int = 6
    #: weight of the pull toward interval midpoints (solution selection).
    anchor_weight: float = 1e-6
    qp: QPSettings = field(default_factory=QPSettings)

    def __post_init__(self) -> None:
        if self.epsilon_ms <= 0:
            raise ValueError(
                f"epsilon_ms must be > 0, got {self.epsilon_ms!r}"
            )
        if self.max_pairs_per_visit < 0:
            raise ValueError(
                "max_pairs_per_visit must be >= 0, got "
                f"{self.max_pairs_per_visit!r}"
            )


def enumerate_pairs(
    system: ConstraintSystem, config: EstimatorConfig
) -> list[tuple[int, ArrivalKey, ArrivalKey, ArrivalKey, ArrivalKey]]:
    """Pairs (node, x@h, x@h+1, y@h, y@h+1) entering the objective."""
    pairs = []
    for node, visits in system.index.node_visits.items():
        ordered = sorted(visits, key=lambda item: item[0].generation_time_ms)
        for i, (x, hop_x) in enumerate(ordered):
            taken = 0
            for y, hop_y in ordered[i + 1:]:
                if (
                    y.generation_time_ms - x.generation_time_ms
                    >= config.epsilon_ms
                ):
                    break
                if taken >= config.max_pairs_per_visit:
                    break
                if x.packet_id == y.packet_id:
                    continue
                pairs.append(
                    (
                        node,
                        ArrivalKey(x.packet_id, hop_x),
                        ArrivalKey(x.packet_id, hop_x + 1),
                        ArrivalKey(y.packet_id, hop_y),
                        ArrivalKey(y.packet_id, hop_y + 1),
                    )
                )
                taken += 1
    return pairs


def _linear_form(
    system: ConstraintSystem,
    terms: dict[ArrivalKey, float],
    t_ref: float,
    scale: float = 1.0,
):
    """Split a key-space linear form into (columns, coeffs, constant).

    Known arrival times fold into the constant, expressed in the shifted
    and scaled frame ``(t - t_ref) / scale`` used for conditioning.
    """
    columns: list[int] = []
    coefficients: list[float] = []
    constant = 0.0
    for key, coefficient in terms.items():
        column = system.variables.get(key)
        if column is None:
            constant += (
                coefficient * (system.index.known_value(key) - t_ref) / scale
            )
        else:
            columns.append(column)
            coefficients.append(coefficient)
    return columns, coefficients, constant


def estimate_arrival_times(
    system: ConstraintSystem,
    config: EstimatorConfig | None = None,
) -> dict[ArrivalKey, float]:
    """Solve the Eq. (8) QP for every unknown arrival time in ``system``.

    Returns estimates for all unknown keys (knowns are not included).
    Raises :class:`~repro.optim.result.SolverError` when the QP solver
    cannot reach a usable point.
    """
    estimates, _ = estimate_arrival_times_info(system, config)
    return estimates


def estimate_arrival_times_info(
    system: ConstraintSystem,
    config: EstimatorConfig | None = None,
) -> tuple[dict[ArrivalKey, float], SolverResult | None]:
    """Like :func:`estimate_arrival_times`, also returning the solver result.

    The second element carries the QP's iteration count, residuals and
    solve time for telemetry; it is ``None`` for the trivial zero-unknown
    window (no solve happens).
    """
    config = config or EstimatorConfig()
    n = system.num_unknowns
    if n == 0:
        return {}, None

    lows, highs = system.variable_bounds()
    lows = np.asarray(lows)
    highs = np.asarray(highs)
    t_ref = float(np.min(lows))
    midpoints = 0.5 * (lows + highs) - t_ref

    # --- objective: sum of squared delay differences -------------------
    rows_p: list[int] = []
    cols_p: list[int] = []
    vals_p: list[float] = []
    q = np.zeros(n)
    for node, x_at, x_next, y_at, y_next in enumerate_pairs(system, config):
        form = {x_next: 1.0, x_at: -1.0, y_next: -1.0, y_at: 1.0}
        columns, coefficients, constant = _linear_form(system, form, t_ref)
        if not columns:
            continue
        # (a'x + c)^2 contributes 2*a*a' to P and 2*c*a to q.
        for col_i, coef_i in zip(columns, coefficients):
            q[col_i] += 2.0 * constant * coef_i
            for col_j, coef_j in zip(columns, coefficients):
                rows_p.append(col_i)
                cols_p.append(col_j)
                vals_p.append(2.0 * coef_i * coef_j)
    P = sp.csc_matrix((vals_p, (rows_p, cols_p)), shape=(n, n))

    # Anchor: lambda * ||x - mid||^2 selects a canonical solution.
    lam = config.anchor_weight
    P = P + 2.0 * lam * sp.identity(n, format="csc")
    q = q - 2.0 * lam * midpoints

    # --- constraints: builder rows + interval box ----------------------
    A_rows, row_lower, row_upper = system.builder.build(num_variables=n)
    row_shift = np.asarray(A_rows @ np.ones(n)).ravel() * t_ref
    row_lower = np.where(np.isfinite(row_lower), row_lower - row_shift, row_lower)
    row_upper = np.where(np.isfinite(row_upper), row_upper - row_shift, row_upper)
    identity = sp.identity(n, format="csr")
    A = sp.vstack([A_rows, identity], format="csr")
    lower = np.concatenate([row_lower, lows - t_ref])
    upper = np.concatenate([row_upper, highs - t_ref])

    problem = QPProblem(
        P=P, q=q, A=A, lower=lower, upper=upper, settings=config.qp
    )
    result = solve_qp(problem, x0=midpoints)
    if not result.status.is_usable:
        raise SolverError(result.status, "estimation QP failed")

    # ADMM satisfies the box only to its primal tolerance; clamp the
    # estimates into their (always valid) intervals.
    solution = np.clip(result.x, lows - t_ref, highs - t_ref) + t_ref
    estimates = {
        key: float(solution[system.variables.index_of(key)])
        for key in system.variables
    }
    return estimates, result


class DomoQpBackend(EstimatorBackend):
    """The paper's estimator behind the backend contract.

    Dispatch mirrors the pre-refactor executor exactly so the refactor
    is bit-exact: an empty window returns no estimates and no solver
    result, ``fifo_mode="sdr"`` windows under the SDR unknown cap take
    the lift, everything else takes the linearized QP.
    """

    name = "domo-qp"
    capabilities = BackendCapabilities(
        exact=True, supports_relaxation=True, cost_rank=2
    )

    def solve_window(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        if system.num_unknowns == 0:
            return WindowSolution(estimates={}, solver="empty", result=None)
        if (
            spec.fifo_mode == "sdr"
            and system.num_unknowns <= spec.sdr.max_unknowns
        ):
            # Late import: repro.core.sdr itself imports this module for
            # the shared Eq. (8) helpers.
            from repro.core.sdr import solve_window_sdr_info

            estimates, result = solve_window_sdr_info(system, spec.sdr)
            return WindowSolution(
                estimates=estimates, solver="sdr", result=result
            )
        estimates, result = estimate_arrival_times_info(
            system, spec.estimator
        )
        return WindowSolution(
            estimates=estimates, solver="linearized", result=result
        )

    def solve_relaxed(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        # Relaxed re-solves always use the linearized QP — the SDR lift
        # exists to encode the FIFO products, which the ladder is
        # discarding anyway.
        estimates, result = estimate_arrival_times_info(
            system, spec.estimator
        )
        return WindowSolution(
            estimates=estimates, solver="linearized", result=result
        )
