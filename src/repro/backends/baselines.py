"""Baseline reconstructors wrapped as estimator backends.

These adapters put the paper's two comparison baselines behind the same
per-window :class:`~repro.backends.base.EstimatorBackend` contract as
the Domo QP and the CS engine, so a stream — or the benchmark harness —
can swap them in by name and every downstream consumer (window state
machine, serve tier, run reports) works unchanged.

Both are *approximate* backends: they ignore the constraint-system rows
and work from the packets alone, which also means a ladder-relaxed
re-solve would return the same answer — ``supports_relaxation`` is off.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendCapabilities,
    EstimatorBackend,
    WindowSolution,
)
from repro.core.constraints import ConstraintSystem
from repro.core.records import ArrivalKey


def _clamped(system: ConstraintSystem, key: ArrivalKey, value: float) -> float:
    low, high = system.intervals.get(
        key, system.index.trivial_interval(key)
    )
    return float(min(max(value, low), high))


class MntBackend(EstimatorBackend):
    """MNT bracketing (Keller et al., SenSys'12) per window.

    Runs :class:`~repro.baselines.mnt.MntReconstructor` over the
    window's packets and reports the bound midpoints — the estimate the
    paper's evaluation assigns to MNT (§VI.A).
    """

    name = "mnt"
    capabilities = BackendCapabilities(
        exact=False, supports_relaxation=False, cost_rank=1
    )

    def solve_window(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        if system.num_unknowns == 0:
            return WindowSolution(estimates={}, solver="empty", result=None)
        from repro.baselines.mnt import MntConfig, MntReconstructor

        reconstructor = MntReconstructor(
            MntConfig(omega_ms=system.index.omega_ms)
        )
        reconstruction = reconstructor.reconstruct(system.index.packets)
        estimates = {
            key: _clamped(
                system,
                key,
                0.5 * sum(reconstruction.intervals[key]),
            )
            for key in system.variables
        }
        return WindowSolution(estimates=estimates, solver="mnt", result=None)


class MessageTracingBackend(EstimatorBackend):
    """MessageTracing (Sundaram & Eugster) per window.

    MessageTracing reconstructs *order*, never time: its causal DAG has
    no global clock, and the per-node logs it stitches are not part of a
    window's received-packet view anyway. The faithful per-window
    timing estimate an order-only method induces is uniform spacing —
    each packet's exact total delay split evenly over its hops —
    clamped into the Eq. (5) intervals.
    """

    name = "message-tracing"
    capabilities = BackendCapabilities(
        exact=False, supports_relaxation=False, cost_rank=0
    )

    def solve_window(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        if system.num_unknowns == 0:
            return WindowSolution(estimates={}, solver="empty", result=None)
        estimates: dict[ArrivalKey, float] = {}
        for key in system.variables:
            packet = system.index.by_id[key.packet_id]
            hops = packet.path_length - 1
            total = packet.sink_arrival_ms - packet.generation_time_ms
            value = packet.generation_time_ms + total * key.hop / hops
            estimates[key] = _clamped(system, key, value)
        return WindowSolution(
            estimates=estimates, solver="message-tracing", result=None
        )
