"""Compressed-sensing delay tomography backend (``cs``).

The Domo QP estimates every interior arrival time directly — accurate,
but each window pays a full ADMM solve. The CS backend trades per-packet
resolution inside a window for a much cheaper solve, following the
network-tomography literature (synchronization-free CS delay tomography,
arXiv:1402.5196; FRANTIC's reference-based recovery, arXiv:1312.0825):

1. **Routing matrix.** Each received packet contributes one row: the
   end-to-end delay ``y_p = t_sink(p) - t_0(p)`` is the sum of the
   sojourn delays at the forwarding nodes ``path[0..L-2]`` it crossed.
   Columns are the forwarding nodes seen in the window, so the system is
   ``y = A d`` with ``A`` a 0/1 path-incidence matrix.

2. **Reference deltas.** Per FRANTIC, we solve for the *deviation* from
   a cheap reference rather than the raw delays: every hop costs at
   least the paper's ``omega`` (minimum software processing delay), so
   with ``x = d - omega`` the residual observation is
   ``y' = y - hops(p) * omega = A x`` and ``x >= 0`` is sparse whenever
   most nodes are uncongested — the regime CS recovery needs.

3. **Sparse recovery.** ``x`` is recovered with ISTA (iterative
   soft-thresholding for the nonnegative LASSO) or OMP (greedy orthogonal
   matching pursuit), selected by :class:`CsConfig.solver`. Both are a
   handful of dense matrix-vector products on a (packets x nodes) matrix
   — no constraint stack, no ADMM.

4. **Per-packet expansion.** Node estimates go back to per-packet
   :class:`~repro.core.records.ArrivalKey` values by distributing each
   packet's *exact* total delay along its path proportionally to the
   recovered per-node delays, then clamping into the Eq. (5) trivial
   intervals. Endpoints stay exact and the expansion is monotone along
   the path, so the output always satisfies the order constraints.

Accuracy envelope: per-node aggregation assumes sojourn times are
roughly stationary within one window, so the backend recovers
congestion *location and magnitude* well but cannot see per-packet
jitter at a single node — that is exactly the accuracy the Eq. (8) QP
buys. ``bench_backend_tradeoff`` pins the resulting MAE next to the
windows/sec gain.
"""

from __future__ import annotations

from dataclasses import dataclass
import time

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    EstimatorBackend,
    WindowSolution,
)
from repro.core.constraints import ConstraintSystem
from repro.core.records import ArrivalKey
from repro.optim.result import SolverResult, SolverStatus


@dataclass
class CsConfig:
    """Knobs of the compressed-sensing recovery."""

    #: sparse-recovery algorithm: "ista" (nonnegative LASSO via
    #: iterative soft thresholding) or "omp" (orthogonal matching
    #: pursuit).
    solver: str = "ista"
    #: ISTA: soft-threshold weight as a fraction of ||A^T y'||_inf —
    #: scale-free across windows with very different delay magnitudes.
    lambda_scale: float = 0.01
    #: ISTA iteration cap.
    max_iterations: int = 200
    #: ISTA early stop: relative change of x between iterations.
    tolerance: float = 1e-6
    #: OMP: residual-norm fraction of ||y'|| at which to stop adding
    #: columns (also stops at full column rank).
    omp_residual_tol: float = 1e-3

    def __post_init__(self) -> None:
        if self.solver not in ("ista", "omp"):
            raise ValueError(
                f"cs solver must be 'ista' or 'omp', got {self.solver!r}"
            )
        if self.max_iterations <= 0:
            raise ValueError("cs max_iterations must be > 0")
        if self.lambda_scale < 0:
            raise ValueError("cs lambda_scale must be >= 0")


def build_routing_system(
    system: ConstraintSystem,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """The window's (A, y', nodes) compressed-sensing system.

    Rows are packets with at least one forwarding hop; columns are the
    forwarding nodes of the window in sorted order; ``y'`` is the
    end-to-end delay minus the ``omega`` floor of every hop (the
    FRANTIC-style reference delta).
    """
    omega = system.index.omega_ms
    nodes = sorted(system.index.node_visits)
    column = {node: j for j, node in enumerate(nodes)}
    rows: list[np.ndarray] = []
    deltas: list[float] = []
    for packet in system.index.packets:
        hops = packet.path_length - 1
        if hops < 1:
            continue
        row = np.zeros(len(nodes))
        for node in packet.path[:-1]:
            row[column[node]] += 1.0
        rows.append(row)
        deltas.append(
            packet.sink_arrival_ms
            - packet.generation_time_ms
            - hops * omega
        )
    if not rows:
        return np.zeros((0, len(nodes))), np.zeros(0), nodes
    return np.vstack(rows), np.asarray(deltas), nodes


def ista_recover(
    A: np.ndarray, y: np.ndarray, config: CsConfig
) -> tuple[np.ndarray, int]:
    """Nonnegative LASSO ``min ||Ax-y||^2 + lam*||x||_1, x >= 0`` via ISTA.

    Returns ``(x, iterations)``. The step size is ``1/L`` with ``L`` the
    largest eigenvalue of ``A^T A`` (power iteration), the thresholding
    is one-sided because delays never fall below the omega reference.
    """
    n = A.shape[1]
    x = np.zeros(n)
    if A.size == 0 or not np.any(y):
        return x, 0
    gram = A.T @ A
    # Power iteration for the Lipschitz constant of the gradient.
    v = np.ones(n) / np.sqrt(n)
    for _ in range(30):
        w = gram @ v
        norm = np.linalg.norm(w)
        if norm <= 0:
            break
        v = w / norm
    lipschitz = float(v @ (gram @ v))
    if lipschitz <= 0:
        return x, 0
    step = 1.0 / lipschitz
    correlation = A.T @ y
    lam = config.lambda_scale * float(np.max(np.abs(correlation)))
    threshold = step * lam
    iterations = 0
    for iterations in range(1, config.max_iterations + 1):
        gradient = gram @ x - correlation
        x_next = np.maximum(x - step * gradient - threshold, 0.0)
        change = np.linalg.norm(x_next - x)
        scale = max(np.linalg.norm(x), 1.0)
        x = x_next
        if change <= config.tolerance * scale:
            break
    return x, iterations


def omp_recover(
    A: np.ndarray, y: np.ndarray, config: CsConfig
) -> tuple[np.ndarray, int]:
    """Orthogonal matching pursuit with a nonnegativity clamp.

    Greedily grows the support by the column most correlated with the
    residual, re-fits least squares on the support each round, and stops
    when the residual falls under ``omp_residual_tol * ||y||`` or the
    support saturates. Returns ``(x, iterations)``.
    """
    m, n = A.shape
    x = np.zeros(n)
    if A.size == 0 or not np.any(y):
        return x, 0
    norms = np.linalg.norm(A, axis=0)
    usable = norms > 0
    residual = y.astype(float).copy()
    target = config.omp_residual_tol * max(np.linalg.norm(y), 1e-12)
    support: list[int] = []
    iterations = 0
    max_support = min(m, int(np.count_nonzero(usable)))
    while len(support) < max_support:
        correlation = A.T @ residual
        correlation[~usable] = 0.0
        correlation[support] = 0.0
        best = int(np.argmax(np.abs(correlation)))
        if abs(correlation[best]) <= 1e-12:
            break
        support.append(best)
        iterations += 1
        coeffs, *_ = np.linalg.lstsq(A[:, support], y, rcond=None)
        coeffs = np.maximum(coeffs, 0.0)
        residual = y - A[:, support] @ coeffs
        if np.linalg.norm(residual) <= target:
            break
    if support:
        x[support] = coeffs
    return x, iterations


def expand_to_arrival_times(
    system: ConstraintSystem, node_extra: dict[int, float]
) -> dict[ArrivalKey, float]:
    """Per-packet arrival estimates from per-node delay estimates.

    Each packet's exact total delay is distributed along its path
    proportionally to ``omega + node_extra[node]`` per hop, then every
    interior estimate is clamped into its Eq. (5) trivial interval, so
    endpoints are exact and order constraints hold by construction.
    """
    omega = system.index.omega_ms
    estimates: dict[ArrivalKey, float] = {}
    for packet in system.index.packets:
        last = packet.path_length - 1
        if last < 2:
            continue
        weights = [
            max(omega + node_extra.get(node, 0.0), omega, 1e-9)
            for node in packet.path[:-1]
        ]
        total_weight = sum(weights)
        total_delay = packet.sink_arrival_ms - packet.generation_time_ms
        cumulative = 0.0
        for hop in range(1, last):
            cumulative += weights[hop - 1]
            key = ArrivalKey(packet.packet_id, hop)
            if key not in system.variables:
                continue
            value = (
                packet.generation_time_ms
                + total_delay * cumulative / total_weight
            )
            low, high = system.intervals.get(
                key, system.index.trivial_interval(key)
            )
            estimates[key] = float(min(max(value, low), high))
    return estimates


class CsBackend(EstimatorBackend):
    """Compressed-sensing tomography: cheap per-node recovery per window."""

    name = "cs"
    capabilities = BackendCapabilities(
        exact=False, supports_relaxation=False, cost_rank=1
    )

    def solve_window(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        config: CsConfig = spec.cs
        if system.num_unknowns == 0:
            return WindowSolution(estimates={}, solver="empty", result=None)
        started = time.perf_counter()
        A, y, nodes = build_routing_system(system)
        if config.solver == "omp":
            x, iterations = omp_recover(A, y, config)
        else:
            x, iterations = ista_recover(A, y, config)
        node_extra = {node: float(x[j]) for j, node in enumerate(nodes)}
        estimates = expand_to_arrival_times(system, node_extra)
        residual = (
            float(np.linalg.norm(A @ x - y, np.inf)) if A.size else 0.0
        )
        result = SolverResult(
            status=SolverStatus.OPTIMAL,
            x=x,
            objective=float(np.dot(A @ x - y, A @ x - y)) if A.size else 0.0,
            iterations=iterations,
            primal_residual=residual,
            dual_residual=0.0,
            solve_time_s=time.perf_counter() - started,
            info={"nodes": len(nodes), "rows": int(A.shape[0])},
        )
        return WindowSolution(
            estimates=estimates,
            solver=f"cs-{config.solver}",
            result=result,
        )
