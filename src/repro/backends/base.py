"""The estimator-backend contract and its string-keyed registry.

Domo's Eq. (8) QP is the accuracy gold standard of the pipeline, but it
is also its throughput ceiling: every window pays a full ADMM solve.
This module makes the per-window estimator a *pluggable* component so
the batch pipeline, the streaming engine and the serve tier can pick a
different accuracy/throughput point per run — or per served stream —
without touching the window state machine around it.

A backend consumes one sealed window (a
:class:`~repro.core.preprocessor.WindowSystem`'s constraint system) and
produces a :class:`WindowSolution`: estimates for the unknown
:class:`~repro.core.records.ArrivalKey` quantities plus the solver
metadata the telemetry layer records. Backends are registered under
short stable names (``domo-qp``, ``cs``, ``mnt``, ``message-tracing``)
and resolved with :func:`get_backend`; unknown names raise
:class:`UnknownBackendError` listing what *is* registered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import ConstraintSystem
from repro.core.records import ArrivalKey
from repro.optim.result import SolverResult


@dataclass
class WindowSolution:
    """What one backend solve produced for one window.

    Attributes:
        estimates: value per unknown :class:`ArrivalKey` of the window
            (knowns are never included).
        solver: short solver label recorded in window telemetry
            (e.g. ``"linearized"``, ``"sdr"``, ``"cs-ista"``).
        result: the numeric solver's
            :class:`~repro.optim.result.SolverResult` when one ran, for
            iteration/residual telemetry; ``None`` for closed-form or
            trivial solves.
    """

    estimates: dict[ArrivalKey, float]
    solver: str
    result: SolverResult | None = None


@dataclass(frozen=True)
class BackendCapabilities:
    """Static properties the pipeline may branch on.

    Attributes:
        exact: whether the backend honors the full constraint system
            (order + sum + FIFO rows) rather than an approximation.
        supports_relaxation: whether re-solving a ladder-relaxed system
            with this backend is meaningful. Backends that never consume
            the constraint rows (the baselines, the CS engine) return
            the same answer at every rung, so the ladder skips them.
        cost_rank: coarse relative per-window cost, 0 = cheapest. Used
            by the degradation ladder to decide what counts as a
            *downgrade* (only strictly cheaper backends are eligible).
    """

    exact: bool = True
    supports_relaxation: bool = True
    cost_rank: int = 0


class EstimatorBackend:
    """One per-window estimation strategy.

    Subclasses implement :meth:`solve_window`; the spec passed in is the
    :class:`~repro.runtime.executor.WindowSolveSpec` of the run, which
    carries every backend's config (``estimator``, ``sdr``, ``cs``) so
    one frozen picklable object can cross the process-pool boundary
    regardless of which backend the worker dispatches to.
    """

    #: registry key; subclasses must override.
    name: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()

    def solve_window(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        """Estimate every unknown arrival time of one window.

        May raise :class:`~repro.optim.result.SolverError`; the executor
        then walks the degradation ladder.
        """
        raise NotImplementedError

    def solve_relaxed(
        self, system: ConstraintSystem, spec
    ) -> WindowSolution:
        """Solve a ladder-relaxed copy of the system.

        Default: same as :meth:`solve_window`. The ``domo-qp`` backend
        overrides this to force the linearized QP (the SDR lift encodes
        FIFO products the ladder is discarding anyway).
        """
        return self.solve_window(system, spec)


class UnknownBackendError(ValueError):
    """Raised by :func:`get_backend` for an unregistered backend name."""

    def __init__(self, name: str, known: list[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown estimator backend {name!r}; "
            f"registered backends: {', '.join(known)}"
        )


_REGISTRY: dict[str, EstimatorBackend] = {}


def register_backend(backend: EstimatorBackend) -> EstimatorBackend:
    """Register ``backend`` under ``backend.name`` (idempotent by name)."""
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> EstimatorBackend:
    """The backend registered under ``name``.

    Raises :class:`UnknownBackendError` (a ``ValueError``) listing the
    registered names when ``name`` is not one of them.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def available_backends() -> dict[str, EstimatorBackend]:
    """Name -> backend snapshot of the registry (sorted by name)."""
    return {name: _REGISTRY[name] for name in backend_names()}
