"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric a reconstruction run
emits. Three primitives cover the pipeline's needs:

* **counters** — monotone event tallies (`stream.ingested`,
  `executor.pool_degraded`);
* **gauges** — last/min/max of a sampled level (`executor.in_flight`,
  `stream.backlog`);
* **histograms** — distributions over *fixed* bucket edges
  (`qp.iterations`, `window.solve_seconds`). Edges are declared
  constants, never derived from observed data or wall clocks, so two
  runs of the same workload bucket identically and snapshots from
  parallel workers merge deterministically.

Merging is the core contract: :meth:`MetricsRegistry.merge` folds a
snapshot (e.g. shipped back from a process-pool worker) into the
registry, and the result is independent of merge order — counters and
histogram buckets add, gauges combine via min/max (``last`` keeps the
largest value seen so the merged gauge is order-independent).

A module-level *current registry* makes instrumentation call sites
one-liners (:func:`inc`, :func:`set_gauge`, :func:`observe`);
:func:`isolated_registry` swaps in a fresh registry for the duration of
a ``with`` block (used by the CLI to scope a run report, by the
executor to capture per-window worker metrics, and by tests), and
:func:`disabled_metrics` installs a no-op registry so the
"metrics off" path is a real code path rather than a convention.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "COUNT_EDGES",
    "ITERATION_EDGES",
    "RESIDUAL_EDGES",
    "TIME_EDGES_S",
    "current_registry",
    "disabled_metrics",
    "inc",
    "isolated_registry",
    "observe",
    "registry_scope",
    "set_gauge",
]

#: wall-clock durations, seconds (spans, window/QP solve times).
TIME_EDGES_S = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0,
)
#: ADMM iteration counts (solver caps sit at 3000-4000).
ITERATION_EDGES = (10.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0)
#: primal/dual residuals (tolerances are ~1e-5).
RESIDUAL_EDGES = (1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)
#: generic small-count distributions (unknowns per window, queue depth).
COUNT_EDGES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


@dataclass
class Counter:
    """Monotone event count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> int:
        return self.value


@dataclass
class Gauge:
    """Last/min/max of a sampled level.

    ``last`` is defined as the *largest* value ever set so that merging
    two gauges is commutative; for levels like queue depth the
    interesting number is the high-water mark anyway, and ``min``/``max``
    carry the envelope.
    """

    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    samples: int = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.samples += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = max(self.last, value) if self.samples > 1 else value

    def as_dict(self) -> dict:
        return {
            "last": self.last,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


@dataclass
class Histogram:
    """Distribution over fixed, strictly increasing bucket edges.

    ``counts[i]`` tallies observations ``<= edges[i]``; the final slot
    counts overflows. ``sum``/``min``/``max`` ride along so means and
    envelopes survive serialization without the raw samples.
    """

    edges: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        self.edges = tuple(float(e) for e in self.edges)
        if not self.edges or any(
            b <= a for a, b in zip(self.edges, self.edges[1:])
        ):
            raise ValueError(
                f"histogram edges must be strictly increasing, got {self.edges}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:  # NaN observations carry no information
            return
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class SpanStats:
    """Aggregated timings of one span path (see :mod:`repro.obs.spans`)."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = float("-inf")
    errors: int = 0

    def record(self, duration_s: float, error: bool = False) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)
        if error:
            self.errors += 1

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "errors": self.errors,
        }


class MetricsRegistry:
    """One process's (or one run's) metrics, merge-safe and serializable."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStats] = {}

    # -- primitives ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str, edges: tuple[float, ...]) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(edges=edges)
            elif hist.edges != tuple(float(e) for e in edges):
                raise ValueError(
                    f"histogram {name!r} already registered with edges "
                    f"{hist.edges}, got {tuple(edges)}"
                )
            return hist

    # -- convenience write paths (no-ops when disabled) ----------------

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float, edges: tuple[float, ...]) -> None:
        if self.enabled:
            self.histogram(name, edges).observe(value)

    def record_span(self, path: str, duration_s: float, error: bool) -> None:
        if not self.enabled:
            return
        with self._lock:
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = SpanStats()
        stats.record(duration_s, error)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict copy of everything (picklable, JSON-safe shapes)."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.as_dict()
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in sorted(self._histograms.items())
                },
                "spans": {
                    path: stats.as_dict()
                    for path, stats in self._spans.items()
                },
            }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` into this registry (order-independent)."""
        if not snapshot or not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            if data.get("samples", 0):
                fresh = gauge.samples == 0
                gauge.samples += data["samples"]
                gauge.min = min(gauge.min, data["min"])
                gauge.max = max(gauge.max, data["max"])
                gauge.last = (
                    data["last"] if fresh else max(gauge.last, data["last"])
                )
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["edges"]))
            hist.counts = [
                a + b for a, b in zip(hist.counts, data["counts"])
            ]
            hist.count += data["count"]
            hist.sum += data["sum"]
            hist.min = min(hist.min, data["min"])
            hist.max = max(hist.max, data["max"])
        for path, data in snapshot.get("spans", {}).items():
            with self._lock:
                stats = self._spans.get(path)
                if stats is None:
                    stats = self._spans[path] = SpanStats()
            stats.count += data["count"]
            stats.total_s += data["total_s"]
            stats.min_s = min(stats.min_s, data["min_s"])
            stats.max_s = max(stats.max_s, data["max_s"])
            stats.errors += data["errors"]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()

    def span_paths(self) -> dict[str, SpanStats]:
        """Span aggregates in first-seen (stage) order."""
        return dict(self._spans)


# ----------------------------------------------------------------------
# The current registry (module-level, swap-scoped)
# ----------------------------------------------------------------------

_default_registry = MetricsRegistry()
_current = threading.local()


def current_registry() -> MetricsRegistry:
    """The registry instrumentation writes to right now."""
    return getattr(_current, "registry", None) or _default_registry


class _RegistryScope:
    """``with`` scope that installs ``registry`` as the current one."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = getattr(_current, "registry", None)
        _current.registry = self.registry
        return self.registry

    def __exit__(self, *exc_info) -> None:
        _current.registry = self._previous


def isolated_registry(enabled: bool = True) -> _RegistryScope:
    """Scope a fresh registry: ``with isolated_registry() as reg: ...``."""
    return _RegistryScope(MetricsRegistry(enabled=enabled))


def registry_scope(registry: MetricsRegistry) -> _RegistryScope:
    """Scope an *existing* registry as the current one.

    The multi-session form of :func:`isolated_registry`: the serve layer
    keeps one long-lived registry per stream session and re-installs it
    around every engine call (which may run on a different worker thread
    each time — the current registry is thread-local), then merges the
    session registries into the server registry at drain time.
    """
    return _RegistryScope(registry)


def disabled_metrics() -> _RegistryScope:
    """Scope in which every metric write is a no-op."""
    return _RegistryScope(MetricsRegistry(enabled=False))


def inc(name: str, amount: int = 1) -> None:
    current_registry().inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    current_registry().set_gauge(name, value)


def observe(name: str, value: float, edges: tuple[float, ...]) -> None:
    current_registry().observe(name, value, edges)
