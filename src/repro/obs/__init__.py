"""Unified observability layer: metrics, stage traces, run reports.

The pipeline is an inference-from-aggregates system; this package makes
the pipeline itself observable the same way. Three pieces:

* :mod:`repro.obs.registry` — a process-wide :class:`MetricsRegistry`
  of counters, gauges and fixed-edge histograms with deterministic
  merge semantics (worker snapshots fold in order-independently);
* :mod:`repro.obs.spans` — nestable :func:`span` timers producing the
  stage trace ``ingest → validate → seal → window_build → solve →
  commit``, aggregated per slash-joined path;
* :mod:`repro.obs.report` — the canonical ``domo.run_report/1`` JSON
  document (:class:`RunReport`), its validator and pretty-printer,
  written by ``domo ... --metrics-out`` and read by ``domo report``.

The two historical telemetry modules live here now
(:mod:`repro.obs.solver_telemetry`, :mod:`repro.obs.stream_telemetry`)
and remain importable under their original names
``repro.runtime.telemetry`` and ``repro.stream.telemetry``.
"""

from repro.obs.registry import (
    COUNT_EDGES,
    ITERATION_EDGES,
    RESIDUAL_EDGES,
    TIME_EDGES_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    disabled_metrics,
    inc,
    isolated_registry,
    observe,
    set_gauge,
)
from repro.obs.report import (
    RUN_REPORT_SCHEMA,
    RunReport,
    build_run_report,
    collect_env,
    format_run_report,
    sanitize_json,
    validate_report,
    write_run_report,
)
from repro.obs.solver_telemetry import (
    SOLVER_KINDS,
    WindowTelemetry,
    format_telemetry_report,
    summarize_telemetry,
)
from repro.obs.spans import current_span_path, span
from repro.obs.stream_telemetry import (
    StreamTelemetry,
    format_stream_report,
    merge_stream_stats,
)

__all__ = [
    "COUNT_EDGES",
    "ITERATION_EDGES",
    "RESIDUAL_EDGES",
    "RUN_REPORT_SCHEMA",
    "SOLVER_KINDS",
    "TIME_EDGES_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunReport",
    "StreamTelemetry",
    "WindowTelemetry",
    "build_run_report",
    "collect_env",
    "current_registry",
    "current_span_path",
    "disabled_metrics",
    "format_run_report",
    "format_stream_report",
    "format_telemetry_report",
    "inc",
    "isolated_registry",
    "merge_stream_stats",
    "observe",
    "sanitize_json",
    "set_gauge",
    "span",
    "summarize_telemetry",
    "validate_report",
    "write_run_report",
]
