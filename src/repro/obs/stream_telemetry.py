"""Observability counters of the streaming reconstruction engine.

The batch pipeline's solver telemetry (``repro.runtime.telemetry``)
describes individual window solves; this module adds the *lifecycle*
dimension the streaming engine introduces: how far the watermark lags the
newest arrival, how many sealed windows are waiting on the executor, how
long a window takes from seal to commit, and how aggressively committed
windows evict their packets. :func:`merge_stream_stats` folds the
counters into the flat ``stats`` dict next to the solver telemetry so
operators read one report.

This module lives in :mod:`repro.obs` and is re-exported under its
historical name ``repro.stream.telemetry``. :meth:`StreamTelemetry
.publish` mirrors the running totals into the metrics registry as
``stream.*`` gauges — gauges, not counters, because totals are monotone
and re-publishing a total is idempotent under the gauge's max-merge,
so the engine can publish after every chunk without double counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import INF
from repro.obs.registry import TIME_EDGES_S, MetricsRegistry, current_registry


@dataclass
class StreamTelemetry:
    """Running counters of one :class:`StreamingReconstructor`'s life."""

    #: packets accepted into the engine (after validation/dedup).
    ingested: int = 0
    #: packets rejected because their id was already ingested.
    duplicates: int = 0
    #: packets quarantined because every window that would have kept
    #: their estimate had already sealed when they arrived.
    late_quarantined: int = 0
    #: packets whose member windows have all committed and been released.
    evicted_packets: int = 0
    #: high-water mark of packets resident in the engine at once.
    peak_resident_packets: int = 0
    #: windows that entered the sealed state (kept packets present).
    windows_sealed: int = 0
    #: sealed windows skipped without a solve (members but no kept ids).
    windows_skipped: int = 0
    #: windows whose results have been committed.
    windows_committed: int = 0
    #: high-water mark of sealed-but-uncommitted windows (backlog).
    max_backlog: int = 0
    #: total / worst seal->commit latency over committed windows, seconds.
    seal_to_commit_total_s: float = 0.0
    seal_to_commit_max_s: float = 0.0
    #: newest sink-arrival time ingested (event time, ms).
    max_event_ms: float = -INF
    #: current watermark (max_event_ms - lateness allowance, ms).
    watermark_ms: float = -INF
    #: per-window seal->commit latencies, in commit order (seconds).
    seal_to_commit_s: list[float] = field(default_factory=list)

    @property
    def resident_packets(self) -> int:
        """Packets currently held by the engine (ingested minus evicted)."""
        return self.ingested - self.evicted_packets - self.late_quarantined

    @property
    def watermark_lag_ms(self) -> float:
        """How far behind the newest arrival the watermark sits."""
        if self.max_event_ms == -INF or self.watermark_ms == -INF:
            return INF
        return self.max_event_ms - self.watermark_ms

    @property
    def mean_seal_to_commit_s(self) -> float:
        if not self.windows_committed:
            return 0.0
        return self.seal_to_commit_total_s / self.windows_committed

    def record_commit(self, latency_s: float) -> None:
        self.windows_committed += 1
        self.seal_to_commit_total_s += latency_s
        self.seal_to_commit_max_s = max(self.seal_to_commit_max_s, latency_s)
        self.seal_to_commit_s.append(latency_s)
        current_registry().observe(
            "stream.seal_to_commit_seconds", latency_s, TIME_EDGES_S
        )

    def publish(self, registry: MetricsRegistry | None = None) -> None:
        """Mirror the running totals into ``stream.*`` gauges."""
        registry = registry or current_registry()
        registry.set_gauge("stream.ingested", self.ingested)
        registry.set_gauge("stream.duplicates", self.duplicates)
        registry.set_gauge("stream.late_quarantined", self.late_quarantined)
        registry.set_gauge("stream.evicted_packets", self.evicted_packets)
        registry.set_gauge("stream.resident_packets", self.resident_packets)
        registry.set_gauge(
            "stream.peak_resident_packets", self.peak_resident_packets
        )
        registry.set_gauge("stream.windows_sealed", self.windows_sealed)
        registry.set_gauge("stream.windows_skipped", self.windows_skipped)
        registry.set_gauge("stream.windows_committed", self.windows_committed)
        registry.set_gauge("stream.max_backlog", self.max_backlog)
        lag = self.watermark_lag_ms
        if lag != INF:
            registry.set_gauge("stream.watermark_lag_ms", lag)

    def as_dict(self) -> dict:
        return {
            "ingested": self.ingested,
            "duplicates": self.duplicates,
            "late_quarantined": self.late_quarantined,
            "evicted_packets": self.evicted_packets,
            "resident_packets": self.resident_packets,
            "peak_resident_packets": self.peak_resident_packets,
            "windows_sealed": self.windows_sealed,
            "windows_skipped": self.windows_skipped,
            "windows_committed": self.windows_committed,
            "max_backlog": self.max_backlog,
            "seal_to_commit_mean_s": self.mean_seal_to_commit_s,
            "seal_to_commit_max_s": self.seal_to_commit_max_s,
            "watermark_ms": self.watermark_ms,
            "watermark_lag_ms": self.watermark_lag_ms,
        }


def merge_stream_stats(stats: dict, telemetry: StreamTelemetry) -> dict:
    """Layer the streaming lifecycle counters into a run's ``stats``."""
    stats["streaming"] = telemetry.as_dict()
    telemetry.publish()
    return stats


def format_stream_report(telemetry: StreamTelemetry) -> str:
    """Operator-readable summary for the CLI ``stream`` subcommand."""
    lines = [
        f"packets ingested      : {telemetry.ingested}"
        f" ({telemetry.duplicates} duplicates dropped)",
        f"late quarantined      : {telemetry.late_quarantined}",
        f"windows committed     : {telemetry.windows_committed}"
        f" ({telemetry.windows_skipped} skipped)",
        f"evicted packets       : {telemetry.evicted_packets}"
        f" (resident {telemetry.resident_packets}, "
        f"peak {telemetry.peak_resident_packets})",
        f"peak backlog          : {telemetry.max_backlog} windows",
        "seal->commit latency  : "
        f"mean {1e3 * telemetry.mean_seal_to_commit_s:.1f} ms / "
        f"max {1e3 * telemetry.seal_to_commit_max_s:.1f} ms",
    ]
    if telemetry.watermark_lag_ms != INF:
        lines.append(
            f"watermark lag         : {telemetry.watermark_lag_ms:.0f} ms"
        )
    return "\n".join(lines)
