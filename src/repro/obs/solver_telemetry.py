"""Structured solver telemetry for the windowed estimation pipeline.

Each window solve produces one :class:`WindowTelemetry` record — which
solver ran, how it terminated, how many ADMM iterations it took, the
final residuals and the wall-clock time. :func:`summarize_telemetry`
folds a run's records into the flat ``stats`` dict exposed on
:class:`~repro.core.pipeline.DelayReconstruction`, and
:func:`format_telemetry_report` renders an operator-readable summary for
the CLI's ``--solver-stats`` path.

This module lives in :mod:`repro.obs` (the observability layer) and is
re-exported under its historical name ``repro.runtime.telemetry``.
Registry publication happens at solve time
(:func:`repro.runtime.executor.solve_one_window` feeds the
``window.*`` histograms through an isolated per-window registry), so
:func:`summarize_telemetry` stays a pure fold — safe to call repeatedly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.obs.registry import (
    COUNT_EDGES,
    ITERATION_EDGES,
    RESIDUAL_EDGES,
    TIME_EDGES_S,
    MetricsRegistry,
)

#: solver kinds a window solve can report. The first four are the
#: ``domo-qp`` backend's (and the midpoint fallback); the rest come from
#: the alternative estimator backends (:mod:`repro.backends`).
SOLVER_KINDS = (
    "linearized",
    "sdr",
    "fallback",
    "empty",
    "cs-ista",
    "cs-omp",
    "mnt",
    "message-tracing",
)


@dataclass(frozen=True)
class WindowTelemetry:
    """Observability record of one window solve."""

    #: position of the window in the planned sequence (0-based).
    window_index: int
    #: packets whose constraints entered this window's system.
    num_packets: int
    #: unknown arrival times solved for.
    num_unknowns: int
    #: estimates kept from this window (keep-region packets).
    num_kept: int
    #: "linearized" (Eq. (8) QP), "sdr" (lifted SDP), "fallback"
    #: (SolverError -> interval midpoints) or "empty" (no unknowns).
    solver: str
    #: solver termination status value (e.g. "optimal"), or "fallback".
    status: str
    #: ADMM iterations performed (0 when nothing iterated).
    iterations: int
    #: final primal/dual residuals (inf-norm; NaN when not solved).
    primal_residual: float
    dual_residual: float
    #: wall-clock seconds spent solving this window.
    solve_time_s: float
    #: degradation-ladder rung that produced the estimates: 0 = full
    #: system, then one rung per dropped constraint family
    #: (drop_sum_upper, drop_fifo, order_only), highest = midpoints.
    relax_rung: int = 0
    #: human-readable name of the rung ("full" when nothing was relaxed).
    relax_stage: str = "full"
    #: solve attempts made on this window (1 = first try succeeded).
    solve_attempts: int = 1
    #: estimator backend that produced the estimates (registry name;
    #: may differ from the configured backend after a ladder downgrade).
    backend: str = "domo-qp"

    def as_dict(self) -> dict:
        return asdict(self)

    def publish(self, registry: MetricsRegistry) -> None:
        """Feed this record into a metrics registry (once per window)."""
        registry.inc("pipeline.windows_solved")
        registry.inc(f"pipeline.windows.{self.solver}")
        registry.inc(f"pipeline.backend.{self.backend}")
        registry.observe(
            "window.solve_seconds", self.solve_time_s, TIME_EDGES_S
        )
        registry.observe(
            "window.unknowns", float(self.num_unknowns), COUNT_EDGES
        )
        if self.iterations:
            registry.observe(
                "window.iterations", float(self.iterations), ITERATION_EDGES
            )
        for name, value in (
            ("window.primal_residual", self.primal_residual),
            ("window.dual_residual", self.dual_residual),
        ):
            if value == value:  # skip NaN
                registry.observe(name, value, RESIDUAL_EDGES)
        if self.relax_rung > 0:
            registry.inc("pipeline.relaxed_windows")
            registry.inc(f"pipeline.relax_rung.{self.relax_stage}")
        if self.solve_attempts > 1:
            registry.inc("pipeline.relax_retries", self.solve_attempts - 1)


def record_solver_result(prefix: str, result):
    """Publish one low-level solve (QP/SDP/LP) into the current registry.

    ``result`` is any :class:`~repro.optim.result.SolverResult`-shaped
    object; publication is pure observation, so returning the result
    unchanged lets call sites instrument a return expression in place.
    """
    from repro.obs.registry import current_registry

    registry = current_registry()
    status = getattr(getattr(result, "status", None), "value", "unknown")
    registry.inc(f"{prefix}.solves")
    registry.inc(f"{prefix}.status.{status}")
    registry.observe(
        f"{prefix}.solve_seconds",
        getattr(result, "solve_time_s", 0.0),
        TIME_EDGES_S,
    )
    iterations = getattr(result, "iterations", 0)
    if iterations:
        registry.observe(
            f"{prefix}.iterations", float(iterations), ITERATION_EDGES
        )
    for field_name in ("primal_residual", "dual_residual"):
        value = getattr(result, field_name, float("nan"))
        if value == value and value != float("inf"):
            registry.observe(f"{prefix}.{field_name}", value, RESIDUAL_EDGES)
    return result


def summarize_telemetry(records: list[WindowTelemetry]) -> dict:
    """Aggregate per-window records into the pipeline's ``stats`` dict.

    Keeps the pre-existing keys (``sdr_windows``, ``linearized_windows``,
    ``failed_windows``) so callers written against the serial pipeline
    keep working, and layers the new observability totals on top.
    """
    stats = {
        "windows": len(records),
        "sdr_windows": 0,
        "linearized_windows": 0,
        "failed_windows": 0,
        "empty_windows": 0,
        "total_unknowns": 0,
        "total_iterations": 0,
        "window_solve_time_s": 0.0,
        "max_window_solve_time_s": 0.0,
        "max_primal_residual": 0.0,
        "max_dual_residual": 0.0,
        "status_counts": {},
        "relaxed_windows": 0,
        "relax_retries": 0,
        "relax_rung_histogram": {},
        "backend_windows": {},
    }
    for record in records:
        key = {
            "linearized": "linearized_windows",
            "sdr": "sdr_windows",
            "fallback": "failed_windows",
            "empty": "empty_windows",
        }.get(record.solver)
        if key is not None:
            stats[key] += 1
        stats["total_unknowns"] += record.num_unknowns
        stats["total_iterations"] += record.iterations
        stats["window_solve_time_s"] += record.solve_time_s
        stats["max_window_solve_time_s"] = max(
            stats["max_window_solve_time_s"], record.solve_time_s
        )
        for field in ("primal_residual", "dual_residual"):
            value = getattr(record, field)
            if value == value:  # skip NaN
                stats[f"max_{field}"] = max(stats[f"max_{field}"], value)
        stats["status_counts"][record.status] = (
            stats["status_counts"].get(record.status, 0) + 1
        )
        if record.relax_rung > 0:
            stats["relaxed_windows"] += 1
            stats["relax_rung_histogram"][record.relax_stage] = (
                stats["relax_rung_histogram"].get(record.relax_stage, 0) + 1
            )
        stats["relax_retries"] += max(0, record.solve_attempts - 1)
        stats["backend_windows"][record.backend] = (
            stats["backend_windows"].get(record.backend, 0) + 1
        )
    stats["window_telemetry"] = [record.as_dict() for record in records]
    return stats


def format_telemetry_report(stats: dict) -> str:
    """Human-readable multi-line summary of a run's solver telemetry."""
    lines = [
        f"windows solved       : {stats.get('windows', 0)}",
        f"  linearized / sdr   : {stats.get('linearized_windows', 0)}"
        f" / {stats.get('sdr_windows', 0)}",
        f"  failed (fallback)  : {stats.get('failed_windows', 0)}",
        f"execution mode       : {stats.get('execution_mode', 'serial')}"
        f" (workers: {stats.get('workers', 1)})",
        f"total unknowns       : {stats.get('total_unknowns', 0)}",
        f"total ADMM iterations: {stats.get('total_iterations', 0)}",
        f"window solve time    : {stats.get('window_solve_time_s', 0.0):.3f} s"
        f" (slowest window "
        f"{stats.get('max_window_solve_time_s', 0.0):.3f} s)",
        f"max primal residual  : {stats.get('max_primal_residual', 0.0):.3g}",
        f"max dual residual    : {stats.get('max_dual_residual', 0.0):.3g}",
    ]
    backends = stats.get("backend_windows", {})
    if backends:
        rendered = ", ".join(
            f"{name}: {count}" for name, count in sorted(backends.items())
        )
        lines.append(f"backend windows      : {rendered}")
    counts = stats.get("status_counts", {})
    if counts:
        rendered = ", ".join(
            f"{status}: {count}" for status, count in sorted(counts.items())
        )
        lines.append(f"status tally         : {rendered}")
    relaxed = stats.get("relaxed_windows", 0)
    if relaxed:
        histogram = stats.get("relax_rung_histogram", {})
        rendered = ", ".join(
            f"{stage}: {count}" for stage, count in sorted(histogram.items())
        )
        lines.append(f"relaxed windows      : {relaxed} ({rendered})")
    quarantined = stats.get("quarantined_packets", 0)
    degraded = stats.get("degraded_constraints", 0)
    if quarantined or degraded:
        lines.append(
            f"degradation          : {quarantined} packets quarantined, "
            f"{degraded} sum constraints degraded"
        )
    return "\n".join(lines)
