"""Nestable stage timers producing the pipeline's stage trace.

``with span("ingest"): ...`` times a block and records it into the
current :class:`~repro.obs.registry.MetricsRegistry` under a slash-joined
path that encodes nesting: a ``span("validate")`` opened inside a
``span("ingest")`` inside a ``span("run")`` aggregates as
``run/ingest/validate``. Aggregation is per *path* (count, total, min,
max, error count), not per instance, so a million chunk ingests cost one
dict entry, and the resulting trace is exactly the stage breakdown the
RunReport serializes:

    run
    ├── read
    ├── ingest
    │   ├── validate
    │   └── seal ── window_build
    ├── solve
    └── commit

Spans are exception-safe: a body that raises is still recorded (with its
``errors`` tally bumped) and the nesting stack unwinds correctly, so a
crashed stage shows up in the trace instead of vanishing from it. The
stack is thread-local; each process-pool worker keeps its own.
"""

from __future__ import annotations

import threading
import time

from repro.obs.registry import current_registry

__all__ = ["span", "current_span_path"]

_stack = threading.local()


def _path_stack() -> list[str]:
    stack = getattr(_stack, "names", None)
    if stack is None:
        stack = _stack.names = []
    return stack


def current_span_path() -> str:
    """The slash-joined path of the innermost open span ('' outside)."""
    return "/".join(_path_stack())


class span:
    """Context manager timing one stage of the pipeline.

    Reentrant by construction (each ``with`` pushes one frame) and cheap
    enough for chunk-level instrumentation: one perf_counter read on
    entry and one dict update on exit.
    """

    __slots__ = ("name", "_path", "_started")

    def __init__(self, name: str) -> None:
        if "/" in name or not name:
            raise ValueError(
                f"span names are single path components, got {name!r}"
            )
        self.name = name
        self._path = ""
        self._started = 0.0

    def __enter__(self) -> "span":
        stack = _path_stack()
        stack.append(self.name)
        self._path = "/".join(stack)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._started
        stack = _path_stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        current_registry().record_span(
            self._path, duration, error=exc_type is not None
        )

    @property
    def path(self) -> str:
        """The full slash path this span records under (set on entry)."""
        return self._path
