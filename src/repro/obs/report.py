"""The canonical machine-readable run report.

Every instrumented entry point (``domo estimate/stream/faults``, the
benchmark harness) serializes its observability state to **one** JSON
shape, ``domo.run_report/1``::

    {
      "schema": "domo.run_report/1",
      "command": "stream",                  # what ran
      "argv": ["--lateness-ms", "2000"],    # how it was invoked
      "env": {"python": "...", "platform": "...", "cpu_count": 8, ...},
      "config": {...},                      # JSON-safe DomoConfig dump
      "wall_time_s": 12.3,                  # the root span's duration
      "span_coverage": 0.98,                # fraction of wall time inside
                                            # the root's direct children
      "spans": [{"path": "run/ingest", "count": 31, "total_s": ...,
                 "min_s": ..., "max_s": ..., "errors": 0}, ...],
      "metrics": {"counters": {...}, "gauges": {...},
                  "histograms": {name: {"edges": [...], "counts": [...],
                                        "count": n, "sum": f,
                                        "min": f, "max": f}}},
      "stats": {...}                        # the run's stats dict
    }

Invariants the validator enforces:

* top-level keys and their types as above (``config``/``stats`` may be
  empty objects);
* every histogram has ``len(counts) == len(edges) + 1`` and
  ``sum(counts) == count``;
* span paths are slash-joined, each with nonnegative count/total;
* all numbers are finite — non-finite floats are replaced by ``None``
  at serialization time (``sanitize_json``), never emitted as the
  nonstandard ``Infinity``/``NaN`` tokens.

The report deliberately contains **no timestamps and no randomness**
beyond measured durations: two runs of the same workload differ only in
timing fields, which is what makes the perf trajectory diffable.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
from dataclasses import dataclass, field, is_dataclass, asdict

from repro.obs.registry import MetricsRegistry, current_registry

__all__ = [
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "build_run_report",
    "collect_env",
    "format_run_report",
    "report_registry_snapshot",
    "sanitize_json",
    "validate_report",
    "write_run_report",
]

RUN_REPORT_SCHEMA = "domo.run_report/1"


def collect_env() -> dict:
    """Machine context a perf number is meaningless without."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "repro_full": bool(int(os.environ.get("REPRO_FULL", "0") or "0")),
    }


def sanitize_json(value):
    """Recursively convert ``value`` into strict-JSON-safe primitives.

    Non-finite floats become ``None`` (strict JSON has no Infinity/NaN),
    dataclasses become dicts, sets/frozensets become sorted lists, and
    non-string dict keys are stringified.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return sanitize_json(asdict(value))
    if isinstance(value, dict):
        return {str(key): sanitize_json(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(sanitize_json(item) for item in value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, int) or isinstance(value, str):
        return value
    return str(value)


@dataclass
class RunReport:
    """In-memory form of one ``domo.run_report/1`` document."""

    command: str
    argv: list[str] = field(default_factory=list)
    env: dict = field(default_factory=collect_env)
    config: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    wall_time_s: float = 0.0
    span_coverage: float = 0.0

    def to_dict(self) -> dict:
        return sanitize_json(
            {
                "schema": RUN_REPORT_SCHEMA,
                "command": self.command,
                "argv": list(self.argv),
                "env": self.env,
                "config": self.config,
                "wall_time_s": self.wall_time_s,
                "span_coverage": self.span_coverage,
                "spans": self.spans,
                "metrics": self.metrics,
                "stats": self.stats,
            }
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=False, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        problems = validate_report(data)
        if problems:
            raise ValueError(
                "not a valid run report: " + "; ".join(problems[:5])
            )
        return cls(
            command=data["command"],
            argv=list(data.get("argv", [])),
            env=dict(data.get("env", {})),
            config=dict(data.get("config", {})),
            spans=[dict(s) for s in data.get("spans", [])],
            metrics=dict(data.get("metrics", {})),
            stats=dict(data.get("stats", {})),
            wall_time_s=data.get("wall_time_s", 0.0) or 0.0,
            span_coverage=data.get("span_coverage", 0.0) or 0.0,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Span coverage
# ----------------------------------------------------------------------


def _span_list(registry: MetricsRegistry) -> list[dict]:
    return [
        {"path": path, **stats.as_dict()}
        for path, stats in registry.span_paths().items()
    ]


def span_coverage(spans: list[dict], root: str | None = None) -> tuple[float, float]:
    """(wall_time_s, coverage) of the stage trace.

    ``wall_time_s`` is the total of the root span (the longest top-level
    path when not named); ``coverage`` is the fraction of that wall time
    spent inside the root's *direct* children — the "did we instrument
    every stage" number the acceptance gate checks.
    """
    by_path = {entry["path"]: entry for entry in spans}
    roots = [p for p in by_path if "/" not in p]
    if root is None:
        root = max(roots, key=lambda p: by_path[p]["total_s"], default=None)
    if root is None or root not in by_path:
        return 0.0, 0.0
    wall = by_path[root]["total_s"]
    prefix = root + "/"
    children = sum(
        entry["total_s"]
        for path, entry in by_path.items()
        if path.startswith(prefix) and "/" not in path[len(prefix):]
    )
    if wall <= 0.0:
        return wall, 0.0
    return wall, min(1.0, children / wall)


def build_run_report(
    command: str,
    *,
    argv: list[str] | None = None,
    config=None,
    stats: dict | None = None,
    registry: MetricsRegistry | None = None,
    root_span: str = "run",
) -> RunReport:
    """Assemble a :class:`RunReport` from the registry's current state."""
    registry = registry or current_registry()
    snapshot = registry.snapshot()
    spans = [
        {"path": path, **data}
        for path, data in snapshot.pop("spans", {}).items()
    ]
    wall, coverage = span_coverage(spans, root=root_span)
    return RunReport(
        command=command,
        argv=list(argv or []),
        config=sanitize_json(config) if config is not None else {},
        spans=spans,
        metrics=snapshot,
        stats=sanitize_json(stats or {}),
        wall_time_s=wall,
        span_coverage=coverage,
    )


def write_run_report(path: str, report: RunReport) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.to_json())
        handle.write("\n")


def report_registry_snapshot(data, *, prefix: str | None = None) -> dict:
    """A report's metrics + spans as a registry-mergeable snapshot.

    The inverse of what :func:`build_run_report` does to a registry,
    modulo JSON sanitization (``None`` placeholders for the ``min``/
    ``max`` infinities are restored). The router uses this to fold each
    shard's shutdown report into its own registry; ``prefix`` re-roots
    the shard's span paths (``shards/shard-0/run/serve``) so N shard
    ``run`` roots neither collide with each other nor with the router's
    own root span.
    """
    if isinstance(data, RunReport):
        data = data.to_dict()
    metrics = data.get("metrics", {}) or {}

    def _finite(mapping: dict, key: str, default: float) -> float:
        value = mapping.get(key)
        return default if not isinstance(value, (int, float)) else value

    gauges = {}
    for name, entry in (metrics.get("gauges", {}) or {}).items():
        gauges[name] = {
            "last": _finite(entry, "last", 0.0),
            "min": _finite(entry, "min", float("inf")),
            "max": _finite(entry, "max", float("-inf")),
            "samples": int(entry.get("samples", 0)),
        }
    histograms = {}
    for name, entry in (metrics.get("histograms", {}) or {}).items():
        histograms[name] = {
            **entry,
            "min": _finite(entry, "min", float("inf")),
            "max": _finite(entry, "max", float("-inf")),
        }
    spans = {}
    for entry in data.get("spans", []) or []:
        path = entry.get("path")
        if not path:
            continue
        if prefix:
            path = f"{prefix}/{path}"
        spans[path] = {
            "count": int(entry.get("count", 0)),
            "total_s": _finite(entry, "total_s", 0.0),
            "min_s": _finite(entry, "min_s", float("inf")),
            "max_s": _finite(entry, "max_s", float("-inf")),
            "errors": int(entry.get("errors", 0)),
        }
    return {
        "counters": dict(metrics.get("counters", {}) or {}),
        "gauges": gauges,
        "histograms": histograms,
        "spans": spans,
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

_TOP_LEVEL = {
    "schema": str,
    "command": str,
    "argv": list,
    "env": dict,
    "config": dict,
    "wall_time_s": (int, float),
    "span_coverage": (int, float),
    "spans": list,
    "metrics": dict,
    "stats": dict,
}


def validate_report(data) -> list[str]:
    """Problems that make ``data`` not a ``domo.run_report/1`` document."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    if data.get("schema") != RUN_REPORT_SCHEMA:
        problems.append(
            f"schema is {data.get('schema')!r}, expected {RUN_REPORT_SCHEMA!r}"
        )
    for key, kind in _TOP_LEVEL.items():
        if key not in data:
            problems.append(f"missing key {key!r}")
        elif not isinstance(data[key], kind):
            problems.append(
                f"{key!r} has type {type(data[key]).__name__}"
            )
    for entry in data.get("spans", []) if isinstance(data.get("spans"), list) else []:
        if not isinstance(entry, dict) or "path" not in entry:
            problems.append(f"span entry without a path: {entry!r}")
            continue
        for key in ("count", "total_s", "min_s", "max_s", "errors"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value != value:
                problems.append(f"span {entry['path']!r} has bad {key!r}")
            elif key in ("count", "total_s", "errors") and value < 0:
                problems.append(f"span {entry['path']!r} has negative {key!r}")
    metrics = data.get("metrics", {})
    if isinstance(metrics, dict):
        for name, hist in metrics.get("histograms", {}).items():
            if not isinstance(hist, dict):
                problems.append(f"histogram {name!r} is not an object")
                continue
            edges = hist.get("edges", [])
            counts = hist.get("counts", [])
            if len(counts) != len(edges) + 1:
                problems.append(
                    f"histogram {name!r}: {len(counts)} buckets for "
                    f"{len(edges)} edges"
                )
            elif sum(counts) != hist.get("count", -1):
                problems.append(
                    f"histogram {name!r}: bucket sum != count"
                )
        for name, value in metrics.get("counters", {}).items():
            if not isinstance(value, int) or value < 0:
                problems.append(f"counter {name!r} is not a nonneg integer")
    coverage = data.get("span_coverage")
    if isinstance(coverage, (int, float)) and not 0.0 <= coverage <= 1.0:
        problems.append(f"span_coverage {coverage} outside [0, 1]")
    return problems


# ----------------------------------------------------------------------
# Pretty printer (the `domo report` surface)
# ----------------------------------------------------------------------


def _tree_order(spans: list[dict]) -> list[dict]:
    """Spans in parent-first depth-first order.

    Recorded order is span-*exit* order (children finish before their
    parents), so rendering needs a reordering: keep siblings in recorded
    order but emit each parent before its subtree.
    """
    children: dict[str, list[dict]] = {}
    for entry in spans:
        path = entry.get("path", "")
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        children.setdefault(parent, []).append(entry)
    ordered: list[dict] = []

    def emit(parent: str) -> None:
        for entry in children.get(parent, []):
            ordered.append(entry)
            emit(entry["path"])

    emit("")
    return ordered


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    return f"{1e3 * seconds:8.2f} ms"


def format_run_report(data: dict) -> str:
    """Operator-readable rendering of a run report dict."""
    lines = [
        f"run report: {data.get('command', '?')} "
        f"({data.get('schema', 'unversioned')})",
    ]
    env = data.get("env", {})
    if env:
        lines.append(
            f"  env: python {env.get('python', '?')} on "
            f"{env.get('platform', '?')}/{env.get('machine', '?')}, "
            f"{env.get('cpu_count', '?')} cpus"
            + (", REPRO_FULL" if env.get("repro_full") else "")
        )
    wall = data.get("wall_time_s", 0.0) or 0.0
    coverage = data.get("span_coverage", 0.0) or 0.0
    lines.append(
        f"  wall time: {wall:.3f} s, stage coverage {100 * coverage:.1f}%"
    )

    spans = data.get("spans", [])
    if spans:
        lines.append("")
        lines.append("stage trace")
        for entry in _tree_order(spans):
            path = entry["path"]
            depth = path.count("/")
            name = path.rsplit("/", 1)[-1]
            total = entry.get("total_s", 0.0)
            share = f"{100 * total / wall:5.1f}%" if wall > 0 else "     -"
            errors = entry.get("errors", 0)
            lines.append(
                f"  {'  ' * depth}{name:<{max(1, 24 - 2 * depth)}}"
                f"{_format_seconds(total)}  x{entry.get('count', 0):<6d}"
                f"{share}" + (f"  ({errors} errors)" if errors else "")
            )

    metrics = data.get("metrics", {})
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<36}{value:>12}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges (last / min / max)")
        for name, g in sorted(gauges.items()):
            lines.append(
                f"  {name:<36}{g.get('last', 0):>12.3f}"
                f"{g.get('min', 0):>12.3f}{g.get('max', 0):>12.3f}"
            )
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / max)")
        for name, hist in sorted(histograms.items()):
            count = hist.get("count", 0)
            mean = (hist.get("sum", 0.0) / count) if count else 0.0
            hmax = hist.get("max", 0.0)
            hmax = hmax if isinstance(hmax, (int, float)) else 0.0
            lines.append(
                f"  {name:<36}{count:>10}{mean:>14.4g}{hmax:>14.4g}"
            )
    return "\n".join(lines)
