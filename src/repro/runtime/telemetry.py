"""Historical home of the solver telemetry (moved to :mod:`repro.obs`).

The implementation now lives in :mod:`repro.obs.solver_telemetry`, next
to the metrics registry it publishes into; this module keeps the public
names importable from their original location.
"""

from repro.obs.solver_telemetry import (  # noqa: F401
    SOLVER_KINDS,
    WindowTelemetry,
    format_telemetry_report,
    summarize_telemetry,
)

__all__ = [
    "SOLVER_KINDS",
    "WindowTelemetry",
    "format_telemetry_report",
    "summarize_telemetry",
]
