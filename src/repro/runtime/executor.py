"""Parallel window-solve engine for the estimation pipeline (§IV.B).

The overlapping time windows of the paper are independent subproblems:
each window's Eq. (8) QP (or SDR lift) reads only its own
:class:`~repro.core.preprocessor.WindowSystem`. This module fans those
solves out over a :class:`concurrent.futures.ProcessPoolExecutor` while
guaranteeing that parallel and serial execution produce *identical*
estimates: the same :func:`solve_one_window` function runs in both modes
and results are merged in window order, so the only difference is which
process executes each solve.

Robustness rules:

* serial execution is the default and the fallback — a pool that cannot
  be created or that breaks mid-run (missing ``fork``/``spawn`` support,
  unpicklable payloads, killed workers) degrades to in-process solving
  rather than failing the reconstruction;
* a window whose solver raises :class:`~repro.optim.result.SolverError`
  walks the **degradation ladder** before giving up: the system is
  re-solved with progressively relaxed constraint families — drop the
  loss-unsafe Eq. (6) sum-upper rows, then all FIFO rows, then everything
  but the Eq. (5) order rows — and only when even the order-only system
  fails does the window fall back to interval midpoints. Each rung is
  recorded in the window's telemetry (``relax_rung``/``relax_stage``), so
  a reconstruction that survived dirty data says exactly how.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pickle import PicklingError

from repro.backends import (
    DEFAULT_BACKEND,
    CsConfig,
    EstimatorConfig,
    get_backend,
)
from repro.core.preprocessor import WindowSystem
from repro.core.records import ArrivalKey
from repro.core.sdr import SdrConfig
from repro.obs.registry import (
    COUNT_EDGES,
    current_registry,
    isolated_registry,
)
from repro.obs.spans import span
from repro.optim.result import SolverError
from repro.runtime.telemetry import WindowTelemetry


@dataclass(frozen=True)
class WindowSolveSpec:
    """Everything a worker needs to solve one window (picklable).

    Carries every backend's config (``estimator``, ``sdr``, ``cs``) so
    one frozen object crosses the process-pool boundary regardless of
    which registered backend ``backend`` names.
    """

    fifo_mode: str = "linearized"
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    sdr: SdrConfig = field(default_factory=SdrConfig)
    #: registry name of the estimator backend (see :mod:`repro.backends`).
    backend: str = DEFAULT_BACKEND
    cs: CsConfig = field(default_factory=CsConfig)
    #: allow the degradation ladder's final pre-midpoint rung: re-solve
    #: a window whose configured backend failed every relaxation with
    #: the cheaper ``cs`` backend instead of surrendering to midpoints.
    allow_backend_downgrade: bool = False


@dataclass
class WindowResult:
    """Kept estimates plus the telemetry record of one window solve."""

    window_index: int
    estimates: dict[ArrivalKey, float]
    telemetry: WindowTelemetry
    #: metrics-registry snapshot captured around the solve (QP/SDP
    #: histograms, window timings). Recorded in the solving process —
    #: possibly a pool worker — and merged into the submitting process's
    #: registry when the result is drained; ``None`` once merged.
    metrics: dict | None = None


@dataclass
class ExecutionReport:
    """Outcome of a full window sweep, results in window order."""

    results: list[WindowResult]
    #: "serial" or "parallel" — what actually ran (after any fallback).
    mode: str
    #: worker processes used (1 for serial).
    workers: int
    #: why a requested parallel run degraded to serial, if it did.
    fallback_reason: str | None = None


#: the degradation ladder: rung name -> predicate over row tags keeping
#: the rows that survive at that rung. Walked in order by
#: :func:`solve_one_window` when the full system cannot be solved.
RELAXATION_LADDER: tuple[tuple[str, object], ...] = (
    (
        "drop_sum_upper",
        lambda tag: not tag.startswith("sum_hi"),
    ),
    (
        "drop_fifo",
        lambda tag: not (tag.startswith("sum_hi") or tag.startswith("fifo")),
    ),
    (
        "order_only",
        lambda tag: tag.startswith("order"),
    ),
)

#: rung index reported when every relaxation failed and the window was
#: re-solved by the cheaper ``cs`` backend (only when the spec enables
#: ``allow_backend_downgrade`` and the configured backend is costlier).
BACKEND_DOWNGRADE_RUNG = len(RELAXATION_LADDER) + 1

#: rung index reported when even the order-only system failed and the
#: window fell back to interval midpoints.
MIDPOINT_RUNG = len(RELAXATION_LADDER) + 2


def _relaxed_system(system, keep):
    """A copy of ``system`` whose builder holds only ``keep``-tagged rows.

    The index, variables and intervals are shared (read-only in the
    estimator); unresolved FIFO pairs are cleared so an SDR re-solve of a
    relaxed system would not resurrect the dropped family.
    """
    return replace(
        system,
        builder=system.builder.filtered(keep),
        fifo_unresolved=[],
        stats=dict(system.stats),
    )


def solve_one_window(
    window_index: int, ws: WindowSystem, spec: WindowSolveSpec
) -> WindowResult:
    """Solve one window and keep only its keep-region estimates.

    This is the single code path shared by serial and parallel execution;
    :class:`~repro.optim.result.SolverError` walks the relaxation ladder
    (drop sum-upper -> drop FIFO -> order-only -> interval midpoints) and
    never raises.

    Metrics emitted during the solve (the QP/SDP histograms and the
    ``window.*`` aggregates) are captured in an isolated registry and
    shipped back on ``WindowResult.metrics``, so a pool worker's
    observations reach the parent process and the merged aggregate is
    identical between serial and parallel runs.
    """
    with isolated_registry() as window_registry:
        result = _solve_one_window_inner(window_index, ws, spec)
        result.telemetry.publish(window_registry)
    result.metrics = window_registry.snapshot()
    return result


def _solve_one_window_inner(
    window_index: int, ws: WindowSystem, spec: WindowSolveSpec
) -> WindowResult:
    started = time.perf_counter()
    system = ws.system
    backend = get_backend(spec.backend)
    solved_by = backend.name
    solver = "linearized"
    status = "optimal"
    iterations = 0
    attempts = 0
    relax_rung = 0
    relax_stage = "full"
    primal = dual = float("nan")
    estimates = None
    result = None
    try:
        attempts += 1
        solution = backend.solve_window(system, spec)
        estimates, result, solver = (
            solution.estimates, solution.result, solution.solver
        )
    except SolverError:
        # Degradation ladder: retry with whole constraint families
        # removed before surrendering to midpoints. Backends that never
        # consume the constraint rows would return the same answer at
        # every rung, so the ladder only walks for those that do.
        if backend.capabilities.supports_relaxation:
            for rung, (stage, keep) in enumerate(
                RELAXATION_LADDER, start=1
            ):
                relaxed = _relaxed_system(system, keep)
                try:
                    attempts += 1
                    solution = backend.solve_relaxed(relaxed, spec)
                    estimates, result, solver = (
                        solution.estimates,
                        solution.result,
                        solution.solver,
                    )
                    relax_rung = rung
                    relax_stage = stage
                    break
                except SolverError:
                    continue
        if estimates is None and spec.allow_backend_downgrade:
            # Pre-midpoint rung: downgrade the window to the cheap CS
            # backend. Only a *downgrade* is eligible — a backend no
            # costlier than CS gains nothing from the swap.
            downgraded = get_backend("cs")
            if (
                downgraded.capabilities.cost_rank
                < backend.capabilities.cost_rank
            ):
                try:
                    attempts += 1
                    solution = downgraded.solve_window(system, spec)
                    estimates, result, solver = (
                        solution.estimates,
                        solution.result,
                        solution.solver,
                    )
                    solved_by = downgraded.name
                    relax_rung = BACKEND_DOWNGRADE_RUNG
                    relax_stage = "cs_downgrade"
                except SolverError:
                    pass
        if estimates is None:
            solver = "fallback"
            status = "fallback"
            relax_rung = MIDPOINT_RUNG
            relax_stage = "midpoints"
            estimates = {
                key: 0.5 * (lo + hi)
                for key, (lo, hi) in system.intervals.items()
                if key in system.variables
            }
    if result is not None:
        status = result.status.value
        iterations = result.iterations
        primal = result.primal_residual
        dual = result.dual_residual
    kept = {
        key: value
        for key, value in estimates.items()
        if key.packet_id in ws.kept_ids
    }
    telemetry = WindowTelemetry(
        window_index=window_index,
        num_packets=ws.num_packets,
        num_unknowns=system.num_unknowns,
        num_kept=len(kept),
        solver=solver,
        status=status,
        iterations=iterations,
        primal_residual=primal,
        dual_residual=dual,
        solve_time_s=time.perf_counter() - started,
        relax_rung=relax_rung,
        relax_stage=relax_stage,
        solve_attempts=attempts,
        backend=solved_by,
    )
    return WindowResult(
        window_index=window_index, estimates=kept, telemetry=telemetry
    )


def _solve_entry(payload) -> WindowResult:
    """Module-level pool target (must be picklable by name)."""
    window_index, ws, spec = payload
    return solve_one_window(window_index, ws, spec)


def resolve_worker_count(
    num_windows: int, max_workers: int | None = None
) -> int:
    """Workers actually worth starting for ``num_windows`` subproblems."""
    available = max_workers if max_workers is not None else os.cpu_count() or 1
    return max(1, min(available, num_windows))


#: infrastructure failures that degrade a pool run to serial solving.
POOL_ERRORS = (BrokenProcessPool, PicklingError, OSError, RuntimeError)


class WindowExecutor:
    """Non-blocking submit/drain engine over the window-solve pool.

    The streaming pipeline submits windows one at a time as their seal
    watermark passes and drains completed solves whenever it polls; the
    batch pipeline submits everything up front and drains blocking. Both
    go through the same :func:`solve_one_window`, so results are
    identical to a plain serial sweep regardless of scheduling.

    In serial mode (the default and the fallback) ``submit`` solves
    synchronously and queues the result for the next ``drain``. In
    parallel mode solves run on a lazily created
    :class:`~concurrent.futures.ProcessPoolExecutor`; any pool
    infrastructure failure re-solves the affected windows in-process and
    permanently degrades the executor to serial (``fallback_reason``
    records why) — a broken pool never fails or drops a window.

    **Threading model.** One executor may be shared by multiple producer
    threads (the serve layer runs one ingest thread per stream session
    over a single pool): ``submit``, ``drain`` and ``close`` are safe to
    call concurrently. Internal bookkeeping is lock-guarded, the
    blocking ``wait`` in ``drain`` runs *outside* the lock (a blocking
    drainer never stalls a submitter), and every completed result is
    handed to exactly one ``drain`` call — no window is lost, duplicated
    or double-merged into the metrics registry. Results are *not*
    routed per producer: any drainer may receive any producer's result,
    so a multiplexer that needs per-stream routing (e.g.
    :class:`repro.serve.pool.SharedSolverPool`) must key results by
    ``window_index`` itself, typically by submitting globally unique
    indices and being the executor's only drainer.
    """

    def __init__(
        self,
        spec: WindowSolveSpec,
        parallel: bool = False,
        max_workers: int | None = None,
    ) -> None:
        self.spec = spec
        self.max_workers = max_workers
        self.mode = "parallel" if parallel else "serial"
        self.workers = (
            resolve_worker_count(max_workers or os.cpu_count() or 1, max_workers)
            if parallel
            else 1
        )
        self.fallback_reason: str | None = None
        #: guards mode/pool/_pending; reentrant so _degrade may run while
        #: submit already holds it. Never held across a solve or a wait.
        self._lock = threading.RLock()
        self._pool: ProcessPoolExecutor | None = None
        self._pending: dict = {}  # future -> payload
        self._done: deque[WindowResult] = deque()

    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Submitted windows whose results have not been drained yet."""
        return len(self._pending) + len(self._done)

    def _degrade(self, exc: BaseException) -> None:
        """Fall back to serial: re-solve everything the pool still owed."""
        current_registry().inc("executor.pool_degraded")
        with self._lock:
            if self.fallback_reason is None:
                self.fallback_reason = f"{type(exc).__name__}: {exc}"
            self.mode = "serial"
            self.workers = 1
            pending = list(self._pending.values())
            self._pending.clear()
            pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        for payload in pending:
            self._done.append(_solve_entry(payload))

    def submit(
        self,
        window_index: int,
        ws: WindowSystem,
        spec: WindowSolveSpec | None = None,
    ) -> None:
        """Queue one window for solving; never blocks on other windows.

        (Serial mode solves inline, which does take this solve's wall
        time, but nothing waits on other windows.) Safe to call from
        multiple producer threads. ``spec`` overrides the executor's
        default solve spec for this window only — the serve tier uses
        this to run per-stream backends over one shared pool.
        """
        payload = (window_index, ws, spec if spec is not None else self.spec)
        registry = current_registry()
        registry.inc("executor.submitted")
        registry.observe(
            "executor.queue_depth", float(self.in_flight + 1), COUNT_EDGES
        )
        registry.set_gauge("executor.in_flight", self.in_flight + 1)
        with self._lock:
            # The mode check happens under the lock so a concurrent
            # _degrade cannot race a submission onto a dying pool.
            if self.mode == "parallel":
                try:
                    if self._pool is None:
                        self._pool = ProcessPoolExecutor(
                            max_workers=self.workers
                        )
                    future = self._pool.submit(_solve_entry, payload)
                except POOL_ERRORS as exc:
                    self._degrade(exc)
                else:
                    self._pending[future] = payload
                    return
        # Serial mode (or a pool that failed to accept the submission):
        # solve inline, outside the lock — the stage trace charges the
        # wall time to "solve" here rather than at drain time, and other
        # producers keep submitting while this thread solves.
        with span("solve"):
            self._done.append(_solve_entry(payload))

    def drain(self, block: bool = False) -> list[WindowResult]:
        """Completed window results, in completion order.

        With ``block=False`` returns whatever has finished so far; with
        ``block=True`` waits for every submitted window first. Callers
        needing window order sort on ``WindowResult.window_index``.
        Concurrent drains are safe: each completed result is delivered
        to exactly one caller, and the blocking wait runs outside the
        lock so a blocked drainer never stalls submitters.
        """
        while True:
            with self._lock:
                pending = list(self._pending)
            if not pending:
                break
            done, _ = wait(pending, timeout=None if block else 0.0)
            failure: BaseException | None = None
            for future in done:
                # A broken pool marks every in-flight future done-and-
                # failing at once (and a concurrent drainer may have
                # claimed this future first), so pop defensively:
                # _degrade (below) clears _pending, and a future already
                # re-solved or claimed must not be solved again.
                with self._lock:
                    payload = self._pending.pop(future, None)
                if payload is None:
                    continue
                try:
                    self._done.append(future.result())
                except POOL_ERRORS as exc:
                    self._done.append(_solve_entry(payload))
                    failure = exc
            if failure is not None:
                # Degrade only after the done set is drained: completed
                # futures keep their pool results (no duplicate solves)
                # and _degrade re-solves just the still-running remainder.
                self._degrade(failure)
            if not block or not done:
                break
        # Atomic pops, not list()+clear(): two concurrent drains must
        # partition the done queue, never both see the same result.
        results: list[WindowResult] = []
        while True:
            try:
                results.append(self._done.popleft())
            except IndexError:
                break
        if results:
            # Fold the workers' metric snapshots into this process's
            # registry exactly once per result (results leave drain once).
            registry = current_registry()
            registry.inc("executor.drained", len(results))
            for result in results:
                registry.merge(result.metrics)
                result.metrics = None
        return results

    def close(self) -> None:
        """Shut the pool down (pending futures are drained first)."""
        if self._pending:
            self.drain(block=True)
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def execute_windows(
    systems: list[WindowSystem],
    spec: WindowSolveSpec,
    parallel: bool = False,
    max_workers: int | None = None,
) -> ExecutionReport:
    """Solve every window, in a process pool when asked and worthwhile.

    Results come back ordered by window index regardless of completion
    order, so downstream merging is deterministic and parallel runs are
    estimate-for-estimate identical to serial ones. This is the blocking
    batch map over :class:`WindowExecutor`'s submit/drain engine.
    """
    workers = resolve_worker_count(len(systems), max_workers)
    use_parallel = parallel and workers > 1 and len(systems) > 1
    executor = WindowExecutor(
        spec, parallel=use_parallel, max_workers=workers
    )
    try:
        for index, ws in enumerate(systems):
            executor.submit(index, ws)
        results = executor.drain(block=True)
    finally:
        executor.close()
    results.sort(key=lambda result: result.window_index)
    return ExecutionReport(
        results=results,
        mode=executor.mode,
        workers=executor.workers,
        fallback_reason=executor.fallback_reason,
    )
