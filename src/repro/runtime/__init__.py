"""Execution runtime: parallel window solving and solver telemetry.

The estimation pipeline's per-window subproblems (paper §IV.B) are
independent; this package schedules them — serially or across a process
pool — and records structured per-window solver telemetry:

* :mod:`repro.runtime.executor` — :func:`execute_windows`, the
  deterministic fan-out engine with serial fallback;
* :mod:`repro.runtime.telemetry` — :class:`WindowTelemetry` records and
  the aggregation/reporting helpers behind ``DelayReconstruction.stats``.
"""

from repro.runtime.executor import (
    ExecutionReport,
    WindowResult,
    WindowSolveSpec,
    execute_windows,
    resolve_worker_count,
    solve_one_window,
)
from repro.runtime.telemetry import (
    WindowTelemetry,
    format_telemetry_report,
    summarize_telemetry,
)

__all__ = [
    "ExecutionReport",
    "WindowResult",
    "WindowSolveSpec",
    "WindowTelemetry",
    "execute_windows",
    "format_telemetry_report",
    "resolve_worker_count",
    "solve_one_window",
    "summarize_telemetry",
]
