"""The streaming reconstruction engine: ingest -> seal -> solve -> commit.

The paper's PC side is an online system (§V): the sink streams packets in
and the preprocessor/solver run continuously. This module is that
architecture. Packets are ingested in sink-arrival order (with a
configurable lateness allowance for reordering), assigned incrementally
to the overlapping time windows of §IV.B, and each window walks an
explicit state machine:

    open ──watermark──▶ sealed ──submit──▶ solving ──drain──▶ committed

* **open** — the window can still gain members; packets are appended in
  O(log w) via a bisect over the shared window grid.
* **sealed** — the watermark (``max sink arrival seen − lateness``)
  passed the window's end: membership is frozen, the constraint system
  is built and submitted to the :class:`~repro.runtime.executor
  .WindowExecutor`'s non-blocking submit/drain engine.
* **solving** — the executor owns it (a process pool when configured,
  synchronous serial otherwise).
* **committed** — kept estimates are surfaced through :meth:`poll`, and
  every packet whose member windows have all committed is **evicted**,
  so resident memory is bounded by the active-window horizon rather than
  the trace length.

Windows are laid on the same bit-identical grid the batch planner uses
(:func:`~repro.core.windows.iter_window_grid`), solved by the same
:func:`~repro.runtime.executor.solve_one_window`, and committed in window
order — so "ingest everything, then flush" reproduces the batch
pipeline's estimates exactly. That identity is what lets
:meth:`DomoReconstructor.estimate` run on top of this engine.

Late packets — arrivals whose keeping window already sealed — are
quarantined into the validation machinery (a ``late_arrival`` issue on
the merged :class:`~repro.core.validation.ValidationReport`), never
silently dropped.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field, replace
from enum import Enum

from repro.core.pipeline import DomoConfig, constraint_config_for
from repro.core.preprocessor import (
    choose_window_span,
    generation_order,
    make_window_system,
)
from repro.core.records import ArrivalKey, assemble_arrival_vector
from repro.core.validation import ValidationReport, validate_packets
from repro.core.windows import TimeWindow, iter_window_grid
from repro.constants import INF
from repro.obs.registry import current_registry
from repro.obs.spans import span
from repro.runtime.executor import WindowExecutor, WindowResult, WindowSolveSpec
from repro.runtime.telemetry import WindowTelemetry, summarize_telemetry
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket, TraceBundle
from repro.stream.telemetry import StreamTelemetry, merge_stream_stats


class WindowState(str, Enum):
    """Lifecycle of one streamed window."""

    OPEN = "open"
    SEALED = "sealed"
    SOLVING = "solving"
    COMMITTED = "committed"
    #: sealed with members but no kept ids — released without a solve
    #: (the batch pipeline skips these windows too).
    SKIPPED = "skipped"


@dataclass
class _Slot:
    """Mutable bookkeeping of one window while it is resident."""

    grid_index: int
    window: TimeWindow
    members: list[ReceivedPacket] = field(default_factory=list)
    kept_ids: set[PacketId] = field(default_factory=set)
    state: WindowState = WindowState.OPEN
    sealed_at: float = 0.0
    solve_index: int = -1
    #: constraint-build degradation counters captured at seal time.
    degraded: int = 0


@dataclass
class CommittedWindow:
    """One window's finished output, surfaced by ``poll``/``flush``."""

    #: position in the solve sequence (== batch window index).
    solve_index: int
    #: position on the shared window grid (includes empty/skipped slots).
    grid_index: int
    window: TimeWindow
    #: kept estimates of this window (the committed ones).
    estimates: dict[ArrivalKey, float]
    #: full arrival-time vectors of the kept packets (index = hop).
    arrival_times: dict[PacketId, list[float]]
    telemetry: WindowTelemetry
    #: wall-clock seconds from seal to commit.
    seal_to_commit_s: float

    @property
    def num_estimates(self) -> int:
        return len(self.estimates)


class StreamingReconstructor:
    """Incremental Domo reconstruction over a packet stream.

    Typical use::

        engine = StreamingReconstructor(DomoConfig(), lateness_ms=5_000.0)
        for chunk in packet_chunks:
            engine.ingest(chunk)
            for committed in engine.poll():
                consume(committed.arrival_times)
        for committed in engine.flush():
            consume(committed.arrival_times)

    Args:
        config: the usual :class:`~repro.core.pipeline.DomoConfig`;
            ``window_span_ms``, ``effective_window_ratio``, ``parallel``
            and ``validation`` all apply.
        lateness_ms: watermark allowance — how long after a packet's
            nominal position the engine waits for reordered arrivals
            before sealing its window. ``float('inf')`` defers every
            seal to :meth:`flush`, which makes the run bit-identical to
            the batch pipeline (the mode ``DomoReconstructor.estimate``
            uses).
        executor: optional externally owned solver to submit sealed
            windows to instead of creating a private
            :class:`~repro.runtime.executor.WindowExecutor`. Anything
            with the executor's ``submit``/``drain`` surface works; the
            serve layer passes a per-session view of its shared solver
            pool here so many engines share one process pool fairly.
            An injected executor is *not* closed by :meth:`close` —
            its owner manages its lifetime.
    """

    def __init__(
        self,
        config: DomoConfig | None = None,
        lateness_ms: float = 5_000.0,
        executor: WindowExecutor | None = None,
    ) -> None:
        if lateness_ms < 0.0:
            raise ValueError(f"lateness must be nonnegative, got {lateness_ms}")
        self.config = config or DomoConfig()
        self.lateness_ms = float(lateness_ms)
        self.telemetry = StreamTelemetry()
        self.report = ValidationReport(mode=self.config.validation.mode)

        self._grid: list[TimeWindow] = []
        self._grid_starts: list[float] = []
        self._grid_iter = None
        self._anchor_ms: float | None = None
        self._span_ms: float | None = None
        self._warmup: list[ReceivedPacket] = []
        self._warmup_min_t0 = INF

        self._slots: dict[int, _Slot] = {}  # open windows by grid index
        self._solving: dict[int, _Slot] = {}  # by solve index
        self._completed: dict[int, WindowResult] = {}  # awaiting commit gate
        self._frontier = 0  # next grid index to seal
        self._next_solve_index = 0
        self._next_commit_index = 0

        self._seen: set[PacketId] = set()
        self._refs: dict[PacketId, int] = {}
        self._max_sink_ms = -INF
        self._min_t0_ms = INF
        self._executor: WindowExecutor | None = executor
        self._owns_executor = executor is None
        self._telemetries: list[WindowTelemetry] = []
        self._commits_out: list[CommittedWindow] = []
        self._degraded_constraints = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def watermark_ms(self) -> float:
        """Generation times at or below this are assumed fully arrived."""
        return self._max_sink_ms - self.lateness_ms

    @property
    def window_span_ms(self) -> float | None:
        """The solve-window span, once the grid has been anchored."""
        return self._span_ms

    @property
    def resident_packets(self) -> int:
        """Packets currently held (warmup buffer + open/solving windows)."""
        return len(self._warmup) + len(self._refs)

    @property
    def backlog(self) -> int:
        """Windows sealed (solving or awaiting the commit gate)."""
        return self._next_solve_index - self.telemetry.windows_committed

    def ingest(self, packets, *, report: ValidationReport | None = None) -> None:
        """Feed packets into the stream (any iterable, or a TraceBundle).

        Runs the configured ingest validation on the chunk unless a
        ``report`` is supplied, in which case the packets are taken as
        already validated and the report is merged (the path
        ``DomoReconstructor.estimate`` uses). Duplicate ids across
        chunks and late arrivals are quarantined, never solved twice or
        silently dropped.
        """
        with span("ingest"):
            self._ingest(packets, report=report)
        self.telemetry.publish()
        current_registry().set_gauge("stream.backlog", self.backlog)

    def _ingest(self, packets, *, report: ValidationReport | None = None) -> None:
        if isinstance(packets, TraceBundle):
            packets = packets.received
        packets = list(packets)
        if report is not None:
            self.report.merge(report)
            # The supplied report's total counts the pre-validation
            # originals (quarantined included); fall back to the chunk
            # length when the caller didn't fill it in.
            self.report.total_packets += report.total_packets or len(packets)
        elif self.config.validation.mode != "off":
            # The S(p) budget check needs a trace-start reference. Online
            # that is inherently a best-effort prefix minimum: packets in
            # a chunk are judged against the smallest t0 seen *so far*, so
            # if the globally smallest t0 arrives in a later chunk, earlier
            # chunks were validated against a larger reference than a
            # single-shot run would use. Once the true minimum has been
            # seen the reference matches the batch pipeline exactly.
            self._min_t0_ms = min(
                self._min_t0_ms,
                min(
                    (
                        p.generation_time_ms
                        for p in packets
                        if math.isfinite(p.generation_time_ms)
                    ),
                    default=INF,
                ),
            )
            with span("validate"):
                packets, chunk_report = validate_packets(
                    packets,
                    self.config.validation,
                    first_t0_ms=(
                        self._min_t0_ms if self._min_t0_ms != INF else None
                    ),
                )
            self.report.merge(chunk_report)
            self.report.total_packets += chunk_report.total_packets
        else:
            self.report.total_packets += len(packets)
        for packet in packets:
            pid = packet.packet_id
            if pid in self._seen:
                self.telemetry.duplicates += 1
                self.report.add(
                    pid, "packet_id", "duplicate_ingest", "quarantined"
                )
                self.report.quarantined.append(pid)
                continue
            self._seen.add(pid)
            self.telemetry.ingested += 1
            if packet.sink_arrival_ms > self._max_sink_ms:
                self._max_sink_ms = packet.sink_arrival_ms
                self.telemetry.max_event_ms = self._max_sink_ms
                self.telemetry.watermark_ms = self.watermark_ms
            if self._anchor_ms is None:
                self._warmup.append(packet)
                self._warmup_min_t0 = min(
                    self._warmup_min_t0, packet.generation_time_ms
                )
                self._maybe_anchor()
            else:
                self._place(packet)
            self.telemetry.peak_resident_packets = max(
                self.telemetry.peak_resident_packets, self.resident_packets
            )
        self._advance(block=False)

    def poll(self) -> list[CommittedWindow]:
        """Non-blocking: advance the state machine, return new commits."""
        with span("poll"):
            self._advance(block=False)
            out, self._commits_out = self._commits_out, []
        return out

    def flush(self) -> list[CommittedWindow]:
        """Seal and solve everything outstanding; return the commits.

        After a flush every resident window is committed (or skipped) and
        every packet evicted. The stream stays usable: later ingests fall
        on the already-anchored grid, where anything behind the sealed
        frontier is quarantined as late.
        """
        with span("flush"):
            self._maybe_anchor(force=True)
            if self._slots:
                last = max(self._slots)
                for grid_index in range(self._frontier, last + 1):
                    self._seal_index(grid_index)
                self._frontier = max(self._frontier, last + 1)
            self._advance(block=True)
            out, self._commits_out = self._commits_out, []
        self.telemetry.publish()
        return out

    def quiesce(self) -> None:
        """Block until no window is in flight: drain every submitted
        solve and run the in-order commit gate. Does *not* force seals —
        open windows stay open (unlike :meth:`flush`). Commits produced
        here surface through the next :meth:`poll`. This is the
        precondition for :meth:`export_state`: a snapshot must not race
        the solver pool."""
        self._advance(block=True)

    def export_state(self) -> dict:
        """Strict-JSON document of the full engine state.

        Requires a quiesced engine with :meth:`poll` output absorbed;
        see :func:`repro.stream.state.export_engine_state` for the
        exactness contract. The durability layer snapshots this next to
        its WAL cursor."""
        from repro.stream.state import export_engine_state

        return export_engine_state(self)

    @classmethod
    def from_state(
        cls,
        state: dict,
        config: DomoConfig | None = None,
        lateness_ms: float = 5_000.0,
        executor: WindowExecutor | None = None,
    ) -> "StreamingReconstructor":
        """Rebuild an engine from :meth:`export_state` output.

        ``config`` and ``lateness_ms`` must match the exporting engine
        (the recovery layer enforces this with a config signature);
        the restored engine then behaves bit-identically to one that
        lived through the original ingests."""
        from repro.stream.state import restore_engine_state

        engine = cls(config, lateness_ms, executor)
        restore_engine_state(engine, state)
        return engine

    def close(self) -> None:
        """Release the executor's pool (the executor object is retained
        so :meth:`stats` still reports what actually ran). An executor
        injected at construction belongs to its owner and is left open."""
        if self._executor is not None and self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "StreamingReconstructor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Solver + lifecycle telemetry, shaped like the batch stats."""
        stats = summarize_telemetry(self._telemetries)
        executor = self._executor
        stats["execution_mode"] = executor.mode if executor else "serial"
        stats["workers"] = executor.workers if executor else 1
        if executor is not None and executor.fallback_reason is not None:
            stats["parallel_fallback_reason"] = executor.fallback_reason
        if self._span_ms is not None:
            stats["window_span_ms"] = self._span_ms
        stats["quarantined_packets"] = self.report.num_quarantined
        stats["degraded_constraints"] = self._degraded_constraints
        stats["validation"] = self.report.as_dict()
        return merge_stream_stats(stats, self.telemetry)

    # ------------------------------------------------------------------
    # Grid anchoring and membership
    # ------------------------------------------------------------------

    def _maybe_anchor(self, force: bool = False) -> None:
        """Fix the window grid once enough of the stream has been seen.

        The grid is anchored at the minimum generation time observed so
        far — exactly the batch planner's anchor when nothing has sealed
        yet, which is why flush-mode runs are batch-identical. With a
        finite lateness the anchor locks as soon as the watermark passes
        the oldest buffered t0 (the first moment a seal could happen).
        """
        if self._anchor_ms is not None or not self._warmup:
            return
        if not force and self.watermark_ms <= self._warmup_min_t0:
            return
        self._anchor_ms = self._warmup_min_t0
        self._span_ms = (
            self.config.window_span_ms
            if self.config.window_span_ms is not None
            else choose_window_span(
                self._warmup, self.config.target_window_packets
            )
        )
        self._grid_iter = iter_window_grid(
            self._anchor_ms, self._span_ms, self.config.effective_window_ratio
        )
        buffered, self._warmup = self._warmup, []
        self._warmup_min_t0 = INF
        for packet in generation_order(buffered):
            self._place(packet)

    def _extend_grid_through(self, time_ms: float) -> None:
        """Grow the lazy grid until its last window starts after ``time_ms``."""
        while not self._grid or self._grid[-1].start_ms <= time_ms:
            window = next(self._grid_iter)
            self._grid.append(window)
            self._grid_starts.append(window.start_ms)

    def _member_indices(self, t0_ms: float) -> list[int]:
        """Grid indices of every window whose solve region holds ``t0``."""
        self._extend_grid_through(t0_ms)
        # Rightmost window starting at or before t0; walk left while the
        # overlapping predecessors still contain it (<= 1/ratio windows).
        hi = bisect.bisect_right(self._grid_starts, t0_ms) - 1
        members = []
        k = hi
        while k >= 0 and self._grid[k].end_ms > t0_ms:
            if self._grid[k].contains(t0_ms):
                members.append(k)
            k -= 1
        members.reverse()
        return members

    def _keeps(self, grid_index: int, t0_ms: float) -> bool:
        """Batch-identical keep test (window 0 keeps everything below)."""
        window = self._grid[grid_index]
        if grid_index == 0:
            return t0_ms < window.keep_end_ms
        return window.keeps(t0_ms)

    def _place(self, packet: ReceivedPacket) -> None:
        """Assign one packet to its member windows (or quarantine it)."""
        t0 = packet.generation_time_ms
        members = self._member_indices(t0)
        kept_ks = [k for k in members if self._keeps(k, t0)]
        live = [k for k in members if k >= self._frontier]
        if not live or not kept_ks or max(kept_ks) < self._frontier:
            # Every window that could commit this packet's estimate has
            # already sealed (or its t0 predates the grid): quarantine
            # into the validation machinery rather than dropping.
            self.telemetry.late_quarantined += 1
            self.report.add(
                packet.packet_id,
                "sink_arrival_ms",
                "late_arrival",
                "quarantined",
            )
            self.report.quarantined.append(packet.packet_id)
            return
        for k in live:
            slot = self._slots.get(k)
            if slot is None:
                slot = _Slot(grid_index=k, window=self._display_window(k))
                self._slots[k] = slot
            slot.members.append(packet)
            if self._keeps(k, t0):
                slot.kept_ids.add(packet.packet_id)
        self._refs[packet.packet_id] = len(live)

    def _display_window(self, grid_index: int) -> TimeWindow:
        """The window with the batch planner's first-window fixup applied."""
        window = self._grid[grid_index]
        if grid_index == 0:
            return replace(window, keep_start_ms=-INF)
        return window

    # ------------------------------------------------------------------
    # Seal / solve / commit
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> WindowExecutor:
        if self._executor is None:
            config = self.config
            self._executor = WindowExecutor(
                config.solve_spec(),
                parallel=config.parallel,
                max_workers=config.max_workers,
            )
        return self._executor

    def _seal_ready(self) -> None:
        """Seal every window the watermark has fully passed."""
        if self._anchor_ms is None:
            return
        watermark = self.watermark_ms
        if watermark == -INF:
            return
        self._extend_grid_through(watermark)
        while (
            self._frontier < len(self._grid)
            and self._grid[self._frontier].end_ms <= watermark
        ):
            self._seal_index(self._frontier)
            self._frontier += 1

    def _seal_index(self, grid_index: int) -> None:
        """Transition one grid window out of the open state."""
        slot = self._slots.pop(grid_index, None)
        if slot is None:
            return  # empty grid position — nothing ever landed here
        if not slot.kept_ids:
            slot.state = WindowState.SKIPPED
            self.telemetry.windows_skipped += 1
            self._release(slot)
            return
        with span("seal"):
            slot.state = WindowState.SEALED
            slot.sealed_at = time.perf_counter()
            self.telemetry.windows_sealed += 1
            with span("window_build"):
                system = make_window_system(
                    slot.window,
                    slot.members,
                    slot.kept_ids,
                    constraint_config_for(self.config, self.report),
                )
            slot.degraded = system.system.stats.get(
                "sum_rows_distrusted", 0
            ) + system.system.stats.get("sum_upper_degraded", 0)
            slot.solve_index = self._next_solve_index
            self._next_solve_index += 1
            slot.state = WindowState.SOLVING
            self._solving[slot.solve_index] = slot
            self.telemetry.max_backlog = max(
                self.telemetry.max_backlog, self.backlog
            )
            self._ensure_executor().submit(slot.solve_index, system)

    def _advance(self, block: bool = False) -> None:
        """Seal what the watermark allows, drain solves, commit in order."""
        self._seal_ready()
        if self._executor is not None and self._solving:
            with span("solve"):
                for result in self._executor.drain(block=block):
                    self._completed[result.window_index] = result
        if self._next_commit_index in self._completed:
            with span("commit"):
                while self._next_commit_index in self._completed:
                    result = self._completed.pop(self._next_commit_index)
                    self._commit(result)
                    self._next_commit_index += 1

    def _commit(self, result: WindowResult) -> None:
        slot = self._solving.pop(result.window_index)
        slot.state = WindowState.COMMITTED
        latency = time.perf_counter() - slot.sealed_at
        self.telemetry.record_commit(latency)
        self._degraded_constraints += slot.degraded
        self._telemetries.append(result.telemetry)
        omega = self.config.omega_ms
        arrival_times = {
            p.packet_id: assemble_arrival_vector(p, result.estimates, omega)
            for p in slot.members
            if p.packet_id in slot.kept_ids
        }
        self._commits_out.append(
            CommittedWindow(
                solve_index=slot.solve_index,
                grid_index=slot.grid_index,
                window=slot.window,
                estimates=result.estimates,
                arrival_times=arrival_times,
                telemetry=result.telemetry,
                seal_to_commit_s=latency,
            )
        )
        self._release(slot)

    def _release(self, slot: _Slot) -> None:
        """Drop a finished window's packet references; evict orphans."""
        for packet in slot.members:
            pid = packet.packet_id
            remaining = self._refs.get(pid, 0) - 1
            if remaining <= 0:
                self._refs.pop(pid, None)
                self.telemetry.evicted_packets += 1
            else:
                self._refs[pid] = remaining
        slot.members = []
        slot.kept_ids = set()
