"""Historical home of the stream telemetry (moved to :mod:`repro.obs`).

The implementation now lives in :mod:`repro.obs.stream_telemetry`, next
to the metrics registry it publishes into; this module keeps the public
names importable from their original location.
"""

from repro.obs.stream_telemetry import (  # noqa: F401
    StreamTelemetry,
    format_stream_report,
    merge_stream_stats,
)

__all__ = [
    "StreamTelemetry",
    "format_stream_report",
    "merge_stream_stats",
]
