"""Strict-JSON state codec for :class:`StreamingReconstructor`.

The durability layer snapshots a quiesced engine and later rebuilds it
bit-exactly: every estimate the restored engine commits must equal what
the uncrashed engine would have committed. That forces the codec to be
explicit about things a casual serializer would get subtly wrong:

* **Open slots are serialized as membership, not re-derived.** Running
  ``_place()`` again on the resident packets looks equivalent but is
  not: a packet whose *keeping* window sealed before the crash can
  still be a live member of later open windows — re-placing it would
  quarantine it as late and change those windows' constraint systems.
  So each slot records its member/kept packet-table indices verbatim.
* **Non-finite floats ride as tagged strings.** Snapshots are strict
  JSON (``allow_nan=False``, the serve tier's wire rule), but engine
  state legitimately holds ``±inf`` sentinels (watermarks, warmup
  minima) and solver telemetry holds NaN residuals.
* **The window grid is not stored.** It is a pure function of
  ``(anchor, span, ratio)``; the codec stores those plus the generated
  length and re-advances :func:`iter_window_grid` on restore, so the
  grid stays bit-identical to the batch planner's by construction.

The document shape is versioned (:data:`ENGINE_STATE_SCHEMA`); the
snapshot store wraps it with the WAL cursor and session results.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.constants import INF
from repro.core.validation import ValidationIssue, ValidationReport
from repro.core.windows import iter_window_grid
from repro.runtime.telemetry import WindowTelemetry
from repro.sim.io import packet_from_json, packet_to_json
from repro.sim.packet import PacketId

__all__ = [
    "ENGINE_STATE_SCHEMA",
    "EngineStateError",
    "export_engine_state",
    "restore_engine_state",
]

ENGINE_STATE_SCHEMA = "domo.engine_state/1"


class EngineStateError(ValueError):
    """An engine state document cannot be exported or restored."""


# -- float / id codecs --------------------------------------------------


def _enc_f(value: float):
    """Float as strict JSON: finite stays a number, else a tagged string."""
    if value == INF:
        return "inf"
    if value == -INF:
        return "-inf"
    if value != value:
        return "nan"
    return float(value)


def _dec_f(value) -> float:
    if value == "inf":
        return INF
    if value == "-inf":
        return -INF
    if value == "nan":
        return float("nan")
    return float(value)


def _enc_id(packet_id) -> list:
    """Issue/quarantine ids: usually a PacketId, occasionally a string
    (sanitizer-era records); both shapes must round-trip."""
    if isinstance(packet_id, PacketId):
        return ["pid", packet_id.source, packet_id.seqno]
    return ["str", str(packet_id)]


def _dec_id(data):
    if data[0] == "pid":
        return PacketId(int(data[1]), int(data[2]))
    return data[1]


def _enc_packet(packet) -> dict:
    record = packet_to_json(packet)
    record["t0"] = _enc_f(record["t0"])
    record["t_sink"] = _enc_f(record["t_sink"])
    return record


def _dec_packet(record: dict):
    record = dict(record)
    record["t0"] = _dec_f(record["t0"])
    record["t_sink"] = _dec_f(record["t_sink"])
    return packet_from_json(record)


# -- report / telemetry codecs ------------------------------------------


def _enc_report(report: ValidationReport) -> dict:
    return {
        "mode": report.mode,
        "total_packets": report.total_packets,
        "malformed_records": report.malformed_records,
        "truncated_lines": report.truncated_lines,
        "issues": [
            [_enc_id(i.packet_id), i.field, i.reason, i.action]
            for i in report.issues
        ],
        "quarantined": [_enc_id(pid) for pid in report.quarantined],
        "distrusted_sums": [
            _enc_id(pid) for pid in sorted(report.distrusted_sums)
        ],
    }


def _dec_report(data: dict) -> ValidationReport:
    report = ValidationReport(
        mode=data["mode"],
        total_packets=data["total_packets"],
        malformed_records=data["malformed_records"],
        truncated_lines=data.get("truncated_lines", 0),
    )
    report.issues = [
        ValidationIssue(_dec_id(pid), field, reason, action)
        for pid, field, reason, action in data["issues"]
    ]
    report.quarantined = [_dec_id(pid) for pid in data["quarantined"]]
    report.distrusted_sums = {
        _dec_id(pid) for pid in data["distrusted_sums"]
    }
    return report


def _enc_window_telemetry(record: WindowTelemetry) -> dict:
    data = asdict(record)
    for name in ("primal_residual", "dual_residual", "solve_time_s"):
        data[name] = _enc_f(data[name])
    return data


def _dec_window_telemetry(data: dict) -> WindowTelemetry:
    data = dict(data)
    for name in ("primal_residual", "dual_residual", "solve_time_s"):
        data[name] = _dec_f(data[name])
    return WindowTelemetry(**data)


# -- engine state -------------------------------------------------------


def export_engine_state(engine) -> dict:
    """Capture a quiesced engine as a strict-JSON document.

    The engine must have no in-flight or uncollected work: call
    ``engine.quiesce()`` and absorb ``poll()`` output first. Anything
    still pending would be silently lost by a snapshot, so it is an
    error here rather than a footgun.
    """
    if engine._solving or engine._completed or engine._commits_out:
        raise EngineStateError(
            "engine has in-flight or uncollected windows; call quiesce() "
            "and drain poll() before exporting state"
        )
    # Deterministic packet table: warmup first, then open slots in grid
    # order, first appearance wins. Slots reference packets by index so
    # shared membership (one packet in several overlapping windows)
    # survives the round trip.
    table: list = []
    index_of: dict[PacketId, int] = {}

    def intern(packet) -> int:
        position = index_of.get(packet.packet_id)
        if position is None:
            position = len(table)
            index_of[packet.packet_id] = position
            table.append(packet)
        return position

    warmup = [intern(p) for p in engine._warmup]
    slots = []
    for grid_index in sorted(engine._slots):
        slot = engine._slots[grid_index]
        slots.append(
            {
                "grid_index": grid_index,
                "members": [intern(p) for p in slot.members],
                "kept": sorted(
                    index_of[pid] for pid in slot.kept_ids
                ),
            }
        )
    return {
        "schema": ENGINE_STATE_SCHEMA,
        "anchor_ms": (
            None if engine._anchor_ms is None else _enc_f(engine._anchor_ms)
        ),
        "span_ms": (
            None if engine._span_ms is None else _enc_f(engine._span_ms)
        ),
        "grid_len": len(engine._grid),
        "frontier": engine._frontier,
        "next_solve_index": engine._next_solve_index,
        "next_commit_index": engine._next_commit_index,
        "max_sink_ms": _enc_f(engine._max_sink_ms),
        "min_t0_ms": _enc_f(engine._min_t0_ms),
        "warmup_min_t0": _enc_f(engine._warmup_min_t0),
        "degraded_constraints": engine._degraded_constraints,
        "packets": [_enc_packet(p) for p in table],
        "warmup": warmup,
        "slots": slots,
        "refs": [
            [pid.source, pid.seqno, count]
            for pid, count in engine._refs.items()
        ],
        "seen": [[pid.source, pid.seqno] for pid in sorted(engine._seen)],
        "telemetry": _enc_telemetry(engine.telemetry),
        "report": _enc_report(engine.report),
        "window_telemetries": [
            _enc_window_telemetry(t) for t in engine._telemetries
        ],
    }


def _enc_telemetry(telemetry) -> dict:
    return {
        "ingested": telemetry.ingested,
        "duplicates": telemetry.duplicates,
        "late_quarantined": telemetry.late_quarantined,
        "evicted_packets": telemetry.evicted_packets,
        "peak_resident_packets": telemetry.peak_resident_packets,
        "windows_sealed": telemetry.windows_sealed,
        "windows_skipped": telemetry.windows_skipped,
        "windows_committed": telemetry.windows_committed,
        "max_backlog": telemetry.max_backlog,
        "seal_to_commit_total_s": _enc_f(telemetry.seal_to_commit_total_s),
        "seal_to_commit_max_s": _enc_f(telemetry.seal_to_commit_max_s),
        "max_event_ms": _enc_f(telemetry.max_event_ms),
        "watermark_ms": _enc_f(telemetry.watermark_ms),
        "seal_to_commit_s": [_enc_f(v) for v in telemetry.seal_to_commit_s],
    }


def _dec_telemetry(telemetry, data: dict) -> None:
    telemetry.ingested = data["ingested"]
    telemetry.duplicates = data["duplicates"]
    telemetry.late_quarantined = data["late_quarantined"]
    telemetry.evicted_packets = data["evicted_packets"]
    telemetry.peak_resident_packets = data["peak_resident_packets"]
    telemetry.windows_sealed = data["windows_sealed"]
    telemetry.windows_skipped = data["windows_skipped"]
    telemetry.windows_committed = data["windows_committed"]
    telemetry.max_backlog = data["max_backlog"]
    telemetry.seal_to_commit_total_s = _dec_f(data["seal_to_commit_total_s"])
    telemetry.seal_to_commit_max_s = _dec_f(data["seal_to_commit_max_s"])
    telemetry.max_event_ms = _dec_f(data["max_event_ms"])
    telemetry.watermark_ms = _dec_f(data["watermark_ms"])
    telemetry.seal_to_commit_s = [
        _dec_f(v) for v in data["seal_to_commit_s"]
    ]


def restore_engine_state(engine, state: dict) -> None:
    """Rehydrate a *freshly constructed* engine from an exported state.

    ``engine`` must not have ingested anything; its config/lateness are
    the caller's responsibility (the recovery layer verifies a config
    signature before getting here).
    """
    if state.get("schema") != ENGINE_STATE_SCHEMA:
        raise EngineStateError(
            f"engine state schema {state.get('schema')!r} != "
            f"{ENGINE_STATE_SCHEMA!r}"
        )
    if engine._seen or engine._warmup or engine._grid:
        raise EngineStateError(
            "restore target must be a freshly constructed engine"
        )
    from repro.stream.engine import _Slot  # local: avoid import cycle

    table = [_dec_packet(record) for record in state["packets"]]
    engine._anchor_ms = (
        None if state["anchor_ms"] is None else _dec_f(state["anchor_ms"])
    )
    engine._span_ms = (
        None if state["span_ms"] is None else _dec_f(state["span_ms"])
    )
    if engine._anchor_ms is not None:
        engine._grid_iter = iter_window_grid(
            engine._anchor_ms,
            engine._span_ms,
            engine.config.effective_window_ratio,
        )
        for _ in range(state["grid_len"]):
            window = next(engine._grid_iter)
            engine._grid.append(window)
            engine._grid_starts.append(window.start_ms)
    engine._frontier = state["frontier"]
    engine._next_solve_index = state["next_solve_index"]
    engine._next_commit_index = state["next_commit_index"]
    engine._max_sink_ms = _dec_f(state["max_sink_ms"])
    engine._min_t0_ms = _dec_f(state["min_t0_ms"])
    engine._warmup_min_t0 = _dec_f(state["warmup_min_t0"])
    engine._degraded_constraints = state["degraded_constraints"]
    engine._warmup = [table[i] for i in state["warmup"]]
    for slot_state in state["slots"]:
        members = [table[i] for i in slot_state["members"]]
        slot = _Slot(
            grid_index=slot_state["grid_index"],
            window=engine._display_window(slot_state["grid_index"]),
            members=members,
            kept_ids={table[i].packet_id for i in slot_state["kept"]},
        )
        engine._slots[slot_state["grid_index"]] = slot
    engine._refs = {
        PacketId(source, seqno): count
        for source, seqno, count in state["refs"]
    }
    engine._seen = {
        PacketId(source, seqno) for source, seqno in state["seen"]
    }
    _dec_telemetry(engine.telemetry, state["telemetry"])
    engine.report = _dec_report(state["report"])
    engine._telemetries = [
        _dec_window_telemetry(t) for t in state["window_telemetries"]
    ]
