"""Streaming reconstruction: ingest -> seal -> solve -> commit.

The online counterpart of :class:`~repro.core.pipeline.DomoReconstructor`
(which itself now runs as "ingest everything, then flush" on this
engine). See :mod:`repro.stream.engine` for the window state machine and
watermark semantics.
"""

from repro.stream.engine import (
    CommittedWindow,
    StreamingReconstructor,
    WindowState,
)
from repro.stream.telemetry import (
    StreamTelemetry,
    format_stream_report,
    merge_stream_stats,
)

__all__ = [
    "CommittedWindow",
    "StreamingReconstructor",
    "StreamTelemetry",
    "WindowState",
    "format_stream_report",
    "merge_stream_stats",
]
