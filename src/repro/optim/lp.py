"""Linear programs: HiGHS (scipy) front end plus a self-contained simplex.

Domo's bound computation (paper §IV.C) solves two LPs per unknown arrival
time: ``min t_k`` and ``max t_k`` subject to the order, sum-of-delays and
resolved FIFO constraints over an extracted sub-graph. This module exposes

* :func:`solve_lp` — the production path, delegating to scipy's HiGHS
  implementation (fast, robust);
* :func:`solve_lp_simplex` — a from-scratch dense Big-M simplex used as an
  independent cross-check in tests and the solver ablation bench.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.constants import INF
from repro.obs.solver_telemetry import record_solver_result
from repro.optim.result import SolverResult, SolverStatus


@dataclass
class LinearProgram:
    """``min c'x  s.t.  row_lower <= Ax <= row_upper, x_lower <= x <= x_upper``."""

    c: np.ndarray
    A: sp.spmatrix
    row_lower: np.ndarray
    row_upper: np.ndarray
    x_lower: np.ndarray | None = None
    x_upper: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        n = self.c.shape[0]
        self.A = sp.csr_matrix(self.A)
        if self.A.shape[1] != n:
            raise ValueError(f"A has {self.A.shape[1]} columns, expected {n}")
        m = self.A.shape[0]
        self.row_lower = np.asarray(self.row_lower, dtype=float).ravel()
        self.row_upper = np.asarray(self.row_upper, dtype=float).ravel()
        if self.row_lower.shape != (m,) or self.row_upper.shape != (m,):
            raise ValueError("row bounds must match the number of rows of A")
        if self.x_lower is None:
            self.x_lower = np.full(n, -INF)
        else:
            self.x_lower = np.asarray(self.x_lower, dtype=float).ravel()
        if self.x_upper is None:
            self.x_upper = np.full(n, INF)
        else:
            self.x_upper = np.asarray(self.x_upper, dtype=float).ravel()

    @property
    def num_variables(self) -> int:
        return self.c.shape[0]


_LINPROG_STATUS = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.ITERATION_LIMIT,
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.NUMERICAL_ERROR,
}


def solve_lp(problem: LinearProgram) -> SolverResult:
    """Solve a :class:`LinearProgram` with scipy's HiGHS backend."""
    # linprog wants A_ub x <= b_ub and A_eq x == b_eq; split box rows.
    started = time.perf_counter()
    eq_mask = problem.row_lower == problem.row_upper
    A = problem.A.tocsr()
    up_mask = ~eq_mask & np.isfinite(problem.row_upper)
    lo_mask = ~eq_mask & np.isfinite(problem.row_lower)
    blocks = []
    rhs_parts = []
    if np.any(up_mask):
        blocks.append(A[up_mask])
        rhs_parts.append(problem.row_upper[up_mask])
    if np.any(lo_mask):
        blocks.append(-A[lo_mask])
        rhs_parts.append(-problem.row_lower[lo_mask])
    A_ub = sp.vstack(blocks, format="csr") if blocks else None
    b_ub = np.concatenate(rhs_parts) if rhs_parts else None
    eq_idx = np.nonzero(eq_mask)[0]
    A_eq = A[eq_idx] if eq_idx.size else None
    b_eq = problem.row_lower[eq_idx] if eq_idx.size else None

    bounds = [
        (
            None if not np.isfinite(lo) else lo,
            None if not np.isfinite(hi) else hi,
        )
        for lo, hi in zip(problem.x_lower, problem.x_upper)
    ]
    outcome = linprog(
        problem.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _LINPROG_STATUS.get(outcome.status, SolverStatus.NUMERICAL_ERROR)
    x = np.asarray(outcome.x) if outcome.x is not None else np.empty(0)
    return record_solver_result(
        "lp",
        SolverResult(
            status=status,
            x=x,
            objective=float(outcome.fun) if status.is_usable else float("nan"),
            iterations=int(getattr(outcome, "nit", 0) or 0),
            solve_time_s=time.perf_counter() - started,
            info={"message": outcome.message},
        ),
    )


def solve_lp_simplex(
    problem: LinearProgram,
    max_iterations: int = 20000,
    tol: float = 1e-9,
) -> SolverResult:
    """Solve a small dense LP with a from-scratch Big-M simplex.

    The problem is rewritten in standard form ``min c'x, Ax = b, x >= 0``
    (free variables split as ``x+ - x-``, inequality rows given slacks) and
    solved by the two-phase tableau simplex with Bland's anti-cycling rule.
    Artificial columns stay in the tableau during Phase II (they may remain
    basic at level zero on redundant rows) but are banned from entering.
    Intended for modest sizes — this is the verification path, not the
    production path.
    """
    c_std, A_std, b_std, recover = _standardize(problem)
    m, n = A_std.shape

    # Normalize RHS signs, then append one artificial per row.
    negative = b_std < 0
    A_std[negative] *= -1.0
    b_std = np.abs(b_std)
    tableau_A = np.hstack([A_std, np.eye(m)])
    basis = list(range(n, n + m))

    # Phase I: minimize the sum of artificials.
    phase1_c = np.concatenate([np.zeros(n), np.ones(m)])
    status, basis, xb = _simplex_iterate(
        tableau_A, b_std, phase1_c, basis, max_iterations, tol
    )
    if status is not SolverStatus.OPTIMAL:
        return SolverResult(status=status, x=np.empty(0))
    if float(phase1_c[basis] @ xb) > 1e-7 * max(1.0, float(np.max(b_std, initial=0.0))):
        return SolverResult(status=SolverStatus.INFEASIBLE, x=np.empty(0))

    # Phase II: original costs, artificials frozen out of the entering set.
    phase2_c = np.concatenate([c_std, np.zeros(m)])
    banned = set(range(n, n + m))
    status, basis, xb = _simplex_iterate(
        tableau_A, b_std, phase2_c, basis, max_iterations, tol, banned=banned
    )
    if status is not SolverStatus.OPTIMAL:
        return SolverResult(status=status, x=np.empty(0))

    x_std = np.zeros(n)
    for row, col in enumerate(basis):
        if col < n:
            x_std[col] = xb[row]
    x = recover(x_std)
    return SolverResult(
        status=SolverStatus.OPTIMAL,
        x=x,
        objective=float(problem.c @ x),
    )


def _standardize(problem: LinearProgram):
    """Rewrite a box-form LP into ``min c'x, Ax = b, x >= 0`` (dense).

    Returns ``(c, A, b, recover)`` where ``recover`` maps a standard-form
    solution back to the original variable space.
    """
    n = problem.num_variables
    A = problem.A.toarray()
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    is_equality: list[bool] = []

    def push(row: np.ndarray, value: float, equality: bool) -> None:
        rows.append(row)
        rhs.append(value)
        is_equality.append(equality)

    for i in range(A.shape[0]):
        lo, hi = problem.row_lower[i], problem.row_upper[i]
        if lo == hi:
            push(A[i].copy(), lo, True)
        else:
            if np.isfinite(hi):
                push(A[i].copy(), hi, False)
            if np.isfinite(lo):
                push(-A[i], -lo, False)
    for j in range(n):
        lo, hi = problem.x_lower[j], problem.x_upper[j]
        unit = np.zeros(n)
        unit[j] = 1.0
        if np.isfinite(hi):
            push(unit.copy(), hi, False)
        if np.isfinite(lo):
            push(-unit, -lo, False)

    G = np.array(rows) if rows else np.zeros((0, n))
    h = np.array(rhs)
    num_rows = G.shape[0]
    slack_cols = [i for i, eq in enumerate(is_equality) if not eq]
    slack_block = np.zeros((num_rows, len(slack_cols)))
    for k, i in enumerate(slack_cols):
        slack_block[i, k] = 1.0

    A_std = np.hstack([G, -G, slack_block])
    c_std = np.concatenate([problem.c, -problem.c, np.zeros(len(slack_cols))])

    def recover(x_std: np.ndarray) -> np.ndarray:
        return x_std[:n] - x_std[n : 2 * n]

    return c_std, A_std, h, recover


def _simplex_iterate(A, b, c, basis, max_iterations, tol, banned=frozenset()):
    """Tableau simplex with Bland's rule from a given feasible basis.

    ``banned`` columns are never chosen to enter the basis (used to freeze
    Phase-I artificials during Phase II).
    """
    m, n = A.shape
    basis = list(basis)
    xb = b.copy()
    for _ in range(max_iterations):
        B = A[:, basis]
        try:
            B_inv = np.linalg.inv(B)
        except np.linalg.LinAlgError:
            B_inv = np.linalg.pinv(B)
        xb = B_inv @ b
        y = c[basis] @ B_inv
        reduced = c - y @ A
        in_basis = set(basis)
        entering = -1
        for j in range(n):
            if j not in in_basis and j not in banned and reduced[j] < -tol:
                entering = j
                break
        if entering < 0:
            return SolverStatus.OPTIMAL, basis, xb
        direction = B_inv @ A[:, entering]
        ratios = [
            (xb[i] / direction[i], i) for i in range(m) if direction[i] > tol
        ]
        if not ratios:
            return SolverStatus.UNBOUNDED, basis, xb
        best = min(r for r, _ in ratios)
        # Bland: among minimal ratios leave the smallest basic index.
        leaving_row = min(
            (basis[i], i) for r, i in ratios if r <= best + tol
        )[1]
        basis[leaving_row] = entering
    return SolverStatus.ITERATION_LIMIT, basis, xb
