"""ADMM solver for convex QPs with affine positive-semidefinite constraints.

Domo's faithful FIFO handling (paper Eq. (2)–(4)) lifts the arrival-time
vector ``u`` to a matrix variable ``U`` and imposes the Schur-complement
block ``[[U, u], [u', 1]] >= 0`` (PSD). After the lift, the whole problem is

    minimize    0.5 x' P x + q' x
    subject to  l <= A x <= u                       (box rows)
                mat(C_j x + d_j)  is PSD            (one or more blocks)

with ``x`` stacking the scalar unknowns and the upper triangle of ``U``.
This module solves exactly that shape with an ADMM scheme: the box rows are
handled by clipping (as in :mod:`repro.optim.qp`) and each PSD block by
eigenvalue projection onto the PSD cone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.obs.solver_telemetry import record_solver_result
from repro.optim.linalg import KKTFactorization, as_csc, project_psd
from repro.optim.result import SolverResult, SolverStatus


@dataclass
class PSDBlock:
    """Affine PSD constraint ``mat(C x + d) >= 0``.

    ``C`` has ``dim * dim`` rows mapping the decision vector to the
    row-major flattening of a ``dim x dim`` symmetric matrix; ``d`` is the
    constant offset.
    """

    dim: int
    C: sp.spmatrix
    d: np.ndarray

    def __post_init__(self) -> None:
        self.C = sp.csr_matrix(self.C)
        self.d = np.asarray(self.d, dtype=float).ravel()
        expected = self.dim * self.dim
        if self.C.shape[0] != expected or self.d.shape != (expected,):
            raise ValueError(
                f"PSD block dim {self.dim} needs {expected} rows; got "
                f"C: {self.C.shape[0]}, d: {self.d.shape[0]}"
            )

    def matrix_at(self, x: np.ndarray) -> np.ndarray:
        """The symmetric matrix the block evaluates to at ``x``."""
        flat = self.C @ x + self.d
        mat = flat.reshape(self.dim, self.dim)
        return 0.5 * (mat + mat.T)


@dataclass
class SDPSettings:
    """Tunable parameters of the ADMM iteration."""

    rho: float = 1.0
    sigma: float = 1e-6
    max_iterations: int = 3000
    eps_abs: float = 1e-5
    eps_rel: float = 1e-5
    check_interval: int = 20
    almost_factor: float = 1000.0


@dataclass
class SDPProblem:
    """QP data plus a list of affine PSD blocks (see module docstring)."""

    P: sp.spmatrix
    q: np.ndarray
    A: sp.spmatrix
    lower: np.ndarray
    upper: np.ndarray
    psd_blocks: list[PSDBlock] = field(default_factory=list)
    settings: SDPSettings = field(default_factory=SDPSettings)

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=float).ravel()
        n = self.q.shape[0]
        self.P = as_csc(self.P, (n, n))
        self.A = as_csc(self.A)
        if self.A.shape[1] != n:
            raise ValueError(f"A has {self.A.shape[1]} columns, expected {n}")
        self.lower = np.asarray(self.lower, dtype=float).ravel()
        self.upper = np.asarray(self.upper, dtype=float).ravel()
        for block in self.psd_blocks:
            if block.C.shape[1] != n:
                raise ValueError("PSD block column count mismatch")

    @property
    def num_variables(self) -> int:
        return self.q.shape[0]

    def objective(self, x: np.ndarray) -> float:
        """Objective value at ``x``."""
        return float(0.5 * x @ (self.P @ x) + self.q @ x)


def solve_sdp(problem: SDPProblem, x0: np.ndarray | None = None) -> SolverResult:
    """Solve an :class:`SDPProblem` with consensus ADMM.

    Stacks the box rows and all PSD blocks into one splitting variable
    ``z = C_hat x + d_hat``; the z-update clips the box part and projects
    each PSD part onto the cone via eigenvalue clipping.
    """
    cfg = problem.settings
    started = time.perf_counter()
    n = problem.num_variables
    m_box = problem.A.shape[0]

    stacked = [problem.A] + [block.C for block in problem.psd_blocks]
    offsets = [np.zeros(m_box)] + [block.d for block in problem.psd_blocks]
    C_hat = sp.vstack(stacked, format="csc") if stacked else sp.csc_matrix((0, n))
    d_hat = np.concatenate(offsets) if offsets else np.zeros(0)
    m_total = C_hat.shape[0]

    # Segment boundaries of each PSD block inside the stacked vector.
    segments: list[tuple[int, int, int]] = []
    cursor = m_box
    for block in problem.psd_blocks:
        size = block.dim * block.dim
        segments.append((cursor, cursor + size, block.dim))
        cursor += size

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    z = _project(C_hat @ x + d_hat, problem, m_box, segments)
    y = np.zeros(m_total)

    kkt = KKTFactorization(problem.P, C_hat, cfg.sigma, cfg.rho)
    Ct = C_hat.T
    status = SolverStatus.ITERATION_LIMIT
    primal_res = dual_res = float("inf")
    iteration = 0
    for iteration in range(1, cfg.max_iterations + 1):
        rhs = cfg.sigma * x - problem.q + cfg.rho * (Ct @ (z - d_hat - y / cfg.rho))
        x = kkt.solve(rhs)
        cx = C_hat @ x + d_hat
        z = _project(cx + y / cfg.rho, problem, m_box, segments)
        y = y + cfg.rho * (cx - z)

        if iteration % cfg.check_interval == 0 or iteration == cfg.max_iterations:
            primal_res = float(np.max(np.abs(cx - z))) if m_total else 0.0
            dual_vec = problem.P @ x + problem.q + Ct @ y
            dual_res = float(np.max(np.abs(dual_vec))) if n else 0.0
            scale = max(
                float(np.max(np.abs(cx))) if m_total else 0.0,
                float(np.max(np.abs(z))) if m_total else 0.0,
                1.0,
            )
            eps_primal = cfg.eps_abs + cfg.eps_rel * scale
            eps_dual = cfg.eps_abs + cfg.eps_rel * max(
                float(np.max(np.abs(problem.q))) if n else 0.0, 1.0
            )
            if primal_res <= eps_primal and dual_res <= eps_dual:
                status = SolverStatus.OPTIMAL
                break

    if status is SolverStatus.ITERATION_LIMIT and np.isfinite(primal_res):
        scale = max(float(np.max(np.abs(z))) if m_total else 0.0, 1.0)
        if primal_res <= cfg.almost_factor * (cfg.eps_abs + cfg.eps_rel * scale):
            status = SolverStatus.ALMOST_OPTIMAL
    if not np.all(np.isfinite(x)):
        status = SolverStatus.NUMERICAL_ERROR

    return record_solver_result(
        "sdp",
        SolverResult(
            status=status,
            x=x,
            objective=(
                problem.objective(x) if status.is_usable else float("nan")
            ),
            iterations=iteration,
            primal_residual=primal_res,
            dual_residual=dual_res,
            solve_time_s=time.perf_counter() - started,
        ),
    )


def _project(
    vector: np.ndarray,
    problem: SDPProblem,
    m_box: int,
    segments: list[tuple[int, int, int]],
) -> np.ndarray:
    """Project the stacked splitting variable onto box x PSD-cone product."""
    projected = vector.copy()
    projected[:m_box] = np.clip(vector[:m_box], problem.lower, problem.upper)
    for start, stop, dim in segments:
        mat = vector[start:stop].reshape(dim, dim)
        projected[start:stop] = project_psd(mat).reshape(-1)
    return projected
