"""OSQP-style ADMM solver for convex quadratic programs.

Solves problems of the form::

    minimize    0.5 * x' P x + q' x
    subject to  l <= A x <= u

where ``P`` is positive semidefinite. This is the operator-splitting scheme
of Stellato et al. (OSQP): introduce ``z = A x``, alternate a regularized
equality-constrained QP step (one cached factorization) with a box
projection, and update scaled dual variables. The Domo estimation problem
(paper Eq. (8) plus the order / sum-of-delays / linearized FIFO
constraints) is exactly this shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.obs.solver_telemetry import record_solver_result
from repro.optim.linalg import KKTFactorization, as_csc
from repro.optim.result import SolverResult, SolverStatus


@dataclass
class QPSettings:
    """Tunable parameters of the ADMM iteration."""

    rho: float = 0.1
    sigma: float = 1e-6
    alpha: float = 1.6
    max_iterations: int = 4000
    eps_abs: float = 1e-5
    eps_rel: float = 1e-5
    check_interval: int = 25
    #: residual level (relative) below which a run that hits the iteration
    #: cap is still reported as ALMOST_OPTIMAL rather than a failure.
    almost_factor: float = 100.0


@dataclass
class QPProblem:
    """Data of one QP instance ``min 0.5 x'Px + q'x  s.t.  l <= Ax <= u``."""

    P: sp.spmatrix
    q: np.ndarray
    A: sp.spmatrix
    lower: np.ndarray
    upper: np.ndarray
    settings: QPSettings = field(default_factory=QPSettings)

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=float).ravel()
        n = self.q.shape[0]
        self.P = as_csc(self.P, (n, n))
        self.A = as_csc(self.A)
        if self.A.shape[1] != n:
            raise ValueError(
                f"A has {self.A.shape[1]} columns, expected {n}"
            )
        m = self.A.shape[0]
        self.lower = np.asarray(self.lower, dtype=float).ravel()
        self.upper = np.asarray(self.upper, dtype=float).ravel()
        if self.lower.shape != (m,) or self.upper.shape != (m,):
            raise ValueError("bound vectors must match the number of rows of A")
        if np.any(self.lower > self.upper):
            raise ValueError("some constraint has lower > upper")

    @property
    def num_variables(self) -> int:
        return self.q.shape[0]

    @property
    def num_constraints(self) -> int:
        return self.A.shape[0]

    def objective(self, x: np.ndarray) -> float:
        """Objective value ``0.5 x'Px + q'x`` at ``x``."""
        return float(0.5 * x @ (self.P @ x) + self.q @ x)


def solve_qp(
    problem: QPProblem,
    x0: np.ndarray | None = None,
) -> SolverResult:
    """Solve a :class:`QPProblem` with ADMM.

    Args:
        problem: the QP instance.
        x0: optional warm-start point.

    Returns:
        A :class:`SolverResult`; ``status.is_usable`` indicates success.
    """
    cfg = problem.settings
    n, m = problem.num_variables, problem.num_constraints
    started = time.perf_counter()
    if m == 0:
        result = _solve_unconstrained(problem)
        result.solve_time_s = time.perf_counter() - started
        return record_solver_result("qp", result)

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float)
    z = np.clip(problem.A @ x, problem.lower, problem.upper)
    y = np.zeros(m)

    kkt = KKTFactorization(problem.P, problem.A, cfg.sigma, cfg.rho)
    A, At = problem.A, problem.A.T
    status = SolverStatus.ITERATION_LIMIT
    primal_res = dual_res = float("inf")
    iteration = 0
    for iteration in range(1, cfg.max_iterations + 1):
        # OSQP iteration (Stellato et al., Algorithm 1) with relaxation.
        rhs = cfg.sigma * x - problem.q + At @ (cfg.rho * z - y)
        x_tilde = kkt.solve(rhs)
        z_tilde = A @ x_tilde
        x = cfg.alpha * x_tilde + (1.0 - cfg.alpha) * x
        z_relaxed = cfg.alpha * z_tilde + (1.0 - cfg.alpha) * z
        z_new = np.clip(
            z_relaxed + y / cfg.rho, problem.lower, problem.upper
        )
        y = y + cfg.rho * (z_relaxed - z_new)
        z = z_new

        if iteration % cfg.check_interval == 0 or iteration == cfg.max_iterations:
            primal_res, dual_res, eps_primal, eps_dual = _residuals(
                problem, x, z, y
            )
            if primal_res <= eps_primal and dual_res <= eps_dual:
                status = SolverStatus.OPTIMAL
                break
    else:  # pragma: no cover - loop always breaks or exhausts above
        pass

    if status is SolverStatus.ITERATION_LIMIT:
        primal_res, dual_res, eps_primal, eps_dual = _residuals(problem, x, z, y)
        if (
            primal_res <= cfg.almost_factor * eps_primal
            and dual_res <= cfg.almost_factor * eps_dual
        ):
            status = SolverStatus.ALMOST_OPTIMAL
    if not np.all(np.isfinite(x)):
        status = SolverStatus.NUMERICAL_ERROR

    return record_solver_result(
        "qp",
        SolverResult(
            status=status,
            x=x,
            objective=(
                problem.objective(x) if status.is_usable else float("nan")
            ),
            iterations=iteration,
            primal_residual=primal_res,
            dual_residual=dual_res,
            solve_time_s=time.perf_counter() - started,
            info={
                "dual": y,
                "num_variables": n,
                "num_constraints": m,
            },
        ),
    )


def _solve_unconstrained(problem: QPProblem) -> SolverResult:
    """Direct solve of ``min 0.5 x'Px + q'x`` (regularized when singular)."""
    n = problem.num_variables
    dense = problem.P.toarray() + 1e-9 * np.eye(n)
    try:
        x = np.linalg.solve(dense, -problem.q)
    except np.linalg.LinAlgError:
        x = np.linalg.lstsq(dense, -problem.q, rcond=None)[0]
    return SolverResult(
        status=SolverStatus.OPTIMAL,
        x=x,
        objective=problem.objective(x),
        iterations=0,
        primal_residual=0.0,
        dual_residual=0.0,
    )


def _residuals(problem: QPProblem, x, z, y):
    """Primal/dual residuals and their scaled tolerances (OSQP criteria)."""
    cfg = problem.settings
    ax = problem.A @ x
    primal = float(np.max(np.abs(ax - z))) if z.size else 0.0
    dual_vec = problem.P @ x + problem.q + problem.A.T @ y
    dual = float(np.max(np.abs(dual_vec))) if dual_vec.size else 0.0

    scale_primal = max(
        float(np.max(np.abs(ax))) if ax.size else 0.0,
        float(np.max(np.abs(z))) if z.size else 0.0,
        1.0,
    )
    px = problem.P @ x
    aty = problem.A.T @ y
    scale_dual = max(
        float(np.max(np.abs(px))) if px.size else 0.0,
        float(np.max(np.abs(aty))) if aty.size else 0.0,
        float(np.max(np.abs(problem.q))) if problem.q.size else 0.0,
        1.0,
    )
    eps_primal = cfg.eps_abs + cfg.eps_rel * scale_primal
    eps_dual = cfg.eps_abs + cfg.eps_rel * scale_dual
    return primal, dual, eps_primal, eps_dual
