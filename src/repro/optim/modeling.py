"""A small modeling layer: named variables and box-form linear constraints.

All Domo constraint producers (order, sum-of-delays, FIFO) emit rows into a
:class:`ConstraintBuilder`, which assembles the sparse system
``l <= A x <= u`` consumed by the QP/LP/SDP solvers. Equalities are rows
with ``l == u``; one-sided rows use ``-inf`` / ``+inf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Mapping

import numpy as np
import scipy.sparse as sp

from repro.constants import INF


class VariableRegistry:
    """Bidirectional mapping between hashable variable keys and indices.

    Domo indexes every unknown arrival time by a ``(packet_id, hop)`` key;
    the registry assigns each key a dense column index for the solvers.
    """

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}
        self._keys: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._keys)

    def add(self, key: Hashable) -> int:
        """Register ``key`` (idempotent) and return its column index."""
        index = self._index.get(key)
        if index is None:
            index = len(self._keys)
            self._index[key] = index
            self._keys.append(key)
        return index

    def index_of(self, key: Hashable) -> int:
        """Column index of an already-registered key."""
        return self._index[key]

    def get(self, key: Hashable) -> int | None:
        """Column index of ``key``, or ``None`` if unregistered."""
        return self._index.get(key)

    def key_of(self, index: int) -> Hashable:
        """Key registered at a column index."""
        return self._keys[index]

    def keys(self) -> list[Hashable]:
        """All keys in column order (copy)."""
        return list(self._keys)


@dataclass(frozen=True)
class ConstraintRow:
    """One row ``lower <= sum(coeff * x[idx]) <= upper`` with a provenance tag."""

    indices: tuple[int, ...]
    coefficients: tuple[float, ...]
    lower: float
    upper: float
    tag: str = ""

    def evaluate(self, x: np.ndarray) -> float:
        """Value of the row's linear form at ``x``."""
        return float(sum(c * x[i] for i, c in zip(self.indices, self.coefficients)))

    def violation(self, x: np.ndarray) -> float:
        """Amount by which ``x`` violates the row (0 when satisfied)."""
        value = self.evaluate(x)
        return max(0.0, self.lower - value, value - self.upper)


class ConstraintBuilder:
    """Accumulates :class:`ConstraintRow` objects and builds the sparse system."""

    def __init__(self, num_variables: int | None = None) -> None:
        self._rows: list[ConstraintRow] = []
        self._num_variables = num_variables

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[ConstraintRow]:
        return list(self._rows)

    def add(
        self,
        terms: Mapping[int, float] | Iterable[tuple[int, float]],
        lower: float = -INF,
        upper: float = INF,
        tag: str = "",
    ) -> None:
        """Add a row ``lower <= sum(coeff * x) <= upper``.

        Terms with the same index are merged; zero coefficients are kept out.
        """
        if lower > upper:
            raise ValueError(f"empty row interval [{lower}, {upper}]")
        merged: dict[int, float] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for index, coefficient in items:
            if index < 0:
                raise ValueError(f"negative variable index {index}")
            merged[index] = merged.get(index, 0.0) + float(coefficient)
        merged = {i: c for i, c in merged.items() if c != 0.0}
        if not merged:
            if lower > 0.0 or upper < 0.0:
                raise ValueError("constant row is infeasible")
            return
        indices = tuple(sorted(merged))
        self._rows.append(
            ConstraintRow(
                indices=indices,
                coefficients=tuple(merged[i] for i in indices),
                lower=float(lower),
                upper=float(upper),
                tag=tag,
            )
        )

    def add_le(self, terms, upper: float, tag: str = "") -> None:
        """Add ``sum(terms) <= upper``."""
        self.add(terms, lower=-INF, upper=upper, tag=tag)

    def add_ge(self, terms, lower: float, tag: str = "") -> None:
        """Add ``sum(terms) >= lower``."""
        self.add(terms, lower=lower, upper=INF, tag=tag)

    def add_eq(self, terms, value: float, tag: str = "") -> None:
        """Add ``sum(terms) == value``."""
        self.add(terms, lower=value, upper=value, tag=tag)

    def extend(self, other: "ConstraintBuilder") -> None:
        """Append all rows from another builder."""
        self._rows.extend(other._rows)

    def build(self, num_variables: int | None = None):
        """Assemble ``(A, l, u)`` with ``A`` in CSR format.

        Args:
            num_variables: number of columns; defaults to the value passed
                at construction or to ``max index + 1``.
        """
        if num_variables is None:
            num_variables = self._num_variables
        if num_variables is None:
            num_variables = 1 + max(
                (max(row.indices) for row in self._rows), default=-1
            )
        data: list[float] = []
        row_ids: list[int] = []
        col_ids: list[int] = []
        lower = np.empty(len(self._rows))
        upper = np.empty(len(self._rows))
        for row_id, row in enumerate(self._rows):
            lower[row_id] = row.lower
            upper[row_id] = row.upper
            for index, coefficient in zip(row.indices, row.coefficients):
                if index >= num_variables:
                    raise ValueError(
                        f"row references column {index} >= n={num_variables}"
                    )
                row_ids.append(row_id)
                col_ids.append(index)
                data.append(coefficient)
        matrix = sp.csr_matrix(
            (data, (row_ids, col_ids)), shape=(len(self._rows), num_variables)
        )
        return matrix, lower, upper

    def max_violation(self, x: np.ndarray) -> float:
        """Largest violation of any row at ``x`` (0 when fully feasible)."""
        return max((row.violation(x) for row in self._rows), default=0.0)

    def rows_by_tag(self, prefix: str) -> list[ConstraintRow]:
        """All rows whose tag starts with ``prefix``."""
        return [row for row in self._rows if row.tag.startswith(prefix)]

    def filtered(self, keep) -> "ConstraintBuilder":
        """A new builder holding only the rows whose tag satisfies ``keep``.

        Used by the degradation ladder: an infeasible system is re-solved
        with whole constraint families (identified by their tag prefixes)
        removed. Rows are shared, not copied — :class:`ConstraintRow` is
        frozen, so sharing is safe.
        """
        out = ConstraintBuilder(num_variables=self._num_variables)
        out._rows = [row for row in self._rows if keep(row.tag)]
        return out
