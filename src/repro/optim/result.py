"""Common result and status types shared by all solvers in :mod:`repro.optim`."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolverStatus(enum.Enum):
    """Termination status of a solver run."""

    OPTIMAL = "optimal"
    #: Residuals small but tolerance not fully met within the iteration cap.
    ALMOST_OPTIMAL = "almost_optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def is_usable(self) -> bool:
        """Whether the solution vector can be used as an answer."""
        return self in (SolverStatus.OPTIMAL, SolverStatus.ALMOST_OPTIMAL)


class SolverError(RuntimeError):
    """Raised when a solver cannot produce a usable solution."""

    def __init__(self, status: SolverStatus, message: str = "") -> None:
        super().__init__(message or f"solver failed with status {status.value}")
        self.status = status


@dataclass
class SolverResult:
    """Outcome of one solver invocation.

    Attributes:
        status: termination status.
        x: primal solution (empty array when infeasible/unbounded).
        objective: objective value at ``x`` (``nan`` when not usable).
        iterations: iterations performed (0 for direct methods).
        primal_residual: final primal feasibility residual (inf-norm).
        dual_residual: final dual feasibility residual (inf-norm).
        solve_time_s: wall-clock time spent inside the solver.
        info: free-form solver-specific details.
    """

    status: SolverStatus
    x: np.ndarray
    objective: float = float("nan")
    iterations: int = 0
    primal_residual: float = float("nan")
    dual_residual: float = float("nan")
    solve_time_s: float = 0.0
    info: dict = field(default_factory=dict)

    def require_usable(self) -> "SolverResult":
        """Return ``self`` or raise :class:`SolverError` if not usable."""
        if not self.status.is_usable:
            raise SolverError(self.status, str(self.info.get("message", "")))
        return self
