"""Linear-algebra helpers shared by the ADMM solvers."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + M') / 2`` of a square matrix."""
    return 0.5 * (matrix + matrix.T)


def project_psd(matrix: np.ndarray) -> np.ndarray:
    """Project a symmetric matrix onto the positive-semidefinite cone.

    Uses the eigenvalue clipping characterization: if ``M = V diag(w) V'``
    then the nearest PSD matrix in Frobenius norm is
    ``V diag(max(w, 0)) V'``.
    """
    sym = symmetrize(np.asarray(matrix, dtype=float))
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    if eigenvalues[0] >= 0.0:
        return sym
    clipped = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def is_psd(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """Whether a symmetric matrix is PSD up to tolerance ``tol``."""
    sym = symmetrize(np.asarray(matrix, dtype=float))
    smallest = np.linalg.eigvalsh(sym)[0]
    return bool(smallest >= -tol * max(1.0, abs(smallest)))


def vec_symmetric(matrix: np.ndarray) -> np.ndarray:
    """Flatten a symmetric matrix to a full ``n*n`` vector (row-major)."""
    return np.asarray(matrix, dtype=float).reshape(-1)


def mat_symmetric(vector: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`vec_symmetric`: reshape and symmetrize."""
    return symmetrize(np.asarray(vector, dtype=float).reshape(dim, dim))


class KKTFactorization:
    """Cached factorization of the ADMM normal-equation matrix.

    ADMM iterations repeatedly solve ``(P + sigma*I + rho*A'A) x = rhs``
    with fixed ``P``, ``A`` and penalty parameters; factor once and reuse.
    Falls back from sparse LU to a dense least-squares style solve when the
    sparse factorization fails (e.g. a numerically singular system).
    """

    def __init__(
        self,
        quadratic: sp.spmatrix,
        constraints: sp.spmatrix,
        sigma: float,
        rho: float,
    ) -> None:
        n = quadratic.shape[0]
        system = (
            sp.csc_matrix(quadratic)
            + sigma * sp.identity(n, format="csc")
            + rho * (constraints.T @ constraints)
        )
        self._dense_inverse: np.ndarray | None = None
        try:
            self._lu = spla.splu(sp.csc_matrix(system))
        except RuntimeError:
            self._lu = None
            dense = system.toarray()
            self._dense_inverse = np.linalg.pinv(dense)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve the cached system for a right-hand side."""
        if self._lu is not None:
            return self._lu.solve(rhs)
        assert self._dense_inverse is not None
        return self._dense_inverse @ rhs


def as_csc(matrix, shape: tuple[int, int] | None = None) -> sp.csc_matrix:
    """Coerce dense/sparse input to CSC, validating the shape if given."""
    result = sp.csc_matrix(matrix)
    if shape is not None and result.shape != shape:
        raise ValueError(f"expected shape {shape}, got {result.shape}")
    return result
