"""Convex optimization substrate used by the Domo PC-side reconstruction.

The paper solves its estimation problem (a convex QP), its bound problems
(LPs) and its semidefinite relaxation (an SDP) with off-the-shelf solvers.
This subpackage provides those solvers from scratch:

* :mod:`repro.optim.qp` — an OSQP-style ADMM solver for quadratic programs
  of the form ``min 0.5 x'Px + q'x  s.t.  l <= Ax <= u``.
* :mod:`repro.optim.lp` — linear programs via scipy's HiGHS backend with a
  self-contained dense simplex fallback.
* :mod:`repro.optim.sdp` — an ADMM solver for QPs with additional affine
  positive-semidefinite (PSD) cone constraints, used by the faithful
  semidefinite relaxation of the FIFO constraints.
* :mod:`repro.optim.modeling` — a tiny variable/constraint modeling layer
  shared by all constraint producers.
"""

from repro.optim.lp import LinearProgram, solve_lp, solve_lp_simplex
from repro.optim.modeling import ConstraintBuilder, VariableRegistry
from repro.optim.qp import QPProblem, solve_qp
from repro.optim.result import SolverError, SolverResult, SolverStatus
from repro.optim.sdp import PSDBlock, SDPProblem, solve_sdp

__all__ = [
    "ConstraintBuilder",
    "LinearProgram",
    "PSDBlock",
    "QPProblem",
    "SDPProblem",
    "SolverError",
    "SolverResult",
    "SolverStatus",
    "VariableRegistry",
    "solve_lp",
    "solve_lp_simplex",
    "solve_qp",
    "solve_sdp",
]
