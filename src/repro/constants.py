"""Package-wide numeric constants.

A leaf module — it imports nothing from :mod:`repro` — so any layer
(core geometry, optimisation, streaming) can use the canonical ``INF``
without coupling to another subsystem.
"""

#: canonical unbounded value for window limits and constraint bounds.
INF = float("inf")
