"""CTP-like routing: an ETX gradient tree that changes over time.

The Collection Tree Protocol maintains, per node, an estimate of the
expected number of transmissions (ETX) to reach the sink, and forwards to
the neighbor minimizing link-ETX + neighbor-ETX. We recompute the gradient
periodically from the (time-varying, noisily estimated) link PRRs — this
yields exactly the routing dynamics the paper's network model calls out:
packet paths change as links fade, while each epoch's tree is loop-free.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.sim.radio import LinkModel


@dataclass(frozen=True)
class RoutingConfig:
    """Parameters of the gradient recomputation."""

    #: gradient (beacon-driven) recomputation period, ms.
    beacon_period_ms: float = 10_000.0
    #: multiplicative noise applied to PRR estimates (link estimator error).
    estimate_noise: float = 0.1
    #: links with PRR below this are not usable for routing.
    min_usable_prr: float = 0.2
    #: parent switch hysteresis: switch only if the new route beats the
    #: current one by this ETX margin (CTP's PARENT_SWITCH_THRESHOLD).
    switch_threshold_etx: float = 1.5


class RoutingEngine:
    """Maintains each node's current parent toward the sink."""

    def __init__(
        self,
        link_model: LinkModel,
        sink: int,
        config: RoutingConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._links = link_model
        self._sink = sink
        self.config = config or RoutingConfig()
        self._rng = rng or np.random.default_rng()
        self._neighbors = link_model.neighbor_map()
        self._parents: dict[int, int | None] = {}
        self._etx: dict[int, float] = {}
        self._last_update_ms = -math.inf
        self.parent_changes = 0

    @property
    def sink(self) -> int:
        return self._sink

    def refresh(self, now_ms: float, force: bool = False) -> None:
        """Recompute the gradient if the beacon period elapsed."""
        if not force and now_ms - self._last_update_ms < self.config.beacon_period_ms:
            return
        self._last_update_ms = now_ms
        etx, best_parent = self._dijkstra(now_ms)
        for node, parent in best_parent.items():
            current = self._parents.get(node)
            if current is None or current not in self._neighbors.get(node, []):
                changed = current != parent
                self._parents[node] = parent
            else:
                # Hysteresis: keep the current parent unless clearly worse.
                current_cost = self._route_cost_via(node, current, etx, now_ms)
                new_cost = etx[node]
                if current_cost > new_cost + self.config.switch_threshold_etx:
                    self._parents[node] = parent
                    changed = current != parent
                else:
                    changed = False
            if changed and current is not None:
                self.parent_changes += 1
        self._etx = etx

    def _link_etx(self, a: int, b: int, now_ms: float) -> float:
        prr = self._links.prr(a, b, now_ms)
        noisy = prr * (1.0 + self._rng.normal(0.0, self.config.estimate_noise))
        noisy = min(1.0, max(1e-3, noisy))
        if noisy < self.config.min_usable_prr:
            return math.inf
        return 1.0 / noisy

    def _route_cost_via(
        self, node: int, parent: int, etx: dict[int, float], now_ms: float
    ) -> float:
        parent_etx = etx.get(parent, math.inf)
        return self._link_etx(node, parent, now_ms) + parent_etx

    def _dijkstra(self, now_ms: float):
        """Single-source shortest ETX paths from the sink."""
        etx: dict[int, float] = {self._sink: 0.0}
        best_parent: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, self._sink)]
        visited: set[int] = set()
        while heap:
            cost, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in self._neighbors.get(node, []):
                if neighbor in visited:
                    continue
                link = self._link_etx(neighbor, node, now_ms)
                if not math.isfinite(link):
                    continue
                candidate = cost + link
                if candidate < etx.get(neighbor, math.inf):
                    etx[neighbor] = candidate
                    best_parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        return etx, best_parent

    def parent(self, node: int, now_ms: float) -> int | None:
        """Current next hop of ``node`` toward the sink (None if cut off)."""
        if node == self._sink:
            return None
        self.refresh(now_ms)
        return self._parents.get(node)

    def is_connected(self, node: int) -> bool:
        """Whether the node currently has a route to the sink."""
        return node == self._sink or self._parents.get(node) is not None

    def route_of(self, node: int, now_ms: float, max_hops: int = 64) -> list[int]:
        """The full current path node -> sink (diagnostics only)."""
        path = [node]
        current = node
        for _ in range(max_hops):
            if current == self._sink:
                return path
            nxt = self.parent(current, now_ms)
            if nxt is None:
                return path
            path.append(nxt)
            current = nxt
        return path
