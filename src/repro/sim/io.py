"""Trace persistence: save/load a :class:`TraceBundle` as JSON.

A deployment collects once and analyzes many times; these helpers let the
sink-side trace (and the evaluation oracle) be archived and reloaded
without re-running a simulation. The format is versioned, plain JSON —
inspectable with any tooling, stable across refactors of the in-memory
classes.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.sim.packet import PacketId
from repro.sim.trace import (
    GroundTruthPacket,
    NodeLogEntry,
    ReceivedPacket,
    TraceBundle,
)

FORMAT_VERSION = 1


def _packet_id_to_json(packet_id: PacketId) -> list:
    return [packet_id.source, packet_id.seqno]


def _packet_id_from_json(data) -> PacketId:
    return PacketId(source=int(data[0]), seqno=int(data[1]))


def trace_to_dict(trace: TraceBundle) -> dict:
    """Lossless dictionary form of a trace bundle."""
    return {
        "version": FORMAT_VERSION,
        "sink": trace.sink,
        "duration_ms": trace.duration_ms,
        "received": [
            {
                "id": _packet_id_to_json(p.packet_id),
                "path": list(p.path),
                "t0": p.generation_time_ms,
                "t_sink": p.sink_arrival_ms,
                "sum_of_delays": p.sum_of_delays_ms,
            }
            for p in trace.received
        ],
        "ground_truth": [
            {
                "id": _packet_id_to_json(g.packet_id),
                "path": list(g.path),
                "arrivals": list(g.arrival_times_ms),
            }
            for g in trace.ground_truth.values()
        ],
        "node_logs": {
            str(node): [
                [entry.kind, *_packet_id_to_json(entry.packet_id),
                 entry.local_time_ms]
                for entry in log
            ]
            for node, log in trace.node_logs.items()
        },
        "lost": [_packet_id_to_json(pid) for pid in trace.lost_packets],
    }


def trace_from_dict(data: dict) -> TraceBundle:
    """Inverse of :func:`trace_to_dict` (validates the format version)."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    received = [
        ReceivedPacket(
            packet_id=_packet_id_from_json(item["id"]),
            path=tuple(int(n) for n in item["path"]),
            generation_time_ms=float(item["t0"]),
            sink_arrival_ms=float(item["t_sink"]),
            sum_of_delays_ms=int(item["sum_of_delays"]),
        )
        for item in data["received"]
    ]
    ground_truth = {}
    for item in data["ground_truth"]:
        packet = GroundTruthPacket(
            packet_id=_packet_id_from_json(item["id"]),
            path=tuple(int(n) for n in item["path"]),
            arrival_times_ms=tuple(float(t) for t in item["arrivals"]),
        )
        ground_truth[packet.packet_id] = packet
    node_logs = {
        int(node): [
            NodeLogEntry(
                kind=entry[0],
                packet_id=PacketId(int(entry[1]), int(entry[2])),
                local_time_ms=float(entry[3]),
            )
            for entry in log
        ]
        for node, log in data.get("node_logs", {}).items()
    }
    return TraceBundle(
        received=received,
        ground_truth=ground_truth,
        node_logs=node_logs,
        lost_packets=[_packet_id_from_json(x) for x in data.get("lost", [])],
        sink=int(data.get("sink", 0)),
        duration_ms=float(data.get("duration_ms", 0.0)),
    )


def save_trace(trace: TraceBundle, path: str | Path) -> None:
    """Write a trace to ``path``; ``.gz`` suffixes are gzip-compressed."""
    path = Path(path)
    payload = json.dumps(trace_to_dict(trace), separators=(",", ":"))
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def load_trace(path: str | Path) -> TraceBundle:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = handle.read()
    else:
        payload = path.read_text(encoding="utf-8")
    return trace_from_dict(json.loads(payload))
