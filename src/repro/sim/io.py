"""Trace persistence: save/load a :class:`TraceBundle` as JSON.

A deployment collects once and analyzes many times; these helpers let the
sink-side trace (and the evaluation oracle) be archived and reloaded
without re-running a simulation. The format is versioned, plain JSON —
inspectable with any tooling, stable across refactors of the in-memory
classes.

Robustness: compression is detected by the gzip magic bytes, not the file
suffix (a mis-suffixed archive is a classic operator error), and every
failure mode — missing file, truncated archive, non-JSON payload,
malformed record — surfaces as a :class:`TraceFormatError` naming the
offending record and field instead of a bare ``KeyError`` from deep
inside a comprehension. Pass ``validation=ValidationConfig(...)`` to
:func:`load_trace` for tolerant ingestion: malformed records are dropped
and counted, surviving packets are validated/repaired, and the combined
report rides on ``TraceBundle.validation_report``.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.sim.packet import PacketId
from repro.sim.trace import (
    GroundTruthPacket,
    NodeLogEntry,
    ReceivedPacket,
    TraceBundle,
)

FORMAT_VERSION = 1

#: first two bytes of every gzip stream (RFC 1952).
GZIP_MAGIC = b"\x1f\x8b"


class TraceFormatError(ValueError):
    """A trace file or payload could not be parsed."""


def _packet_id_to_json(packet_id: PacketId) -> list:
    return [packet_id.source, packet_id.seqno]


def _packet_id_from_json(data) -> PacketId:
    return PacketId(source=int(data[0]), seqno=int(data[1]))


def trace_to_dict(trace: TraceBundle) -> dict:
    """Lossless dictionary form of a trace bundle."""
    return {
        "version": FORMAT_VERSION,
        "sink": trace.sink,
        "duration_ms": trace.duration_ms,
        "received": [
            {
                "id": _packet_id_to_json(p.packet_id),
                "path": list(p.path),
                "t0": p.generation_time_ms,
                "t_sink": p.sink_arrival_ms,
                "sum_of_delays": p.sum_of_delays_ms,
            }
            for p in trace.received
        ],
        "ground_truth": [
            {
                "id": _packet_id_to_json(g.packet_id),
                "path": list(g.path),
                "arrivals": list(g.arrival_times_ms),
            }
            for g in trace.ground_truth.values()
        ],
        "node_logs": {
            str(node): [
                [entry.kind, *_packet_id_to_json(entry.packet_id),
                 entry.local_time_ms]
                for entry in log
            ]
            for node, log in trace.node_logs.items()
        },
        "lost": [_packet_id_to_json(pid) for pid in trace.lost_packets],
    }


def _record_id(item) -> str:
    """Best-effort packet id for an error message."""
    try:
        ident = item["id"]
        return f"{ident[0]}#{ident[1]}"
    except Exception:
        return "<unidentifiable>"


def _parse_received(item, position: int) -> ReceivedPacket:
    if not isinstance(item, dict):
        raise TraceFormatError(
            f"received record #{position} is "
            f"{type(item).__name__}, not an object"
        )
    for name in ("id", "path", "t0", "t_sink", "sum_of_delays"):
        if name not in item:
            raise TraceFormatError(
                f"received packet {_record_id(item)} (record #{position}): "
                f"missing field {name!r}"
            )
    try:
        return ReceivedPacket(
            packet_id=_packet_id_from_json(item["id"]),
            path=tuple(int(n) for n in item["path"]),
            generation_time_ms=float(item["t0"]),
            sink_arrival_ms=float(item["t_sink"]),
            sum_of_delays_ms=int(item["sum_of_delays"]),
        )
    except (TypeError, ValueError, IndexError) as exc:
        raise TraceFormatError(
            f"received packet {_record_id(item)} (record #{position}): "
            f"non-numeric or malformed field ({exc})"
        ) from exc


def _parse_ground_truth(item, position: int) -> GroundTruthPacket:
    if not isinstance(item, dict):
        raise TraceFormatError(
            f"ground-truth record #{position} is "
            f"{type(item).__name__}, not an object"
        )
    for name in ("id", "path", "arrivals"):
        if name not in item:
            raise TraceFormatError(
                f"ground-truth packet {_record_id(item)} "
                f"(record #{position}): missing field {name!r}"
            )
    try:
        return GroundTruthPacket(
            packet_id=_packet_id_from_json(item["id"]),
            path=tuple(int(n) for n in item["path"]),
            arrival_times_ms=tuple(float(t) for t in item["arrivals"]),
        )
    except (TypeError, ValueError, IndexError) as exc:
        raise TraceFormatError(
            f"ground-truth packet {_record_id(item)} "
            f"(record #{position}): malformed field ({exc})"
        ) from exc


def trace_from_dict(data: dict) -> TraceBundle:
    """Inverse of :func:`trace_to_dict` (validates the format version).

    Malformed records raise :class:`TraceFormatError` (a ``ValueError``)
    naming the offending packet id and field. For tolerant parsing of a
    partially corrupted payload, sanitize the dict first with
    :func:`repro.core.validation.sanitize_trace_dict`.
    """
    if not isinstance(data, dict):
        raise TraceFormatError(
            f"trace payload is {type(data).__name__}, not an object"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    received = [
        _parse_received(item, position)
        for position, item in enumerate(data.get("received", []))
    ]
    ground_truth = {}
    for position, item in enumerate(data.get("ground_truth", [])):
        packet = _parse_ground_truth(item, position)
        ground_truth[packet.packet_id] = packet
    try:
        node_logs = {
            int(node): [
                NodeLogEntry(
                    kind=entry[0],
                    packet_id=PacketId(int(entry[1]), int(entry[2])),
                    local_time_ms=float(entry[3]),
                )
                for entry in log
            ]
            for node, log in data.get("node_logs", {}).items()
        }
        lost = [_packet_id_from_json(x) for x in data.get("lost", [])]
    except (TypeError, ValueError, IndexError, KeyError) as exc:
        raise TraceFormatError(
            f"malformed node-log or loss record ({exc})"
        ) from exc
    try:
        return TraceBundle(
            received=received,
            ground_truth=ground_truth,
            node_logs=node_logs,
            lost_packets=lost,
            sink=int(data.get("sink", 0)),
            duration_ms=float(data.get("duration_ms", 0.0)),
        )
    except ValueError as exc:
        # Alignment failure: a received packet without its ground truth.
        raise TraceFormatError(str(exc)) from exc


def save_trace(trace: TraceBundle, path: str | Path) -> None:
    """Write a trace to ``path``; ``.gz`` suffixes are gzip-compressed."""
    path = Path(path)
    payload = json.dumps(trace_to_dict(trace), separators=(",", ":"))
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        path.write_text(payload, encoding="utf-8")


def _read_payload(path: Path) -> str:
    """File contents, decompressing by magic bytes rather than suffix."""
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise TraceFormatError(f"trace file not found: {path}") from None
    except IsADirectoryError:
        raise TraceFormatError(f"trace path is a directory: {path}") from None
    if raw[:2] == GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise TraceFormatError(
                f"corrupt or truncated gzip trace {path}: {exc}"
            ) from exc
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(
            f"trace file {path} is neither gzip nor UTF-8 text"
        ) from exc


def packet_to_json(packet: ReceivedPacket) -> dict:
    """One received packet as the JSON record shape of the trace format."""
    return {
        "id": _packet_id_to_json(packet.packet_id),
        "path": list(packet.path),
        "t0": packet.generation_time_ms,
        "t_sink": packet.sink_arrival_ms,
        "sum_of_delays": packet.sum_of_delays_ms,
    }


def packet_from_json(item, position: int = 0) -> ReceivedPacket:
    """Inverse of :func:`packet_to_json` (one JSONL/wire record).

    Raises :class:`TraceFormatError` naming the packet and field on a
    malformed record; ``position`` (a line or sequence number) is folded
    into the message. The serve layer's line protocol parses its data
    records through this, so the wire shape and the JSONL trace shape
    stay a single format.
    """
    return _parse_received(item, position)


def save_packets_jsonl(
    packets, path: str | Path, sort_by_arrival: bool = False
) -> int:
    """Write received packets as JSON Lines (one record per line).

    This is the streaming counterpart of :func:`save_trace`: the file can
    be consumed incrementally (or tailed) by ``repro.cli stream`` and
    :func:`iter_packets_jsonl` without parsing one huge document. A
    ``.gz`` suffix gzip-compresses. With ``sort_by_arrival`` the packets
    are written in sink-arrival order — the order a live sink would emit
    them. Returns the number of records written.
    """
    path = Path(path)
    packets = list(packets)
    if sort_by_arrival:
        packets.sort(key=lambda p: p.sink_arrival_ms)
    opener = gzip.open if path.suffix == ".gz" else open
    count = 0
    with opener(path, "wt", encoding="utf-8") as handle:
        for packet in packets:
            handle.write(
                json.dumps(packet_to_json(packet), separators=(",", ":"))
            )
            handle.write("\n")
            count += 1
    return count


def iter_packets_jsonl(
    source, *, tolerate_truncated_tail: bool = False, report=None
):
    """Yield :class:`ReceivedPacket` records from a JSON Lines stream.

    ``source`` is a path (``.gz`` suffixes are gzip-decompressed) or any
    iterable of text lines (an open file handle, ``sys.stdin``, a tailing
    generator). Blank lines are skipped; a malformed line raises
    :class:`TraceFormatError` naming its line number.

    With ``tolerate_truncated_tail``, an unparseable *final* line — the
    signature of a producer killed mid-write — is skipped instead of
    raised, and ``report.truncated_lines`` is incremented when a
    :class:`~repro.core.validation.ValidationReport` is supplied. A bad
    line with more data after it is damage, not a torn write, and raises
    regardless.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        opener = gzip.open if path.suffix == ".gz" else open
        try:
            with opener(path, "rt", encoding="utf-8") as handle:
                yield from iter_packets_jsonl(
                    handle,
                    tolerate_truncated_tail=tolerate_truncated_tail,
                    report=report,
                )
        except FileNotFoundError:
            raise TraceFormatError(f"trace file not found: {path}") from None
        except (OSError, EOFError, UnicodeDecodeError) as exc:
            raise TraceFormatError(
                f"corrupt JSONL trace {path}: {exc}"
            ) from exc
        return
    iterator = iter(source)
    lineno = 0
    while True:
        try:
            raw = next(iterator)
        except StopIteration:
            return
        lineno += 1
        line = raw.strip()
        if not line:
            continue
        try:
            item = json.loads(line)
        except json.JSONDecodeError as exc:
            bad_lineno = lineno
            if tolerate_truncated_tail:
                # Torn tail only if nothing but blank lines follows.
                while True:
                    try:
                        rest = next(iterator)
                    except StopIteration:
                        if report is not None:
                            report.truncated_lines += 1
                        return
                    lineno += 1
                    if rest.strip():
                        break
            raise TraceFormatError(
                f"JSONL line {bad_lineno} is not valid JSON: {exc}"
            ) from exc
        yield _parse_received(item, lineno)


def read_packets_jsonl_chunks(
    source,
    chunk_size: int = 256,
    *,
    tolerate_truncated_tail: bool = False,
    report=None,
):
    """Batch :func:`iter_packets_jsonl` into lists of ``chunk_size``.

    The ingestion granularity of the streaming engine: each chunk is one
    ``StreamingReconstructor.ingest`` call, so ``chunk_size`` trades
    ingest overhead against seal latency. Tail-tolerance keywords pass
    through to :func:`iter_packets_jsonl`.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunk: list[ReceivedPacket] = []
    for packet in iter_packets_jsonl(
        source,
        tolerate_truncated_tail=tolerate_truncated_tail,
        report=report,
    ):
        chunk.append(packet)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def load_trace(path: str | Path, validation=None) -> TraceBundle:
    """Read a trace written by :func:`save_trace`.

    Compression is detected from the file's magic bytes, so a gzipped
    file without the ``.gz`` suffix (or a plain-text file with it) loads
    fine. All parse failures raise :class:`TraceFormatError`.

    Args:
        path: trace file path.
        validation: optional
            :class:`~repro.core.validation.ValidationConfig`. In
            ``repair``/``drop`` mode, malformed records are dropped and
            surviving packets validated/repaired; the combined report is
            attached as ``TraceBundle.validation_report``. ``strict``
            raises on the first problem; ``None`` parses strictly with no
            packet-level validation (seed behavior).
    """
    path = Path(path)
    payload = _read_payload(path)
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            f"trace file {path} is not valid JSON: {exc}"
        ) from exc
    if validation is None or validation.mode == "off":
        return trace_from_dict(data)

    # Tolerant ingestion: sanitize raw records, then validate packets.
    from repro.core.validation import sanitize_trace_dict, validate_packets

    if validation.mode == "strict":
        trace = trace_from_dict(data)
        validate_packets(trace.received, validation)  # raises on problems
        return trace
    data, ingest_report = sanitize_trace_dict(data)
    trace = trace_from_dict(data)
    survivors, report = validate_packets(trace.received, validation)
    report.merge(ingest_report)
    trace = trace.with_received(survivors)
    trace.validation_report = report
    return trace
