"""A minimal discrete-event scheduler.

Times are floats in **milliseconds** throughout the simulator. Events with
equal timestamps fire in insertion order (a strictly increasing sequence
number breaks ties), which keeps runs deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class EventQueue:
    """Priority queue of timed callbacks driving the simulation."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` ms from the current time."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), action))

    def run_until(self, horizon: float) -> int:
        """Run events with timestamps ``<= horizon``; returns events fired.

        The clock is left at ``horizon`` even if the queue drains early, so
        consecutive calls see monotone time.
        """
        fired = 0
        while self._heap and self._heap[0][0] <= horizon:
            time, _, action = heapq.heappop(self._heap)
            self._now = time
            action()
            fired += 1
        self._now = max(self._now, horizon)
        return fired

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        fired = 0
        while self._heap:
            if fired >= max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway simulation?")
            time, _, action = heapq.heappop(self._heap)
            self._now = time
            action()
            fired += 1
        return fired
