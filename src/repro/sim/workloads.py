"""Traffic models: how and when nodes generate data packets.

The paper's evaluation uses periodic collection (every node samples on a
timer). Real deployments also see Poisson arrivals, periodic *bursts*
(multi-packet readings) and spatially correlated event traffic; these
models let the workload-sensitivity benchmark probe how Domo's accuracy
depends on the arrival process.

A model is installed into a :class:`~repro.sim.simulator.Simulator` and
schedules ``generate_packet`` calls on its nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PeriodicTraffic:
    """Every node generates one packet per period, with relative jitter.

    This is the paper's workload (§VI.A): periodic data collection.
    """

    period_ms: float = 8_000.0
    jitter: float = 0.2

    def install(self, simulator) -> None:
        rng = simulator.rng
        for node in simulator.nodes.values():
            if node.is_sink:
                continue
            first = float(rng.uniform(0.0, self.period_ms))
            simulator.events.schedule(first, self._make_generator(simulator, node))

    def _make_generator(self, simulator, node):
        def fire() -> None:
            node.generate_packet(payload_bytes=simulator.config.payload_bytes)
            factor = 1.0 + self.jitter * float(
                simulator.rng.uniform(-1.0, 1.0)
            )
            simulator.events.schedule(self.period_ms * factor, fire)

        return fire


@dataclass(frozen=True)
class PoissonTraffic:
    """Memoryless per-node generation at a given mean rate."""

    mean_interval_ms: float = 8_000.0

    def install(self, simulator) -> None:
        for node in simulator.nodes.values():
            if node.is_sink:
                continue
            self._schedule_next(simulator, node)

    def _schedule_next(self, simulator, node) -> None:
        gap = float(simulator.rng.exponential(self.mean_interval_ms))

        def fire() -> None:
            node.generate_packet(payload_bytes=simulator.config.payload_bytes)
            self._schedule_next(simulator, node)

        simulator.events.schedule(gap, fire)


@dataclass(frozen=True)
class BurstyTraffic:
    """Periodic bursts: each firing emits several packets back to back.

    Models multi-fragment sensor readings; stresses the FIFO constraints
    (many same-source packets queued together).
    """

    period_ms: float = 16_000.0
    burst_size: int = 3
    intra_burst_ms: float = 50.0
    jitter: float = 0.2

    def install(self, simulator) -> None:
        rng = simulator.rng
        for node in simulator.nodes.values():
            if node.is_sink:
                continue
            first = float(rng.uniform(0.0, self.period_ms))
            simulator.events.schedule(first, self._make_burst(simulator, node))

    def _make_burst(self, simulator, node):
        def fire() -> None:
            for k in range(self.burst_size):
                simulator.events.schedule(
                    k * self.intra_burst_ms,
                    lambda: node.generate_packet(
                        payload_bytes=simulator.config.payload_bytes
                    ),
                )
            factor = 1.0 + self.jitter * float(
                simulator.rng.uniform(-1.0, 1.0)
            )
            simulator.events.schedule(self.period_ms * factor, fire)

        return fire


@dataclass(frozen=True)
class EventTraffic:
    """Spatially correlated events plus background periodic traffic.

    Events strike uniform random field positions as a Poisson process;
    every node within ``event_radius_m`` reports immediately (small random
    offset). A slow periodic background keeps every source observable.
    """

    event_interval_ms: float = 20_000.0
    event_radius_m: float = 80.0
    response_spread_ms: float = 200.0
    background_period_ms: float = 30_000.0

    def install(self, simulator) -> None:
        PeriodicTraffic(period_ms=self.background_period_ms, jitter=0.3).install(
            simulator
        )
        self._schedule_event(simulator)

    def _schedule_event(self, simulator) -> None:
        gap = float(simulator.rng.exponential(self.event_interval_ms))

        def fire() -> None:
            side = simulator.topology.side_m
            x, y = simulator.rng.uniform(0.0, side, size=2)
            positions = simulator.topology.positions
            for node_id, node in simulator.nodes.items():
                if node.is_sink:
                    continue
                dx = positions[node_id][0] - x
                dy = positions[node_id][1] - y
                if math.hypot(dx, dy) <= self.event_radius_m:
                    offset = float(
                        simulator.rng.uniform(0.0, self.response_spread_ms)
                    )
                    simulator.events.schedule(
                        offset,
                        lambda n=node: n.generate_packet(
                            payload_bytes=simulator.config.payload_bytes
                        ),
                    )
            self._schedule_event(simulator)

        simulator.events.schedule(gap, fire)


def default_workload(config) -> PeriodicTraffic:
    """The paper's periodic workload from a NetworkConfig's fields."""
    return PeriodicTraffic(
        period_ms=config.packet_period_ms, jitter=config.period_jitter
    )
