"""Discrete-event simulator of a wireless ad-hoc collection network.

This substrate replaces the paper's TOSSIM/TinyOS testbed. It reproduces the
trace semantics Domo depends on (paper §III):

* every node runs a **FIFO send queue** (generated + forwarded packets, head
  retransmitted until acked or the retry limit);
* a CSMA/CA-style MAC with random backoff, lossy links and a shared channel
  (collisions when overlapping transmissions reach one receiver);
* CTP-like **routing dynamics** (ETX gradient tree, parents change over
  time as link qualities drift);
* **no global clock** — nodes only ever timestamp with their drifting local
  clocks, and node delays are local-time differences (SFD-to-SFD,
  paper Fig. 5);
* the node-side Domo instrumentation (paper Algorithm 1): a 2-byte
  sum-of-node-delays accumulator written into each local packet, plus the
  accumulated end-to-end delay field of Wang et al. [7].

The simulator records a :class:`~repro.sim.trace.GroundTruthPacket` for every
packet (true per-hop arrival times) next to the
:class:`~repro.sim.trace.ReceivedPacket` view the sink actually has; Domo and
the baselines only consume the latter.
"""

from repro.sim.clock import LocalClock
from repro.sim.events import EventQueue
from repro.sim.packet import Packet, PacketHeader, SUM_OF_DELAYS_MAX_MS
from repro.sim.radio import LinkModel, RadioConfig
from repro.sim.simulator import NetworkConfig, Simulator, simulate_network
from repro.sim.topology import Topology, grid_topology, uniform_topology
from repro.sim.trace import (
    GroundTruthPacket,
    ReceivedPacket,
    TraceBundle,
    drop_random_packets,
)

__all__ = [
    "EventQueue",
    "GroundTruthPacket",
    "LinkModel",
    "LocalClock",
    "NetworkConfig",
    "Packet",
    "PacketHeader",
    "RadioConfig",
    "ReceivedPacket",
    "SUM_OF_DELAYS_MAX_MS",
    "Simulator",
    "Topology",
    "TraceBundle",
    "drop_random_packets",
    "grid_topology",
    "simulate_network",
    "uniform_topology",
]
