"""Node placement and connectivity for the simulated deployments.

The paper evaluates networks of 100 / 225 / 400 nodes "uniformly distributed
in a squared area" collecting to a single sink (§VI.A). This module produces
those placements (plus a regular grid variant used in tests), and derives
the neighbor graph from the radio model's reception range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Topology:
    """Node positions and the sink's identity.

    Node ids are ``0 .. n-1``; by convention the sink is node 0 and is
    placed at the corner of the square (mirroring the deployment in the
    paper's Fig. 1 where the sink sits at one end of the field).
    """

    positions: np.ndarray  # shape (n, 2), meters
    sink: int = 0
    side_m: float = field(default=0.0)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array")
        if not 0 <= self.sink < len(self.positions):
            raise ValueError(f"sink id {self.sink} out of range")
        if self.side_m <= 0.0:
            self.side_m = float(self.positions.max(initial=1.0))

    @property
    def num_nodes(self) -> int:
        return self.positions.shape[0]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in meters."""
        return float(np.linalg.norm(self.positions[a] - self.positions[b]))

    def neighbors_within(self, node: int, radius_m: float) -> list[int]:
        """Ids of all other nodes within ``radius_m`` of ``node``."""
        deltas = self.positions - self.positions[node]
        distances = np.hypot(deltas[:, 0], deltas[:, 1])
        return [
            int(i)
            for i in np.nonzero(distances <= radius_m)[0]
            if int(i) != node
        ]

    def neighbor_map(self, radius_m: float) -> dict[int, list[int]]:
        """Neighbor lists for all nodes at a given reception radius."""
        return {
            node: self.neighbors_within(node, radius_m)
            for node in range(self.num_nodes)
        }


def uniform_topology(
    num_nodes: int,
    side_m: float | None = None,
    rng: np.random.Generator | None = None,
    density_per_km2: float = 1600.0,
) -> Topology:
    """Uniform random placement in a square, sink at the corner.

    When ``side_m`` is omitted, the square is sized to keep node density
    constant across scales (so 100/225/400-node networks differ in diameter,
    not in contention level — matching how the paper grows its networks).
    """
    rng = rng or np.random.default_rng()
    if num_nodes < 2:
        raise ValueError("need at least a sink and one source")
    if side_m is None:
        side_m = 1000.0 * math.sqrt(num_nodes / density_per_km2)
    positions = rng.uniform(0.0, side_m, size=(num_nodes, 2))
    # The sink sits at the field's edge (paper Fig. 1): give node 0 the
    # sampled position closest to the corner, so the sink keeps the same
    # local density as the rest of the network and is never isolated.
    nearest = int(np.argmin(np.hypot(positions[:, 0], positions[:, 1])))
    positions[[0, nearest]] = positions[[nearest, 0]]
    return Topology(positions=positions, sink=0, side_m=side_m)


def grid_topology(side_count: int, spacing_m: float = 25.0) -> Topology:
    """Regular ``side_count x side_count`` grid, sink at the corner.

    Deterministic placement used by unit tests and small examples.
    """
    if side_count < 2:
        raise ValueError("grid needs at least 2x2 nodes")
    coords = [
        (x * spacing_m, y * spacing_m)
        for y in range(side_count)
        for x in range(side_count)
    ]
    return Topology(
        positions=np.array(coords),
        sink=0,
        side_m=spacing_m * (side_count - 1),
    )


def line_topology(num_nodes: int, spacing_m: float = 25.0) -> Topology:
    """A chain of nodes — the smallest interesting multi-hop layout."""
    if num_nodes < 2:
        raise ValueError("line needs at least 2 nodes")
    coords = [(i * spacing_m, 0.0) for i in range(num_nodes)]
    return Topology(
        positions=np.array(coords), sink=0, side_m=spacing_m * (num_nodes - 1)
    )
