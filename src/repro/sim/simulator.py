"""The simulation driver: build a network, run it, collect the trace.

:func:`simulate_network` is the one call the experiments need: it wires the
topology, radio, routing, MAC and nodes together, runs periodic data
collection to the sink for a configured duration, and returns a
:class:`~repro.sim.trace.TraceBundle` (sink-side trace + ground truth +
node logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.clock import LocalClock
from repro.sim.ctp import RoutingConfig, RoutingEngine
from repro.sim.events import EventQueue
from repro.sim.mac import Channel, MacConfig
from repro.sim.node import Node, _Environment
from repro.sim.packet import Packet, PacketId
from repro.sim.radio import LinkModel, RadioConfig
from repro.sim.topology import Topology, grid_topology, uniform_topology
from repro.sim.trace import GroundTruthPacket, ReceivedPacket, TraceBundle


@dataclass
class NetworkConfig:
    """Everything that defines one simulated deployment and workload."""

    num_nodes: int = 100
    #: "uniform" (paper §VI.A) or "grid" (deterministic; tests/examples).
    placement: str = "uniform"
    side_m: float | None = None
    duration_ms: float = 120_000.0
    #: mean packet generation period per node (paper: periodic collection).
    packet_period_ms: float = 5_000.0
    #: relative jitter of the generation period (0.1 -> +-10%).
    period_jitter: float = 0.2
    payload_bytes: int = 24
    queue_capacity: int = 12
    seed: int = 1
    domo_enabled: bool = True
    radio: RadioConfig = field(default_factory=RadioConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)
    #: maximum local clock offset/drift handed to nodes.
    max_clock_offset_ms: float = 1e7
    max_drift_ppm: float = 50.0
    #: fault injection: node id -> extra per-packet processing delay (ms).
    slow_nodes: dict[int, float] = field(default_factory=dict)
    #: traffic model (see :mod:`repro.sim.workloads`); None = periodic
    #: collection built from ``packet_period_ms`` / ``period_jitter``.
    workload: object | None = None


class Simulator:
    """Owns the event queue and all per-run state."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.events = EventQueue()
        self.topology = self._build_topology()
        self.links = LinkModel(
            self.topology.positions, config.radio, rng=self.rng
        )
        self.channel = Channel()
        self.routing = RoutingEngine(
            self.links, sink=self.topology.sink, config=config.routing, rng=self.rng
        )
        self._received: list[ReceivedPacket] = []
        self._ground_truth: dict[PacketId, GroundTruthPacket] = {}
        self._lost: list[PacketId] = []

        env = _Environment(
            events=self.events,
            channel=self.channel,
            links=self.links,
            routing=self.routing,
            rng=self.rng,
            mac=config.mac,
            on_lost=self._lost.append,
            domo_enabled=config.domo_enabled,
            extra_processing_ms=dict(config.slow_nodes),
        )
        self.nodes: dict[int, Node] = {}
        for node_id in range(config.num_nodes):
            is_sink = node_id == self.topology.sink
            clock = (
                LocalClock()  # the sink is wired to the PC: global timebase
                if is_sink
                else LocalClock.random(
                    self.rng,
                    max_offset_ms=config.max_clock_offset_ms,
                    max_drift_ppm=config.max_drift_ppm,
                )
            )
            self.nodes[node_id] = Node(
                node_id,
                env,
                clock,
                queue_capacity=config.queue_capacity,
                is_sink=is_sink,
                on_sink_receive=self._sink_receive if is_sink else None,
            )
        env.nodes = self.nodes
        self.routing.refresh(0.0, force=True)

    def _build_topology(self) -> Topology:
        cfg = self.config
        if cfg.placement == "uniform":
            return uniform_topology(cfg.num_nodes, side_m=cfg.side_m, rng=self.rng)
        if cfg.placement == "grid":
            side = int(round(cfg.num_nodes ** 0.5))
            if side * side != cfg.num_nodes:
                raise ValueError(
                    f"grid placement needs a square node count, got {cfg.num_nodes}"
                )
            return grid_topology(side)
        raise ValueError(f"unknown placement {cfg.placement!r}")

    # ------------------------------------------------------------------

    def _sink_receive(self, packet: Packet, now: float) -> None:
        """Sink-side finalization of a delivered packet."""
        header = packet.header
        if self.config.domo_enabled:
            # Time reconstruction of [7]: t0 = sink arrival - accumulated
            # e2e delay (measured on node clocks, hence the tiny drift error).
            generation = now - header.e2e_delay_ms
        else:
            generation = packet.generation_time_ms
        self._received.append(
            ReceivedPacket(
                packet_id=packet.packet_id,
                path=tuple(header.path),
                generation_time_ms=generation,
                sink_arrival_ms=now,
                sum_of_delays_ms=header.sum_of_delays_ms,
            )
        )
        self._ground_truth[packet.packet_id] = GroundTruthPacket(
            packet_id=packet.packet_id,
            path=tuple(header.path),
            arrival_times_ms=tuple(packet.arrival_times_ms),
        )

    def _schedule_traffic(self) -> None:
        from repro.sim.workloads import default_workload

        workload = self.config.workload or default_workload(self.config)
        workload.install(self)

    def run(self) -> TraceBundle:
        """Run the workload for the configured duration and bundle the trace."""
        self._schedule_traffic()
        self.events.run_until(self.config.duration_ms)
        node_logs = {
            node_id: list(node.log) for node_id, node in self.nodes.items()
        }
        # Reconcile losses: under ack loss a sender may give up on (or a
        # receiver suppress) a packet whose first copy was delivered
        # anyway; only packets that never reached the sink count as lost.
        delivered = set(self._ground_truth)
        lost_unique: list[PacketId] = []
        seen: set[PacketId] = set()
        for packet_id in self._lost:
            if packet_id in delivered or packet_id in seen:
                continue
            seen.add(packet_id)
            lost_unique.append(packet_id)
        return TraceBundle(
            received=list(self._received),
            ground_truth=dict(self._ground_truth),
            node_logs=node_logs,
            lost_packets=lost_unique,
            sink=self.topology.sink,
            duration_ms=self.config.duration_ms,
        )


def simulate_network(config: NetworkConfig | None = None, **overrides) -> TraceBundle:
    """Convenience wrapper: build a :class:`Simulator` and run it.

    Keyword overrides are applied on top of ``config`` (or the defaults),
    e.g. ``simulate_network(num_nodes=225, seed=7)``.
    """
    base = config or NetworkConfig()
    if overrides:
        values = {**base.__dict__, **overrides}
        base = NetworkConfig(**values)
    return Simulator(base).run()
