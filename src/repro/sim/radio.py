"""Link quality model: log-distance path loss, shadowing, and slow fading.

TOSSIM drives packet reception from signal strength with the closest-pattern
matching noise model; we use the standard log-normal shadowing abstraction
on top of a logistic SNR-to-PRR curve, plus a slowly time-varying fading
term per link. The time-varying term is what produces the *link dynamics*
(and hence routing dynamics) that the paper stresses as the reason wired
tomography methods do not transfer to wireless (§II.A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer parameters (defaults approximate a CC2420 at 0 dBm)."""

    tx_power_dbm: float = 0.0
    path_loss_exponent: float = 3.0
    reference_loss_db: float = 45.0  # loss at 1 m
    shadowing_sigma_db: float = 4.0
    noise_floor_dbm: float = -98.0
    #: logistic steepness of the SNR -> PRR curve.
    prr_slope: float = 1.2
    #: SNR (dB) at which PRR = 0.5.
    prr_midpoint_db: float = 3.0
    #: maximum distance at which links are considered at all.
    max_range_m: float = 60.0
    #: std-dev of the per-link slow fading random walk (dB per sqrt(s)).
    fading_walk_db: float = 0.6
    #: fading is re-sampled on this period (ms).
    fading_period_ms: float = 5000.0
    bitrate_kbps: float = 250.0


class LinkModel:
    """Per-link packet reception probabilities with slow time variation.

    The static part of each link's gain is sampled once (log-normal
    shadowing); a per-link Ornstein-Uhlenbeck-style random walk adds the
    slow fading that makes PRRs (and CTP parents) change over time.
    """

    def __init__(
        self,
        positions: np.ndarray,
        config: RadioConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or RadioConfig()
        self._rng = rng or np.random.default_rng()
        self._positions = np.asarray(positions, dtype=float)
        n = self._positions.shape[0]
        deltas = self._positions[:, None, :] - self._positions[None, :, :]
        self._distances = np.hypot(deltas[..., 0], deltas[..., 1])
        # Symmetric static shadowing per link.
        raw = self._rng.normal(0.0, self.config.shadowing_sigma_db, size=(n, n))
        self._shadowing = np.triu(raw, 1)
        self._shadowing = self._shadowing + self._shadowing.T
        self._fading = np.zeros((n, n))
        self._fading_epoch = -1

    @property
    def num_nodes(self) -> int:
        return self._positions.shape[0]

    def distance(self, a: int, b: int) -> float:
        return float(self._distances[a, b])

    def in_range(self, a: int, b: int) -> bool:
        """Whether the pair is close enough to ever communicate."""
        return a != b and self._distances[a, b] <= self.config.max_range_m

    def _refresh_fading(self, now_ms: float) -> None:
        epoch = int(now_ms // self.config.fading_period_ms)
        if epoch == self._fading_epoch:
            return
        steps = 1 if self._fading_epoch < 0 else max(1, epoch - self._fading_epoch)
        n = self.num_nodes
        scale = self.config.fading_walk_db * math.sqrt(
            steps * self.config.fading_period_ms / 1000.0
        )
        raw = self._rng.normal(0.0, scale, size=(n, n))
        walk = np.triu(raw, 1)
        walk = walk + walk.T
        # Mean-reverting update keeps fading bounded over long runs.
        self._fading = 0.8 * self._fading + walk
        self._fading_epoch = epoch

    def rssi_dbm(self, sender: int, receiver: int, now_ms: float) -> float:
        """Received signal strength for a transmission right now."""
        self._refresh_fading(now_ms)
        cfg = self.config
        d = max(self._distances[sender, receiver], 1.0)
        loss = cfg.reference_loss_db + 10.0 * cfg.path_loss_exponent * math.log10(d)
        return (
            cfg.tx_power_dbm
            - loss
            + self._shadowing[sender, receiver]
            + self._fading[sender, receiver]
        )

    def prr(self, sender: int, receiver: int, now_ms: float) -> float:
        """Packet reception ratio of the directed link at time ``now_ms``."""
        if not self.in_range(sender, receiver):
            return 0.0
        snr = self.rssi_dbm(sender, receiver, now_ms) - self.config.noise_floor_dbm
        x = self.config.prr_slope * (snr - self.config.prr_midpoint_db)
        # Clamp the exponent to avoid overflow for very strong/weak links.
        x = max(-30.0, min(30.0, x))
        return 1.0 / (1.0 + math.exp(-x))

    def airtime_ms(self, payload_bytes: int) -> float:
        """Time on air for a frame with the given payload size."""
        # PHY/MAC framing overhead of roughly 19 bytes (802.15.4-like).
        bits = (payload_bytes + 19) * 8
        return bits / self.config.bitrate_kbps

    def neighbor_map(self) -> dict[int, list[int]]:
        """Nodes within ``max_range_m`` of each node."""
        result: dict[int, list[int]] = {}
        n = self.num_nodes
        for a in range(n):
            result[a] = [
                b
                for b in range(n)
                if b != a and self._distances[a, b] <= self.config.max_range_m
            ]
        return result
