"""Trace records: what the sink knows vs. what actually happened.

The separation here is the heart of the reproduction's honesty:

* :class:`ReceivedPacket` is the **sink-side view** — exactly the four
  quantities the paper lists at the end of §III.B (generation time, sink
  arrival time, routing path, sum-of-delays). Domo, MNT and MessageTracing
  consume only this (MessageTracing additionally gets the per-node event
  logs it would read from local flash).
* :class:`GroundTruthPacket` is the **simulator's omniscient view** — true
  global per-hop arrival times — used solely to score reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.sim.packet import PacketId


@dataclass(frozen=True)
class ReceivedPacket:
    """Sink-side knowledge about one received packet (paper §III.B)."""

    packet_id: PacketId
    #: routing path, source .. sink (path reconstruction assumed, §III).
    path: tuple[int, ...]
    #: generation time t_0(p), via time reconstruction [7] (global ms).
    generation_time_ms: float
    #: arrival time at the sink t_{|p|-1}(p) (global ms).
    sink_arrival_ms: float
    #: the 2-byte S(p) field from the packet (ms, quantized).
    sum_of_delays_ms: int

    @property
    def path_length(self) -> int:
        """``|p|`` — number of nodes on the path including the sink."""
        return len(self.path)

    @property
    def e2e_delay_ms(self) -> float:
        """End-to-end delay as the sink computes it."""
        return self.sink_arrival_ms - self.generation_time_ms

    def node_at(self, hop: int) -> int:
        """``N_i(p)`` — the node at position ``hop`` of the path."""
        return self.path[hop]


@dataclass(frozen=True)
class GroundTruthPacket:
    """True per-hop timing of one packet that reached the sink."""

    packet_id: PacketId
    path: tuple[int, ...]
    #: true global arrival time at every node of the path (len == len(path)).
    arrival_times_ms: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.arrival_times_ms) != len(self.path):
            raise ValueError("arrival times must align with the path")

    def node_delay_ms(self, hop: int) -> float:
        """True sojourn time at the ``hop``-th node of the path."""
        return self.arrival_times_ms[hop + 1] - self.arrival_times_ms[hop]

    def node_delays(self) -> list[float]:
        """All per-hop sojourn times (length ``len(path) - 1``)."""
        return [
            self.arrival_times_ms[i + 1] - self.arrival_times_ms[i]
            for i in range(len(self.path) - 1)
        ]


@dataclass(frozen=True)
class NodeLogEntry:
    """One entry of a node's local send/receive log (for MessageTracing)."""

    kind: str  # "send" | "recv" | "gen"
    packet_id: PacketId
    #: local (unsynchronized) timestamp — baselines must not use it as a
    #: global time; it only orders events *within* one node's log.
    local_time_ms: float


@dataclass
class TraceBundle:
    """Everything one simulation run produced.

    ``received`` and ``ground_truth`` are aligned: every received packet has
    a ground-truth twin under the same :class:`PacketId` key.
    """

    received: list[ReceivedPacket] = field(default_factory=list)
    ground_truth: dict[PacketId, GroundTruthPacket] = field(default_factory=dict)
    #: per-node local event logs (only MessageTracing reads these).
    node_logs: dict[int, list[NodeLogEntry]] = field(default_factory=dict)
    #: ids of packets generated but never delivered (loss accounting).
    lost_packets: list[PacketId] = field(default_factory=list)
    sink: int = 0
    duration_ms: float = 0.0
    #: ingest-time :class:`~repro.core.validation.ValidationReport` when
    #: the bundle was loaded through a tolerant validation mode (None for
    #: simulated or strictly-loaded traces).
    validation_report: object | None = None

    def __post_init__(self) -> None:
        self._check_alignment()

    def _check_alignment(self) -> None:
        for packet in self.received:
            if packet.packet_id not in self.ground_truth:
                raise ValueError(
                    f"received packet {packet.packet_id} lacks ground truth"
                )

    @property
    def num_received(self) -> int:
        return len(self.received)

    @property
    def delivery_ratio(self) -> float:
        total = len(self.received) + len(self.lost_packets)
        return len(self.received) / total if total else 0.0

    def truth_of(self, packet_id: PacketId) -> GroundTruthPacket:
        return self.ground_truth[packet_id]

    def sorted_by_generation(self) -> list[ReceivedPacket]:
        """Received packets ordered by generation time (stable by id)."""
        return sorted(
            self.received,
            key=lambda p: (p.generation_time_ms, p.packet_id.source, p.packet_id.seqno),
        )

    def packets_through(self, node: int) -> list[ReceivedPacket]:
        """Received packets whose path visits ``node``."""
        return [p for p in self.received if node in p.path]

    def restrict(self, keep: Iterable[PacketId]) -> "TraceBundle":
        """A new bundle containing only the given received packets.

        Ground truth and node logs are left intact (ground truth is the
        scoring oracle; node logs model flash storage that survives trace
        filtering).
        """
        keep_set = set(keep)
        return self.with_received(
            [p for p in self.received if p.packet_id in keep_set]
        )

    def with_received(
        self, received: list[ReceivedPacket]
    ) -> "TraceBundle":
        """A new bundle with a replacement received list (context shared).

        Used by the validation layer (quarantined/repaired packets) and
        the fault injectors; ground truth, node logs and loss accounting
        are carried over so scoring still works for the survivors.
        """
        return TraceBundle(
            received=list(received),
            ground_truth=self.ground_truth,
            node_logs=self.node_logs,
            lost_packets=self.lost_packets,
            sink=self.sink,
            duration_ms=self.duration_ms,
            validation_report=self.validation_report,
        )


def drop_random_packets(
    trace: TraceBundle, loss_rate: float, rng: np.random.Generator
) -> TraceBundle:
    """Remove a random fraction of received packets (paper Fig. 7 protocol).

    The paper evaluates loss robustness by deleting 10–30% of the *received*
    trace and reconstructing the rest; the deleted packets' ground truth is
    kept so scoring still works for the survivors.
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss rate {loss_rate} outside [0, 1)")
    kept = [
        p.packet_id
        for p in trace.received
        if rng.random() >= loss_rate
    ]
    return trace.restrict(kept)
