"""Packet structures carrying the Domo measurement fields.

Per the paper (§V, Table I), Domo adds **four bytes** to every data packet:

* a 2-byte **sum-of-node-delays** field (1 ms precision, so values up to
  ``65535`` ms ≈ 65 s), written at the transmit-SFD of each *local* packet
  (Algorithm 1);
* a 2-byte accumulated **end-to-end delay** field (Wang et al. [7]): each
  forwarder adds its measured sojourn time, so the sink reads the full path
  delay without any clock synchronization.

The routing path is assumed reconstructable (MNT / PathZip / Pathfinder);
we carry it in the packet for convenience, standing in for those schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Largest value the 2-byte sum-of-delays field can record, in ms.
SUM_OF_DELAYS_MAX_MS = 65535

#: Bytes Domo adds to every packet (sum-of-delays + e2e timestamp).
DOMO_HEADER_BYTES = 4


def quantize_ms(value_ms: float, max_value: int = SUM_OF_DELAYS_MAX_MS) -> int:
    """Round a duration to the 1 ms wire precision, clipped to the field size."""
    return min(max_value, max(0, int(round(value_ms))))


@dataclass(frozen=True, order=True)
class PacketId:
    """Globally unique packet identity: (source node, per-source seqno)."""

    source: int
    seqno: int

    def __str__(self) -> str:
        return f"{self.source}#{self.seqno}"


@dataclass
class PacketHeader:
    """Measurement-relevant header fields as seen on the wire."""

    packet_id: PacketId
    #: reconstructed routing path (source .. sink), per the path
    #: reconstruction assumption of §III.
    path: list[int] = field(default_factory=list)
    #: 2-byte sum-of-node-delays written by the source (Algorithm 1), ms.
    sum_of_delays_ms: int = 0
    #: accumulated end-to-end delay, updated by every forwarder, ms.
    e2e_delay_ms: float = 0.0


@dataclass
class Packet:
    """A data packet in flight, plus simulator-side ground truth.

    ``arrival_times_ms`` holds the *global* time the packet arrived at each
    node of its path so far (index 0 = generation time at the source); only
    the simulator and the evaluation harness read it — the sink-side
    algorithms never see it.
    """

    header: PacketHeader
    payload_bytes: int = 24
    generation_time_ms: float = 0.0
    arrival_times_ms: list[float] = field(default_factory=list)
    #: number of link-layer transmissions spent so far (diagnostics).
    transmissions: int = 0

    def delivery_copy(self) -> "Packet":
        """Snapshot handed to the receiver at a successful reception.

        Real radios deliver an immutable frame; anything the sender does
        afterwards (retransmissions after a lost ack, bookkeeping) must
        not affect the copy already traveling onward.
        """
        return Packet(
            header=PacketHeader(
                packet_id=self.header.packet_id,
                path=list(self.header.path),
                sum_of_delays_ms=self.header.sum_of_delays_ms,
                e2e_delay_ms=self.header.e2e_delay_ms,
            ),
            payload_bytes=self.payload_bytes,
            generation_time_ms=self.generation_time_ms,
            arrival_times_ms=list(self.arrival_times_ms),
            transmissions=self.transmissions,
        )

    @property
    def packet_id(self) -> PacketId:
        return self.header.packet_id

    @property
    def source(self) -> int:
        return self.header.packet_id.source

    def size_bytes(self, domo_enabled: bool = True) -> int:
        """On-air payload size, including Domo's 4-byte overhead if enabled."""
        return self.payload_bytes + (DOMO_HEADER_BYTES if domo_enabled else 0)
