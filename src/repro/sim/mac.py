"""CSMA/CA-style MAC: backoff, unicast with acks, and a collision channel.

The model keeps what matters for delay tomography — per-packet sojourn
times are dominated by queueing, random backoff, airtime and
retransmissions — without simulating signal capture at sample granularity
the way TOSSIM's CPM does. Collisions are pairwise: a reception fails when
another transmission from a sender in range of the receiver overlaps it in
time, or when the receiver itself was transmitting (half-duplex).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MacConfig:
    """Link-layer timing parameters (TinyOS CC2420 CSMA-like defaults)."""

    #: uniform initial backoff window before the first attempt, ms.
    initial_backoff_min_ms: float = 0.3
    initial_backoff_max_ms: float = 9.8
    #: uniform congestion backoff window between retries, ms.
    retry_backoff_min_ms: float = 0.3
    retry_backoff_max_ms: float = 2.4
    #: extra per-retry backoff growth (linear), ms.
    retry_backoff_step_ms: float = 1.0
    #: maximum link-layer transmissions per packet (CTP uses up to 30).
    max_transmissions: int = 30
    #: turnaround cost of the ack exchange after a successful frame, ms.
    ack_turnaround_ms: float = 0.7
    #: probability that the ack of a successfully received frame is lost,
    #: causing a spurious retransmission (duplicate at the receiver).
    ack_loss_prob: float = 0.0
    #: software processing floor between receive-SFD and transmit-SFD, ms —
    #: this is the paper's omega (minimum software processing delay).
    processing_floor_ms: float = 1.0


@dataclass
class _Transmission:
    sender: int
    start_ms: float
    end_ms: float


@dataclass
class Channel:
    """Tracks in-flight and recently finished transmissions for overlap checks.

    Finished transmissions are retained briefly so that a frame evaluated at
    its end time still sees shorter frames that started and ended inside
    its own airtime.
    """

    #: how long finished transmissions stay visible for overlap checks, ms.
    history_ms: float = 50.0
    _active: dict[int, _Transmission] = field(default_factory=dict)
    _recent: list[_Transmission] = field(default_factory=list)
    collisions: int = 0

    def begin(self, sender: int, start_ms: float, end_ms: float) -> None:
        """Register a transmission (one per sender at a time)."""
        if sender in self._active:
            raise RuntimeError(f"node {sender} is already transmitting")
        self._active[sender] = _Transmission(sender, start_ms, end_ms)

    def finish(self, sender: int) -> _Transmission:
        """Deregister the sender's transmission, keeping it in history."""
        tx = self._active.pop(sender)
        self._recent.append(tx)
        cutoff = tx.end_ms - self.history_ms
        if self._recent and self._recent[0].end_ms < cutoff:
            self._recent = [t for t in self._recent if t.end_ms >= cutoff]
        return tx

    def overlapping_senders(
        self, start_ms: float, end_ms: float, exclude: int
    ) -> list[int]:
        """Senders (other than ``exclude``) transmitting during [start, end]."""
        candidates = list(self._active.values()) + self._recent
        return [
            tx.sender
            for tx in candidates
            if tx.sender != exclude
            and tx.start_ms < end_ms
            and tx.end_ms > start_ms
        ]

    def is_transmitting(self, node: int) -> bool:
        return node in self._active
