"""The FIFO send queue every node runs (paper §III.A).

The queue holds both locally generated and to-be-forwarded packets; the
head is retransmitted until acknowledged or the retry limit is reached.
FIFO ordering is the property Domo's first constraint family is built on,
so the queue is its own small module with its own tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.sim.packet import Packet


@dataclass
class QueueStats:
    """Counters for drop accounting and diagnostics."""

    enqueued: int = 0
    dequeued: int = 0
    dropped_overflow: int = 0
    peak_depth: int = 0


@dataclass
class FifoSendQueue:
    """Bounded FIFO of outgoing packets.

    ``capacity`` mirrors the small message pools of sensor OSes (CTP's
    default forwarding queue holds around a dozen packets).
    """

    capacity: int = 12
    _items: deque = field(default_factory=deque)
    stats: QueueStats = field(default_factory=QueueStats)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (drop) when full."""
        if self.is_full:
            self.stats.dropped_overflow += 1
            return False
        self._items.append(packet)
        self.stats.enqueued += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._items))
        return True

    def head(self) -> Packet:
        """The packet currently being served (queue must be non-empty)."""
        return self._items[0]

    def pop(self) -> Packet:
        """Remove and return the head after it departed (acked or given up)."""
        self.stats.dequeued += 1
        return self._items.popleft()
