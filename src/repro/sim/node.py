"""Node behavior: application, forwarding, MAC service and Algorithm 1.

Each node owns a FIFO send queue; the head packet is served with CSMA
backoff and retransmitted until acked or the retry limit. All Domo
node-side instrumentation lives here:

* SFD timestamping (paper Fig. 5): a packet's sojourn is measured on the
  node's **local clock** from receive-SFD (or generation) to the transmit-
  SFD of its final link-layer transmission;
* the sum-of-node-delays accumulator (paper Algorithm 1), written into the
  2-byte field of every departing *local* packet and then cleared;
* the accumulated end-to-end delay field (Wang et al. [7]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.clock import LocalClock
from repro.sim.ctp import RoutingEngine
from repro.sim.events import EventQueue
from repro.sim.mac import Channel, MacConfig
from repro.sim.packet import Packet, PacketHeader, PacketId, quantize_ms
from repro.sim.queueing import FifoSendQueue
from repro.sim.radio import LinkModel
from repro.sim.trace import NodeLogEntry


@dataclass
class NodeStats:
    """Per-node counters surfaced by the simulator for diagnostics."""

    generated: int = 0
    forwarded: int = 0
    delivered_upstream: int = 0
    dropped_retries: int = 0
    dropped_queue: int = 0
    dropped_no_route: int = 0
    transmissions: int = 0
    duplicates_suppressed: int = 0


@dataclass
class _Environment:
    """Shared simulation services handed to every node."""

    events: EventQueue
    channel: Channel
    links: LinkModel
    routing: RoutingEngine
    rng: np.random.Generator
    mac: MacConfig
    #: called when a packet is lost anywhere in the network.
    on_lost: Callable[[PacketId], None]
    #: Domo instrumentation can be disabled for overhead comparisons.
    domo_enabled: bool = True
    #: route-wait before giving up on a packet with no parent, ms.
    no_route_retry_ms: float = 1000.0
    no_route_max_waits: int = 10
    #: all nodes by id, filled in by the simulator after construction.
    nodes: dict[int, "Node"] = field(default_factory=dict)
    #: fault injection: extra per-packet processing delay per node, ms
    #: (models overloaded/buggy nodes — the paper's Fig. 1 motivation).
    extra_processing_ms: dict[int, float] = field(default_factory=dict)


class Node:
    """One sensor node (or the sink, which only receives)."""

    def __init__(
        self,
        node_id: int,
        env: _Environment,
        clock: LocalClock,
        queue_capacity: int = 12,
        is_sink: bool = False,
        on_sink_receive: Callable[[Packet, float], None] | None = None,
    ) -> None:
        self.node_id = node_id
        self.is_sink = is_sink
        self.clock = clock
        self.stats = NodeStats()
        self.log: list[NodeLogEntry] = []
        self._env = env
        self._queue = FifoSendQueue(capacity=queue_capacity)
        self._busy = False
        self._seqno = 0
        #: Algorithm 1 state: the running sum of node delays (local ms).
        self._sum_hop_delays_ms = 0.0
        #: global arrival time of the packet currently at this node
        #: (receive-SFD / generation instant), keyed by packet id.
        self._arrival_global_ms: dict[PacketId, float] = {}
        #: duplicate-suppression cache (CTP-style), bounded FIFO.
        self._seen: set[PacketId] = set()
        self._seen_order: list[PacketId] = []
        self._seen_capacity = 256
        self._on_sink_receive = on_sink_receive

    # ------------------------------------------------------------------
    # Application layer
    # ------------------------------------------------------------------

    def generate_packet(self, payload_bytes: int = 24) -> PacketId:
        """Create a local data packet and enqueue it (event: paper Alg.1 l.2)."""
        now = self._env.events.now
        packet_id = PacketId(source=self.node_id, seqno=self._seqno)
        self._seqno += 1
        packet = Packet(
            header=PacketHeader(packet_id=packet_id, path=[self.node_id]),
            payload_bytes=payload_bytes,
            generation_time_ms=now,
            arrival_times_ms=[now],
        )
        self.stats.generated += 1
        self._arrival_global_ms[packet_id] = now
        self._remember(packet_id)  # a looped-back own packet is a duplicate
        self.log.append(
            NodeLogEntry("gen", packet_id, self.clock.local_time(now))
        )
        if not self._queue.offer(packet):
            self.stats.dropped_queue += 1
            self._forget(packet)
            self._env.on_lost(packet_id)
            return packet_id
        self._kick()
        return packet_id

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Handle a frame that physically arrived at this node.

        Duplicates (retransmissions after a lost ack) are suppressed via a
        bounded cache of recently seen packet ids, as CTP does.
        """
        if packet.packet_id in self._seen:
            # Either a retransmission after a lost ack (the first copy is
            # already traveling on — not a loss) or a routing-loop revisit
            # (this copy dies here). The simulator reconciles: lost ids
            # that eventually reach the sink are dropped from the lost
            # list when the trace is assembled.
            self.stats.duplicates_suppressed += 1
            self._env.on_lost(packet.packet_id)
            return
        self._remember(packet.packet_id)
        now = self._env.events.now
        packet.arrival_times_ms.append(now)
        packet.header.path.append(self.node_id)
        self.log.append(
            NodeLogEntry("recv", packet.packet_id, self.clock.local_time(now))
        )
        if self.is_sink:
            if self._on_sink_receive is not None:
                self._on_sink_receive(packet, now)
            return
        self._arrival_global_ms[packet.packet_id] = now
        if not self._queue.offer(packet):
            self.stats.dropped_queue += 1
            self._forget(packet)
            self._env.on_lost(packet.packet_id)
            return
        self._kick()

    def _remember(self, packet_id: PacketId) -> None:
        self._seen.add(packet_id)
        self._seen_order.append(packet_id)
        if len(self._seen_order) > self._seen_capacity:
            oldest = self._seen_order.pop(0)
            self._seen.discard(oldest)

    # ------------------------------------------------------------------
    # MAC service loop
    # ------------------------------------------------------------------

    def _kick(self) -> None:
        """Start serving the queue head if the radio is idle."""
        if self._busy or self._queue.is_empty or self.is_sink:
            return
        self._busy = True
        mac = self._env.mac
        rng = self._env.rng
        backoff = mac.processing_floor_ms + rng.uniform(
            mac.initial_backoff_min_ms, mac.initial_backoff_max_ms
        )
        backoff += self._env.extra_processing_ms.get(self.node_id, 0.0)
        packet = self._queue.head()
        self._env.events.schedule(
            backoff, lambda: self._attempt(packet, attempt=1, route_waits=0)
        )

    def _attempt(self, packet: Packet, attempt: int, route_waits: int) -> None:
        """One link-layer transmission attempt of the queue head."""
        now = self._env.events.now
        parent = self._env.routing.parent(self.node_id, now)
        if parent is None:
            if route_waits >= self._env.no_route_max_waits:
                self._give_up(packet, reason="no_route")
                return
            self._env.events.schedule(
                self._env.no_route_retry_ms,
                lambda: self._attempt(packet, attempt, route_waits + 1),
            )
            return
        airtime = self._env.links.airtime_ms(
            packet.size_bytes(self._env.domo_enabled)
        )
        self._env.channel.begin(self.node_id, now, now + airtime)
        self.stats.transmissions += 1
        packet.transmissions += 1
        self._env.events.schedule(
            airtime,
            lambda: self._transmission_end(packet, parent, now, attempt),
        )

    def _transmission_end(
        self, packet: Packet, receiver: int, start_ms: float, attempt: int
    ) -> None:
        """Evaluate the attempt's outcome at its final SFD."""
        env = self._env
        now = env.events.now
        env.channel.finish(self.node_id)

        collided = bool(
            [
                sender
                for sender in env.channel.overlapping_senders(
                    start_ms, now, exclude=self.node_id
                )
                if env.links.in_range(sender, receiver)
            ]
        ) or env.channel.is_transmitting(receiver)
        if collided:
            env.channel.collisions += 1
        link_ok = env.rng.random() < env.links.prr(self.node_id, receiver, now)
        data_delivered = link_ok and not collided
        ack_received = data_delivered and (
            env.mac.ack_loss_prob <= 0.0
            or env.rng.random() >= env.mac.ack_loss_prob
        )

        if data_delivered:
            # Hand an immutable frame snapshot to the receiver at the
            # transmit-SFD instant; propagation is negligible (§III.A).
            # The snapshot carries the sojourn measured up to THIS
            # attempt, exactly as the SFD-stamped bytes on air would.
            frame = self._stamp_frame(packet, now)
            env.nodes[receiver].receive(frame)

        if ack_received:
            self._depart(packet, now)
            env.events.schedule(env.mac.ack_turnaround_ms, self._after_departure)
            self.stats.delivered_upstream += 1
            if packet.source != self.node_id:
                self.stats.forwarded += 1
            return

        # Either the data or its ack was lost: the sender must retry.
        if attempt >= env.mac.max_transmissions:
            self._give_up(packet, reason="retries")
            return
        backoff = env.rng.uniform(
            env.mac.retry_backoff_min_ms, env.mac.retry_backoff_max_ms
        ) + env.mac.retry_backoff_step_ms * min(attempt, 8)
        env.events.schedule(
            backoff, lambda: self._attempt(packet, attempt + 1, route_waits=0)
        )

    def _stamp_frame(self, packet: Packet, now: float) -> Packet:
        """The frame snapshot for one attempt, with Domo fields stamped."""
        frame = packet.delivery_copy()
        if not self._env.domo_enabled:
            return frame
        arrival_global = self._arrival_global_ms[packet.packet_id]
        sojourn_local = self.clock.elapsed_local(arrival_global, now)
        # End-to-end delay accumulation of [7] (written at transmit-SFD).
        frame.header.e2e_delay_ms += sojourn_local
        if packet.source == self.node_id:
            # Algorithm 1 line 10: write the sum into the outgoing local
            # packet's transmission RAM (accumulator itself not cleared
            # until sendDone, i.e. _depart).
            frame.header.sum_of_delays_ms = quantize_ms(
                self._sum_hop_delays_ms + sojourn_local
            )
        return frame

    def _after_departure(self) -> None:
        self._busy = False
        self._kick()

    # ------------------------------------------------------------------
    # Departure bookkeeping (Algorithm 1 lives here)
    # ------------------------------------------------------------------

    def _depart(self, packet: Packet, now: float) -> None:
        """sendDone fired (acked, or retries exhausted): bookkeeping.

        The Domo header fields themselves were stamped into the frame at
        its transmit-SFD (:meth:`_stamp_frame`); here the node updates its
        *local* Algorithm-1 state and releases the queue slot.
        """
        arrival_global = self._arrival_global_ms.pop(packet.packet_id)
        sojourn_local = self.clock.elapsed_local(arrival_global, now)
        if self._env.domo_enabled:
            # Algorithm 1 line 8: accumulate every departing packet's delay.
            self._sum_hop_delays_ms += sojourn_local
            if packet.source == self.node_id:
                # Line 11: the buffer is cleared once the local packet was
                # transmitted (its frame already carries the written sum).
                self._sum_hop_delays_ms = 0.0
        self.log.append(
            NodeLogEntry("send", packet.packet_id, self.clock.local_time(now))
        )
        self._queue.pop()

    def _give_up(self, packet: Packet, reason: str) -> None:
        """Drop the head packet after exhausting retries or routes.

        The packet *did* occupy this node and (for retry exhaustion) did
        fire transmit-SFDs, so Algorithm 1 still accumulates its sojourn —
        losses are precisely why constraint (6) can break while (7) cannot.
        """
        now = self._env.events.now
        if reason == "retries":
            self._depart(packet, now)
            self.stats.dropped_retries += 1
        else:
            self._arrival_global_ms.pop(packet.packet_id, None)
            self._queue.pop()
            self.stats.dropped_no_route += 1
        self._env.on_lost(packet.packet_id)
        self._busy = False
        self._kick()

    def _forget(self, packet: Packet) -> None:
        self._arrival_global_ms.pop(packet.packet_id, None)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def queue_stats(self):
        return self._queue.stats
