"""Per-node local clocks with skew and drift.

Wireless ad-hoc networks have no synchronized global clock (paper §II.A);
nodes only timestamp events with their local oscillators. A local clock maps
global simulation time ``t`` to ``offset + (1 + drift_ppm * 1e-6) * t``.
Node delays are *differences* of two nearby local timestamps, so the skew
cancels and only the (tiny) drift distorts them — exactly the property Domo
relies on when it treats node-measured sojourn times as accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LocalClock:
    """An affine local clock ``local = offset + rate * global``.

    Attributes:
        offset_ms: boot-time offset relative to global time.
        drift_ppm: oscillator frequency error in parts per million; typical
            crystal oscillators on sensor nodes are within +-50 ppm.
    """

    offset_ms: float = 0.0
    drift_ppm: float = 0.0

    @property
    def rate(self) -> float:
        """Local seconds elapsed per global second."""
        return 1.0 + self.drift_ppm * 1e-6

    def local_time(self, global_time_ms: float) -> float:
        """Local timestamp for a global instant."""
        return self.offset_ms + self.rate * global_time_ms

    def elapsed_local(self, global_start_ms: float, global_end_ms: float) -> float:
        """Local-clock measurement of a global interval (what a node sees)."""
        return self.local_time(global_end_ms) - self.local_time(global_start_ms)

    @staticmethod
    def random(rng: np.random.Generator, max_offset_ms: float = 1e7,
               max_drift_ppm: float = 50.0) -> "LocalClock":
        """Sample a realistic clock: large arbitrary offset, small drift."""
        return LocalClock(
            offset_ms=float(rng.uniform(0.0, max_offset_ms)),
            drift_ppm=float(rng.uniform(-max_drift_ppm, max_drift_ppm)),
        )
