"""Constraint-graph tooling for Domo's bound computation (paper §IV.C).

Domo models every unknown arrival time as a vertex and connects two
vertices when some constraint involves both. Computing the bounds of one
arrival time only needs the constraints "near" it, so Domo extracts a
sub-graph per target: a BFS seed of the configured *graph cut size* whose
boundary is then tuned with **Balanced Label Propagation** (Ugander &
Backstrom, WSDM'13) to minimize the number of cut edges.

* :mod:`repro.graphcut.graph` — the constraint graph structure;
* :mod:`repro.graphcut.blp` — balanced label propagation, with the move
  selection solved as a small LP (via :mod:`repro.optim.lp`), as in the
  original algorithm;
* :mod:`repro.graphcut.extraction` — per-target sub-graph extraction.
"""

from repro.graphcut.blp import BlpResult, refine_two_way
from repro.graphcut.extraction import ExtractedSubgraph, SubgraphExtractor
from repro.graphcut.graph import ConstraintGraph

__all__ = [
    "BlpResult",
    "ConstraintGraph",
    "ExtractedSubgraph",
    "SubgraphExtractor",
    "refine_two_way",
]
