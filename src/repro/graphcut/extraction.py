"""Per-target sub-graph extraction (paper §IV.C, Fig. 4).

For a target arrival time, the extractor grows a BFS ball of the
configured *graph cut size* (criterion 1: predetermined vertex count;
criterion 2: BFS keeps the boundary far from the target), then tunes the
boundary with BLP so fewer constraints are cut. The extracted vertex set
plus the boundary's trivial intervals is what the bound LPs are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.graphcut.blp import BlpResult, refine_two_way
from repro.graphcut.graph import ConstraintGraph


@dataclass
class ExtractedSubgraph:
    """One extraction outcome."""

    target: Hashable
    inside: set
    cut_edges: int
    blp: BlpResult | None

    @property
    def size(self) -> int:
        return len(self.inside)


class SubgraphExtractor:
    """Extracts bound-computation sub-graphs around target vertices."""

    def __init__(
        self,
        graph: ConstraintGraph,
        cut_size: int = 10_000,
        use_blp: bool = True,
        protect_radius: int = 1,
        blp_rounds: int = 10,
    ) -> None:
        """
        Args:
            graph: the constraint graph over unknown arrival times.
            cut_size: target number of vertices per sub-graph (the paper's
                *graph cut size*; its Fig. 10 sweeps 5000-20000).
            use_blp: tune the BFS boundary with balanced label propagation.
            protect_radius: hops around the target frozen inside, keeping
                the boundary away from the vertex being optimized.
            blp_rounds: maximum BLP rounds per extraction.
        """
        if cut_size < 1:
            raise ValueError("cut_size must be positive")
        self._graph = graph
        self._cut_size = cut_size
        self._use_blp = use_blp
        self._protect_radius = protect_radius
        self._blp_rounds = blp_rounds

    def extract(self, target: Hashable) -> ExtractedSubgraph:
        """Extract the sub-graph whose bounds will constrain ``target``."""
        graph = self._graph
        if target not in graph:
            raise KeyError(f"target {target!r} not in constraint graph")
        if graph.num_vertices <= self._cut_size:
            inside = set(graph.vertices())
            return ExtractedSubgraph(
                target=target, inside=inside, cut_edges=0, blp=None
            )

        seed = set(graph.bfs_ball(target, self._cut_size))
        if not self._use_blp:
            return ExtractedSubgraph(
                target=target,
                inside=seed,
                cut_edges=graph.cut_weight(seed),
                blp=None,
            )
        frozen = set(graph.bfs_ball(target, self._protected_count()))
        result = refine_two_way(
            graph,
            seed,
            frozen=frozen,
            max_rounds=self._blp_rounds,
        )
        return ExtractedSubgraph(
            target=target,
            inside=result.inside,
            cut_edges=result.final_cut,
            blp=result,
        )

    def _protected_count(self) -> int:
        """How many BFS-closest vertices stay pinned inside."""
        # A small core: the target plus roughly its protect_radius-hop ball,
        # approximated by a fixed fraction of the cut size.
        fraction = max(1, self._cut_size // 10)
        return fraction if self._protect_radius > 0 else 1
