"""Balanced Label Propagation (Ugander & Backstrom, WSDM'13), two-way form.

BLP improves a balanced partition by rounds of *label propagation with
balance constraints*: every vertex computes the gain (neighbors it would
join minus neighbors it would leave) of relocating to the other side, and
a small linear program chooses how many of the best-gain candidates may
actually move in each direction so the partition sizes stay within their
configured bounds. Because candidates are sorted by decreasing gain, the
relocation utility is concave in the number of moves and the LP is exact.

Domo uses the two-partition specialization (inside / outside of the
extracted sub-graph); the LP matches the paper's formulation restricted to
one ordered pair per direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np
import scipy.sparse as sp

from repro.constants import INF
from repro.graphcut.graph import ConstraintGraph
from repro.optim.lp import LinearProgram, solve_lp


@dataclass
class BlpResult:
    """Outcome of a BLP refinement."""

    inside: set
    initial_cut: int
    final_cut: int
    rounds: int
    moves: int


def _relocation_gains(
    graph: ConstraintGraph, inside: set, frozen: set
) -> tuple[list[tuple[int, Hashable]], list[tuple[int, Hashable]]]:
    """Per-direction candidate moves sorted by decreasing gain.

    Only vertices on the boundary (with at least one cross edge) are
    candidates; interior vertices can never improve the cut by moving.
    """
    out_moves: list[tuple[int, Hashable]] = []  # inside -> outside
    in_moves: list[tuple[int, Hashable]] = []  # outside -> inside
    boundary_outside: set = set()
    for vertex in inside:
        for neighbor in graph.neighbors(vertex):
            if neighbor not in inside:
                boundary_outside.add(neighbor)
    for vertex in inside:
        if vertex in frozen:
            continue
        stay = cross = 0
        for neighbor, weight in graph.neighbors(vertex).items():
            if neighbor in inside:
                stay += weight
            else:
                cross += weight
        if cross > 0:
            out_moves.append((cross - stay, vertex))
    for vertex in boundary_outside:
        if vertex in frozen:
            continue
        stay = cross = 0
        for neighbor, weight in graph.neighbors(vertex).items():
            if neighbor in inside:
                cross += weight
            else:
                stay += weight
        in_moves.append((cross - stay, vertex))
    out_moves.sort(key=lambda item: -item[0])
    in_moves.sort(key=lambda item: -item[0])
    return out_moves, in_moves


def _choose_move_counts(
    out_gains: list[int],
    in_gains: list[int],
    inside_size: int,
    size_bounds: tuple[int, int],
) -> tuple[int, int]:
    """LP: how many top-gain moves to take in each direction.

    maximize   sum of chosen gains
    subject to size_lo <= inside_size - moves_out + moves_in <= size_hi

    Each candidate is a [0, 1] variable with its gain as the objective;
    sorted gains make the fractional optimum integral up to one split
    candidate, which rounding toward feasibility handles.
    """
    n_out, n_in = len(out_gains), len(in_gains)
    if n_out + n_in == 0:
        return 0, 0
    c = -np.array([float(g) for g in out_gains] + [float(g) for g in in_gains])
    balance_row = np.concatenate([-np.ones(n_out), np.ones(n_in)])
    lo, hi = size_bounds
    problem = LinearProgram(
        c=c,
        A=sp.csr_matrix(balance_row.reshape(1, -1)),
        row_lower=np.array([lo - inside_size], dtype=float),
        row_upper=np.array([hi - inside_size], dtype=float),
        x_lower=np.zeros(n_out + n_in),
        x_upper=np.ones(n_out + n_in),
    )
    result = solve_lp(problem)
    if not result.status.is_usable:
        return 0, 0
    z = result.x
    moves_out = int(round(float(np.sum(z[:n_out]))))
    moves_in = int(round(float(np.sum(z[n_out:]))))
    # Re-impose the balance bounds after rounding.
    while inside_size - moves_out + moves_in < lo and moves_out > 0:
        moves_out -= 1
    while inside_size - moves_out + moves_in > hi and moves_in > 0:
        moves_in -= 1
    return moves_out, moves_in


def refine_two_way(
    graph: ConstraintGraph,
    inside: set,
    size_bounds: tuple[int, int] | None = None,
    frozen: set | None = None,
    max_rounds: int = 20,
) -> BlpResult:
    """Refine the inside/outside split to minimize cut edges.

    Args:
        graph: the constraint graph.
        inside: initial inside set (mutated copy is returned, input intact).
        size_bounds: (min, max) allowed inside sizes; defaults to +-10% of
            the initial size.
        frozen: vertices that may never change side (Domo pins the target
            arrival time and its immediate neighbors inside).
        max_rounds: LP/propagation rounds before giving up.
    """
    inside = set(inside)
    frozen = frozen or set()
    if size_bounds is None:
        slack = max(1, len(inside) // 10)
        size_bounds = (len(inside) - slack, len(inside) + slack)

    initial_cut = graph.cut_weight(inside)
    cut = initial_cut
    total_moves = 0
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        out_moves, in_moves = _relocation_gains(graph, inside, frozen)
        # Only nonnegative-gain prefixes can help; keep a small negative
        # margin so paired swaps (one +2, one -1) remain possible.
        out_moves = [m for m in out_moves if m[0] > -2]
        in_moves = [m for m in in_moves if m[0] > -2]
        moves_out, moves_in = _choose_move_counts(
            [g for g, _ in out_moves],
            [g for g, _ in in_moves],
            len(inside),
            size_bounds,
        )
        chosen_out = [v for _, v in out_moves[:moves_out]]
        chosen_in = [v for _, v in in_moves[:moves_in]]
        gain = sum(g for g, _ in out_moves[:moves_out]) + sum(
            g for g, _ in in_moves[:moves_in]
        )
        if not chosen_out and not chosen_in:
            break
        candidate = (inside - set(chosen_out)) | set(chosen_in)
        new_cut = graph.cut_weight(candidate)
        if new_cut >= cut:
            # Gains were computed against the pre-move partition; applying
            # many moves at once can interfere. Stop at a local optimum.
            break
        inside = candidate
        cut = new_cut
        total_moves += len(chosen_out) + len(chosen_in)
        del gain
    return BlpResult(
        inside=inside,
        initial_cut=initial_cut,
        final_cut=cut,
        rounds=rounds,
        moves=total_moves,
    )
