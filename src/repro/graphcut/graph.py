"""The constraint graph: unknown arrival times and their couplings."""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable


class ConstraintGraph:
    """Undirected multigraph over constraint variables.

    Vertices are variable keys (Domo uses ``(packet_id, hop)``); an edge's
    weight counts how many constraints couple the two endpoints. A thin
    purpose-built structure is faster here than a generic graph library
    for the two operations extraction needs: neighbor iteration and BFS.
    """

    def __init__(self) -> None:
        self._adjacency: dict[Hashable, dict[Hashable, int]] = {}

    @property
    def num_vertices(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def vertices(self) -> list[Hashable]:
        return list(self._adjacency)

    def __contains__(self, vertex: Hashable) -> bool:
        return vertex in self._adjacency

    def add_vertex(self, vertex: Hashable) -> None:
        self._adjacency.setdefault(vertex, {})

    def add_edge(self, a: Hashable, b: Hashable, weight: int = 1) -> None:
        """Add (or reinforce) the edge between two distinct vertices."""
        if a == b:
            return
        self.add_vertex(a)
        self.add_vertex(b)
        self._adjacency[a][b] = self._adjacency[a].get(b, 0) + weight
        self._adjacency[b][a] = self._adjacency[b].get(a, 0) + weight

    def add_clique(self, vertices: Iterable[Hashable]) -> None:
        """Connect all pairs among ``vertices`` (one constraint row)."""
        items = list(dict.fromkeys(vertices))
        for i, a in enumerate(items):
            self.add_vertex(a)
            for b in items[i + 1:]:
                self.add_edge(a, b)

    def neighbors(self, vertex: Hashable) -> dict[Hashable, int]:
        """Neighbor -> edge weight mapping (empty for isolated/missing)."""
        return self._adjacency.get(vertex, {})

    def degree(self, vertex: Hashable) -> int:
        """Weighted degree of a vertex."""
        return sum(self._adjacency.get(vertex, {}).values())

    def bfs_ball(self, center: Hashable, max_size: int) -> list[Hashable]:
        """Vertices in breadth-first order from ``center``, capped at size."""
        if center not in self._adjacency:
            raise KeyError(f"vertex {center!r} not in graph")
        seen = {center}
        order = [center]
        frontier = deque([center])
        while frontier and len(order) < max_size:
            vertex = frontier.popleft()
            for neighbor in self._adjacency[vertex]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    order.append(neighbor)
                    frontier.append(neighbor)
                    if len(order) >= max_size:
                        break
        return order

    def cut_weight(self, inside: set) -> int:
        """Total weight of edges with exactly one endpoint in ``inside``."""
        total = 0
        for vertex in inside:
            for neighbor, weight in self._adjacency.get(vertex, {}).items():
                if neighbor not in inside:
                    total += weight
        return total
