"""Synchronous client for the reconstruction service's line protocol.

Used by ``examples/serve_demo.py``, the CI serve-smoke job, and tests.
One :class:`ServeClient` wraps one connection; records are pipelined
(written without waiting for acks) and commands are request/response.
Asynchronous error lines the server interleaves (rejected records,
tagged ``"async": true``) are collected on :attr:`async_errors` while
waiting for a command's reply, so a replay can assert that every record
it sent was actually accepted.

Against a *durable* server (``domo serve --wal-dir``) the client can
survive server crashes: :meth:`ServeClient.reconnect` re-dials the same
endpoint with bounded exponential backoff (covering the supervisor's
restart window), and :meth:`ServeClient.send_packets_resumable` resends
a trace from the server's ``records_durable`` offset — the count the
``RESULTS --since`` reply reports as safely in the WAL — so nothing is
lost and nothing is double-ingested.
"""

from __future__ import annotations

import json
import socket
import time

from repro.serve.protocol import (
    DEFAULT_STREAM,
    arrival_key_of,
    encode_record,
)

__all__ = ["ServeClient", "connect"]

#: errors that mean "the connection is gone, not the request is bad".
_RESET_ERRORS = (ConnectionError, BrokenPipeError, TimeoutError, OSError)


class ServeClient:
    """One connection to a running reconstruction server.

    ``dial`` (supplied by :func:`connect`) is a zero-argument callable
    returning a fresh connected socket; without it the client works as
    before but cannot :meth:`reconnect`.
    """

    def __init__(self, sock: socket.socket, *, dial=None) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._dial = dial
        #: async error lines observed while reading command replies.
        self.async_errors: list[dict] = []
        #: successful re-dials performed by :meth:`reconnect`.
        self.reconnects = 0
        #: True once :meth:`close` ran (cleared by :meth:`reconnect`).
        self.closed = False

    # -- transport ------------------------------------------------------

    def send_packet(
        self,
        packet,
        stream: str = DEFAULT_STREAM,
        backend: str | None = None,
    ) -> None:
        """Pipeline one record (no ack; see :attr:`async_errors`).

        ``backend`` picks the stream's estimator backend; it only takes
        effect on the record that opens the stream (see the protocol
        module docstring).
        """
        self._sock.sendall(encode_record(stream, packet, backend=backend))

    def send_packets(
        self,
        packets,
        stream: str = DEFAULT_STREAM,
        backend: str | None = None,
    ) -> int:
        """Pipeline a batch of records in one buffered write."""
        chunk = b"".join(
            encode_record(stream, p, backend=backend) for p in packets
        )
        self._sock.sendall(chunk)
        return chunk.count(b"\n")

    def send_raw(self, data: bytes) -> None:
        """Pipeline pre-encoded wire lines verbatim (router forwarding).

        The router proxies client record lines without re-encoding them
        — byte identity on the wire is what keeps served results
        bit-identical to a direct connection.
        """
        self._sock.sendall(data)

    def command(self, line: str) -> dict:
        """Send one command line, return its (non-async) JSON reply."""
        self._sock.sendall(line.strip().encode("utf-8") + b"\n")
        while True:
            raw = self._rfile.readline()
            if not raw:
                raise ConnectionError(
                    f"server closed the connection during {line!r}"
                )
            reply = json.loads(raw)
            if reply.get("async"):
                self.async_errors.append(reply)
                continue
            return reply

    # -- crash resilience ----------------------------------------------

    def reconnect(
        self,
        retries: int = 5,
        backoff_s: float = 0.2,
        deadline_s: float | None = None,
    ) -> None:
        """Re-dial the endpoint this client was created from.

        Retries with exponential backoff — a supervised server takes a
        backoff-and-recovery beat to come back after a crash.
        ``deadline_s`` bounds the *total* time spent (dialing plus all
        backoff sleeps), not just each attempt: a router failing over a
        shard needs a hard ceiling on how long a client-visible stall
        can last. Raises the last connection error once ``retries``
        attempts or the deadline are exhausted, or :class:`RuntimeError`
        if the client has no dialer.
        """
        if self._dial is None:
            raise RuntimeError(
                "this client was built from a raw socket and cannot "
                "reconnect; use serve.connect() to get a re-dialable one"
            )
        self.close()
        deadline = (
            None if deadline_s is None else time.monotonic() + deadline_s
        )
        last: Exception | None = None
        for attempt in range(max(1, retries)):
            if deadline is not None and time.monotonic() >= deadline:
                break
            try:
                sock = self._dial()
            except _RESET_ERRORS as exc:
                last = exc
                sleep_s = backoff_s * (2 ** attempt)
                if deadline is not None:
                    sleep_s = min(sleep_s, deadline - time.monotonic())
                    if sleep_s <= 0:
                        continue  # deadline check at loop top ends this
                time.sleep(sleep_s)
                continue
            self._sock = sock
            self._rfile = sock.makefile("rb")
            self.reconnects += 1
            self.closed = False
            return
        if last is None:
            raise TimeoutError(
                f"reconnect deadline of {deadline_s}s expired before the "
                "first dial attempt"
            )
        raise last

    def durable_offset(self, stream: str = DEFAULT_STREAM) -> int:
        """How many of the stream's records the server holds durably.

        This is the resume offset after a crash: a sender that has
        pushed ``n`` records resends from index ``durable_offset()``.
        A stream the (restarted, non-durable) server does not know
        yields 0 — resend everything.
        """
        reply = self.results(stream, since=1 << 62)
        if not reply.get("ok"):
            return 0
        return int(reply.get("records_durable", 0))

    def send_packets_resumable(
        self,
        packets,
        stream: str = DEFAULT_STREAM,
        *,
        retries: int = 5,
        backoff_s: float = 0.2,
    ) -> int:
        """Send a full trace, surviving server crashes mid-send.

        Assumes this sender is the stream's only producer (the durable
        offset then equals an index into ``packets``). After each
        connection reset: reconnect with backoff, ask the server how
        many records are safely in its WAL, and resend the rest.
        Returns the number of resets survived.
        """
        packets = list(packets)
        resets = 0
        offset = 0
        while True:
            try:
                if offset < len(packets):
                    self.send_packets(packets[offset:], stream)
                # Round-trip a cheap command: flushes the pipelined
                # writes through and proves the server ingested them.
                self.durable_offset(stream)
                return resets
            except _RESET_ERRORS:
                resets += 1
                if resets > retries:
                    raise
                self.reconnect(retries=retries, backoff_s=backoff_s)
                offset = self.durable_offset(stream)

    # -- commands -------------------------------------------------------

    def health(self) -> dict:
        return self.command("HEALTH")

    def stats(self) -> dict:
        return self.command("STATS")

    def flush(self, stream: str = DEFAULT_STREAM) -> dict:
        return self.command(f"FLUSH {stream}")

    def results(
        self, stream: str = DEFAULT_STREAM, since: int | str = -1
    ) -> dict:
        """Committed windows past a cursor.

        ``since`` is a plain solve index, or — against a router — the
        opaque vector-cursor token (``v@...``) the previous RESULTS
        reply returned as ``"cursor"``. Pass that token back verbatim to
        page without losing or duplicating a window across shard
        failover or migration.
        """
        if isinstance(since, str):
            suffix = f" --since {since}" if since else ""
        else:
            suffix = f" --since {since}" if since >= 0 else ""
        return self.command(f"RESULTS {stream}{suffix}")

    def estimates(self, stream: str = DEFAULT_STREAM) -> dict:
        """All committed estimates of a stream, decoded to real keys.

        Returns ``{ArrivalKey: float}`` merged across windows — directly
        comparable (``==``, bit-for-bit) with the batch pipeline's
        ``DomoReconstructor.estimate`` output.
        """
        reply = self.results(stream)
        if not reply.get("ok"):
            raise RuntimeError(f"RESULTS failed: {reply.get('error')}")
        merged = {}
        for window in reply["windows"]:
            for key_text, value in window["estimates"].items():
                merged[arrival_key_of(key_text)] = value
        return merged

    def quit(self) -> None:
        try:
            self.command("QUIT")
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        """Close the connection; safe to call any number of times."""
        if self.closed:
            return
        self.closed = True
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int | None = None,
    timeout: float | None = 30.0,
    connect_retries: int = 1,
    retry_backoff_s: float = 0.2,
) -> ServeClient:
    """Open a client over a unix socket (preferred) or TCP.

    ``timeout`` bounds both the dial and every subsequent read — a
    half-dead server surfaces as :class:`TimeoutError` rather than a
    hang. ``connect_retries`` > 1 retries a refused/absent endpoint
    with exponential backoff, which is what a client racing a
    supervised server's restart needs.
    """
    if socket_path is None and port is None:
        raise ValueError("need a unix socket path or a TCP port")

    def dial() -> socket.socket:
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(socket_path)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection((host, port), timeout=timeout)

    last: Exception | None = None
    for attempt in range(max(1, connect_retries)):
        try:
            return ServeClient(dial(), dial=dial)
        except _RESET_ERRORS as exc:
            last = exc
            time.sleep(retry_backoff_s * (2 ** attempt))
    assert last is not None
    raise last
