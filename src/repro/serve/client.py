"""Synchronous client for the reconstruction service's line protocol.

Used by ``examples/serve_demo.py``, the CI serve-smoke job, and tests.
One :class:`ServeClient` wraps one connection; records are pipelined
(written without waiting for acks) and commands are request/response.
Asynchronous error lines the server interleaves (rejected records,
tagged ``"async": true``) are collected on :attr:`async_errors` while
waiting for a command's reply, so a replay can assert that every record
it sent was actually accepted.
"""

from __future__ import annotations

import json
import socket

from repro.serve.protocol import (
    DEFAULT_STREAM,
    arrival_key_of,
    encode_record,
)

__all__ = ["ServeClient", "connect"]


class ServeClient:
    """One connection to a running reconstruction server."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._rfile = sock.makefile("rb")
        #: async error lines observed while reading command replies.
        self.async_errors: list[dict] = []

    # -- transport ------------------------------------------------------

    def send_packet(self, packet, stream: str = DEFAULT_STREAM) -> None:
        """Pipeline one record (no ack; see :attr:`async_errors`)."""
        self._sock.sendall(encode_record(stream, packet))

    def send_packets(self, packets, stream: str = DEFAULT_STREAM) -> int:
        """Pipeline a batch of records in one buffered write."""
        chunk = b"".join(encode_record(stream, p) for p in packets)
        self._sock.sendall(chunk)
        return chunk.count(b"\n")

    def command(self, line: str) -> dict:
        """Send one command line, return its (non-async) JSON reply."""
        self._sock.sendall(line.strip().encode("utf-8") + b"\n")
        while True:
            raw = self._rfile.readline()
            if not raw:
                raise ConnectionError(
                    f"server closed the connection during {line!r}"
                )
            reply = json.loads(raw)
            if reply.get("async"):
                self.async_errors.append(reply)
                continue
            return reply

    # -- commands -------------------------------------------------------

    def health(self) -> dict:
        return self.command("HEALTH")

    def stats(self) -> dict:
        return self.command("STATS")

    def flush(self, stream: str = DEFAULT_STREAM) -> dict:
        return self.command(f"FLUSH {stream}")

    def results(self, stream: str = DEFAULT_STREAM, since: int = -1) -> dict:
        suffix = f" --since {since}" if since >= 0 else ""
        return self.command(f"RESULTS {stream}{suffix}")

    def estimates(self, stream: str = DEFAULT_STREAM) -> dict:
        """All committed estimates of a stream, decoded to real keys.

        Returns ``{ArrivalKey: float}`` merged across windows — directly
        comparable (``==``, bit-for-bit) with the batch pipeline's
        ``DomoReconstructor.estimate`` output.
        """
        reply = self.results(stream)
        if not reply.get("ok"):
            raise RuntimeError(f"RESULTS failed: {reply.get('error')}")
        merged = {}
        for window in reply["windows"]:
            for key_text, value in window["estimates"].items():
                merged[arrival_key_of(key_text)] = value
        return merged

    def quit(self) -> None:
        try:
            self.command("QUIT")
        except (ConnectionError, OSError):
            pass

    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    socket_path: str | None = None,
    host: str = "127.0.0.1",
    port: int | None = None,
    timeout: float | None = 30.0,
) -> ServeClient:
    """Open a client over a unix socket (preferred) or TCP."""
    if socket_path is not None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(socket_path)
    elif port is not None:
        sock = socket.create_connection((host, port), timeout=timeout)
    else:
        raise ValueError("need a unix socket path or a TCP port")
    return ServeClient(sock)
