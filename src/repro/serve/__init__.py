"""The reconstruction service layer: ``domo serve`` and its client.

Layering (each module only imports downward)::

    supervisor parent process: restart-on-crash, backoff, breaker
    server     asyncio listeners, readers, pumps, drain-on-SIGTERM
    session    per-stream engine + registry + result log; admission,
               WAL logging, snapshots, crash recovery
    durability WAL segments, atomic snapshots, crashpoints
    pool       fair multiplexing of many engines onto one WindowExecutor
    protocol   newline-delimited records/commands, strict-JSON replies
    client     synchronous helper speaking the protocol (demo, CI,
               tests) with reconnect + resume-from-durable-offset
"""

from repro.serve.client import ServeClient, connect
from repro.serve.durability import DurabilityConfig, WalCorruptionError
from repro.serve.durability.recovery import (
    RecoveryError,
    SnapshotConfigMismatchError,
)
from repro.serve.durability.supervisor import CrashLoopError, Supervisor
from repro.serve.pool import SessionExecutor, SharedSolverPool
from repro.serve.protocol import DEFAULT_STREAM, ProtocolError
from repro.serve.server import ReconstructionServer, ServerHandle, run_in_thread
from repro.serve.session import SessionLimitError, SessionManager, StreamSession

__all__ = [
    "DEFAULT_STREAM",
    "CrashLoopError",
    "DurabilityConfig",
    "ProtocolError",
    "ReconstructionServer",
    "RecoveryError",
    "ServeClient",
    "ServerHandle",
    "SessionExecutor",
    "SessionLimitError",
    "SessionManager",
    "SharedSolverPool",
    "SnapshotConfigMismatchError",
    "StreamSession",
    "Supervisor",
    "WalCorruptionError",
    "connect",
    "run_in_thread",
]
