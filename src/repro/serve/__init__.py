"""The reconstruction service layer: ``domo serve`` and its client.

Layering (each module only imports downward)::

    server   asyncio listeners, readers, pumps, drain-on-SIGTERM
    session  per-stream engine + registry + result log; admission
    pool     fair multiplexing of many engines onto one WindowExecutor
    protocol newline-delimited records/commands, strict-JSON replies
    client   synchronous helper speaking the protocol (demo, CI, tests)
"""

from repro.serve.client import ServeClient, connect
from repro.serve.pool import SessionExecutor, SharedSolverPool
from repro.serve.protocol import DEFAULT_STREAM, ProtocolError
from repro.serve.server import ReconstructionServer, ServerHandle, run_in_thread
from repro.serve.session import SessionLimitError, SessionManager, StreamSession

__all__ = [
    "DEFAULT_STREAM",
    "ProtocolError",
    "ReconstructionServer",
    "ServeClient",
    "ServerHandle",
    "SessionExecutor",
    "SessionLimitError",
    "SessionManager",
    "SharedSolverPool",
    "StreamSession",
    "connect",
    "run_in_thread",
]
