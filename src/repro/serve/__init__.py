"""The reconstruction service layer: ``domo serve``/``domo route``.

Layering (each module only imports downward)::

    router     consistent-hash front door: N shard processes, live
               stream migration, vector-cursor RESULTS, failover resync
    supervisor parent process: restart-on-crash, backoff, breaker
    server     the serving core: per-stream pumps, eviction, commands
               (incl. EXPORT/IMPORT migration), drain-on-SIGTERM
    core       shared listener/connection front door (readers, strict-
               JSON replies, signal wiring) for server and router
    session    per-stream engine + registry + result log; admission,
               WAL logging, snapshots, crash recovery, export/import
    durability WAL segments, atomic snapshots, crashpoints
    pool       fair multiplexing of many engines onto one WindowExecutor
    protocol   newline-delimited records/commands, strict-JSON replies,
               vector cursors
    client     synchronous helper speaking the protocol (demo, CI,
               tests) with reconnect + resume-from-durable-offset
"""

from repro.serve.client import ServeClient, connect
from repro.serve.core import LineProtocolServer
from repro.serve.durability import DurabilityConfig, WalCorruptionError
from repro.serve.durability.recovery import (
    RecoveryError,
    SnapshotConfigMismatchError,
)
from repro.serve.durability.supervisor import CrashLoopError, Supervisor
from repro.serve.pool import SessionExecutor, SharedSolverPool
from repro.serve.protocol import DEFAULT_STREAM, ProtocolError
from repro.serve.router import HashRing, RouterServer, ShardSpec
from repro.serve.server import ReconstructionServer, ServerHandle, run_in_thread
from repro.serve.session import SessionLimitError, SessionManager, StreamSession

__all__ = [
    "DEFAULT_STREAM",
    "CrashLoopError",
    "DurabilityConfig",
    "HashRing",
    "LineProtocolServer",
    "ProtocolError",
    "ReconstructionServer",
    "RecoveryError",
    "RouterServer",
    "ServeClient",
    "ServerHandle",
    "SessionExecutor",
    "SessionLimitError",
    "SessionManager",
    "ShardSpec",
    "SharedSolverPool",
    "SnapshotConfigMismatchError",
    "StreamSession",
    "Supervisor",
    "WalCorruptionError",
    "connect",
    "run_in_thread",
]
