"""Listener/connection core shared by the serve tier's asyncio servers.

Both line-protocol servers — the single-process/shard
:class:`~repro.serve.server.ReconstructionServer` and the sharded
front-door :class:`~repro.serve.router.RouterServer` — need the same
plumbing: TCP/unix listeners, one reader coroutine per connection that
splits lines and parses them (:mod:`repro.serve.protocol`), strict-JSON
replies that survive unserializable payloads, connection bookkeeping,
SIGTERM/SIGINT wiring, and an orderly close of listeners → readers →
background tasks. :class:`LineProtocolServer` owns exactly that
front-door half; what a *parsed* line means — feed an engine lane, or
proxy to a shard — is the serving core, supplied by subclasses through
three hooks:

``handle_record(conn_id, record, writer)``
    one accepted data record (may await — this is the backpressure
    point: blocking here parks the connection's reader).
``handle_command(cmd)``
    one command line; returns the JSON-able reply dict.
``on_disconnect(conn_id)``
    a connection fully closed (sync; spawn follow-up work with
    :meth:`_spawn`).

plus ``_run_core()``, the lifecycle body that decides what wraps the
listen-drain sequence (metrics registry and report for the shard
server; shard process supervision for the router). This split is what
lets a shard run headless on an internal unix socket with a raised
line limit (``IMPORT`` lines carry whole exported streams) while the
router reuses the identical reader loop for its public endpoints.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading

from repro.obs.spans import span
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    CommandLine,
    ProtocolError,
    RecordLine,
    encode_response,
    error_response,
    parse_line,
)

__all__ = ["LineProtocolServer"]


class LineProtocolServer:
    """The front-door half of a line-protocol asyncio server.

    Args:
        socket_path: serve on this unix-domain socket (optional).
        host/port: serve on TCP (optional; ``port=0`` picks a free port,
            readable afterwards from :attr:`endpoints`).
        max_line_bytes: readline limit per connection; a longer line is
            an unrecoverable framing error (the client gets one fatal
            error line). Shards behind a router raise this so IMPORT
            lines fit.
        on_ready: called with the server once the listeners are up.
    """

    def __init__(
        self,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        on_ready=None,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix socket path and/or a TCP port")
        if max_line_bytes < 1024:
            raise ValueError("max_line_bytes must be >= 1024")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_line_bytes = max_line_bytes
        #: called with the server once the listeners are up (CLI banner).
        self.on_ready = on_ready
        #: "unix:<path>" / "tcp:<host>:<port>" actually listening.
        self.endpoints: list[str] = []

        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._bg_tasks: set[asyncio.Task] = set()
        self._next_conn_id = 0
        self._connections_total = 0
        self._records_accepted = 0
        self._records_rejected = 0
        self._records_dropped = 0
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # Hooks the serving core implements
    # ------------------------------------------------------------------

    async def _run_core(self):
        """The lifecycle body; typically wraps
        :meth:`_serve_until_shutdown` + a drain and returns a report."""
        raise NotImplementedError

    async def handle_record(
        self, conn_id: int, record: RecordLine, writer
    ) -> None:
        raise NotImplementedError

    async def handle_command(self, cmd: CommandLine) -> dict:
        raise NotImplementedError

    def on_disconnect(self, conn_id: int) -> None:
        """A connection closed (after its writer is torn down)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self):
        """Install signal handlers, run the serving core, clean up."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        handled_signals = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._shutdown.set)
                handled_signals.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # not the main thread, or platform without support
        try:
            return await self._run_core()
        finally:
            self._ready.set()  # never leave wait_ready() callers hanging
            for sig in handled_signals:
                self._loop.remove_signal_handler(sig)
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass

    def request_shutdown(self) -> None:
        """Trigger the graceful drain (thread-safe, idempotent)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the listeners are up (for out-of-thread callers)."""
        return self._ready.wait(timeout)

    async def _start_listeners(self) -> None:
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.socket_path,
                limit=self.max_line_bytes,
            )
            self._servers.append(server)
            self.endpoints.append(f"unix:{self.socket_path}")
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=self.max_line_bytes,
            )
            self._servers.append(server)
            bound = server.sockets[0].getsockname()
            self.port = bound[1]
            self.endpoints.append(f"tcp:{self.host}:{bound[1]}")

    async def _serve_until_shutdown(self) -> None:
        """Listeners up → ready → block until the shutdown event."""
        await self._start_listeners()
        self._ready.set()
        if self.on_ready is not None:
            self.on_ready(self)
        await self._shutdown.wait()

    async def _close_connections(self) -> None:
        """Close listeners, cancel readers, settle background tasks."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._bg_tasks:
            await asyncio.gather(*self._bg_tasks, return_exceptions=True)

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._bg_tasks.add(task)
        task.add_done_callback(self._bg_tasks.discard)
        return task

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self._connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(conn_id, reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            self.on_disconnect(conn_id)

    async def _send(self, writer, payload: dict) -> None:
        """Encode and write one response line, surviving bad payloads.

        Strict JSON (``allow_nan=False``) refuses non-finite floats; if
        a response ever contains one, the client must get an error line
        naming the problem, not a silently closed socket.
        """
        try:
            data = encode_response(payload)
        except ValueError as exc:
            data = encode_response(
                error_response(
                    f"response not serializable as strict JSON: {exc}"
                )
            )
        writer.write(data)
        await writer.drain()

    async def _serve_connection(self, conn_id: int, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Line longer than max_line_bytes: unrecoverable framing.
                await self._send(
                    writer, error_response("line too long", fatal=True)
                )
                return
            if not line:
                return  # EOF
            try:
                with span("parse"):
                    parsed = parse_line(
                        line.decode("utf-8", errors="replace"), conn_id
                    )
            except ProtocolError as exc:
                self._records_rejected += 1
                await self._send(
                    writer, error_response(str(exc), **{"async": True})
                )
                continue
            if parsed is None:
                continue
            if isinstance(parsed, RecordLine):
                await self.handle_record(conn_id, parsed, writer)
                continue
            response = await self.handle_command(parsed)
            await self._send(writer, response)
            if parsed.verb == "QUIT":
                return

    # ------------------------------------------------------------------
    # Shared stats
    # ------------------------------------------------------------------

    def connection_stats(self) -> dict:
        return {
            "endpoints": list(self.endpoints),
            "connections_total": self._connections_total,
            "connections_open": len(self._conn_tasks),
            "records_accepted": self._records_accepted,
            "records_rejected": self._records_rejected,
            "records_dropped": self._records_dropped,
        }
