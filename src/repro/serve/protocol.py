"""The reconstruction service's newline-delimited wire protocol.

One TCP or unix-domain connection carries a sequence of LF-terminated
lines in either of two shapes:

* **Data records** — lines starting with ``{``: a JSON object in the
  JSONL trace-record shape (``id``/``path``/``t0``/``t_sink``/
  ``sum_of_delays``, exactly what ``domo simulate --save-stream``
  writes) plus an optional ``"stream"`` key naming the session the
  record belongs to (default ``"default"``) and an optional
  ``"backend"`` key choosing the stream's estimator backend (see
  :mod:`repro.backends`; only honored on the record that opens the
  stream — a conflicting backend on a live stream is an async error).
  Records are *not* acked
  individually — throughput would otherwise be round-trip bound — but a
  rejected record (unknown session capacity, malformed payload, drained
  stream) produces an asynchronous error line tagged ``"async": true``
  so a client draining its read side can account for every loss.
* **Commands** — any other non-empty line: a verb plus
  whitespace-separated arguments. Every command produces exactly one
  JSON response line (plus any pending async error lines before it).

Commands::

    HEALTH                       liveness + session headcount
    STATS                        server and per-session counters
    RESULTS <stream> [--since C] committed windows past the cursor C
    FLUSH <stream>               seal/solve/commit everything buffered
    EXPORT <stream>              quiesce + hand over the stream's state
    IMPORT <stream> <b64doc>     adopt a stream exported elsewhere
    QUIT                         close this connection

The router front-door (:mod:`repro.serve.router`) additionally accepts
``MIGRATE <stream> [shard]`` and ``DRAIN <shard>``; it consumes
``EXPORT``/``IMPORT`` itself (they are shard-internal).

``--since`` takes either a plain integer (a per-stream ``solve_index``,
the single-server form) or a **vector cursor** — the opaque
``v@shard:index,...`` token a router's RESULTS reply returns, recording
the highest solve index the client has seen *from each shard*. Solve
indices are stream-global (migration imports a stream's history, so
they stay monotone across shard moves), which makes
``max(entries) == resume point``; the vector keeps per-shard provenance
so no failover or migration interleaving can lose or replay a window.

Responses are **strict JSON** (no NaN/Infinity tokens), one object per
line, always carrying ``"ok"``. Estimates are serialized with Python's
shortest-round-trip float repr, so a client parses back bit-identical
values — the property the RESULTS-vs-batch parity check relies on.
"""

from __future__ import annotations

import json
import urllib.parse
from dataclasses import dataclass

from repro.core.records import ArrivalKey
from repro.sim.io import TraceFormatError, packet_from_json, packet_to_json
from repro.sim.packet import PacketId
from repro.sim.trace import ReceivedPacket

__all__ = [
    "COMMANDS",
    "DEFAULT_STREAM",
    "MAX_LINE_BYTES",
    "MAX_ADMIN_LINE_BYTES",
    "ROUTER_COMMANDS",
    "VECTOR_CURSOR_PREFIX",
    "CommandLine",
    "ProtocolError",
    "RecordLine",
    "committed_window_to_json",
    "cursor_since",
    "encode_record",
    "encode_response",
    "encode_vector_cursor",
    "error_response",
    "estimate_key",
    "merge_vector_cursor",
    "parse_estimate_key",
    "parse_line",
    "parse_since",
]

DEFAULT_STREAM = "default"

#: commands a shard/single server understands (anything else errors).
COMMANDS = ("HEALTH", "STATS", "RESULTS", "FLUSH", "EXPORT", "IMPORT", "QUIT")

#: commands the router front-door understands.
ROUTER_COMMANDS = (
    "HEALTH", "STATS", "RESULTS", "FLUSH", "MIGRATE", "DRAIN", "QUIT"
)

#: server-side readline limit. A record line is ~100 bytes; 1 MiB keeps
#: a hostile/broken client from ballooning the reader buffer.
MAX_LINE_BYTES = 1 << 20

#: readline limit for shard servers behind a router: an ``IMPORT`` line
#: carries a whole stream's exported state, which can dwarf any record.
#: The socket is internal (router-only), so the hostile-client argument
#: for the 1 MiB cap does not apply.
MAX_ADMIN_LINE_BYTES = 64 << 20


class ProtocolError(ValueError):
    """A line that is neither a valid record nor a valid command."""


@dataclass(frozen=True)
class RecordLine:
    """One parsed data record: which stream it feeds and the packet.

    ``backend`` carries the record's optional ``"backend"`` key: the
    estimator backend the stream should be opened with (``None`` = the
    server default). Only the *first* record of a stream can choose —
    a different backend on a live stream is an async error.
    """

    stream: str
    packet: ReceivedPacket
    backend: str | None = None


@dataclass(frozen=True)
class CommandLine:
    """One parsed command line."""

    verb: str
    args: tuple[str, ...]


def _validate_stream_id(stream) -> str:
    if not isinstance(stream, str) or not stream or len(stream) > 128:
        raise ProtocolError(
            f"stream id must be a nonempty string of <=128 chars, "
            f"got {stream!r}"
        )
    if any(c.isspace() for c in stream):
        raise ProtocolError(
            f"stream id must not contain whitespace, got {stream!r}"
        )
    return stream


def parse_line(line: str, lineno: int = 0) -> RecordLine | CommandLine | None:
    """Parse one wire line; ``None`` for blank lines.

    Raises :class:`ProtocolError` on malformed JSON, malformed record
    fields, or bad stream ids — the server turns that into an error
    line rather than closing the connection.
    """
    line = line.strip()
    if not line:
        return None
    if line.startswith("{"):
        try:
            item = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"record line is not valid JSON: {exc}")
        if not isinstance(item, dict):
            raise ProtocolError("record line is not a JSON object")
        stream = _validate_stream_id(item.pop("stream", DEFAULT_STREAM))
        backend = item.pop("backend", None)
        if backend is not None and (
            not isinstance(backend, str) or not backend
        ):
            raise ProtocolError(
                f"backend must be a nonempty string, got {backend!r}"
            )
        try:
            packet = packet_from_json(item, lineno)
        except TraceFormatError as exc:
            raise ProtocolError(str(exc))
        return RecordLine(stream=stream, packet=packet, backend=backend)
    parts = line.split()
    return CommandLine(verb=parts[0].upper(), args=tuple(parts[1:]))


def encode_record(
    stream: str, packet: ReceivedPacket, backend: str | None = None
) -> bytes:
    """One data record as wire bytes (the client-side encoder)."""
    item = {"stream": stream, **packet_to_json(packet)}
    if backend is not None:
        item["backend"] = backend
    return (json.dumps(item, separators=(",", ":")) + "\n").encode("utf-8")


def encode_response(payload: dict) -> bytes:
    """One response object as a strict-JSON wire line."""
    return (
        json.dumps(payload, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def error_response(message: str, **extra) -> dict:
    return {"ok": False, "error": message, **extra}


# ----------------------------------------------------------------------
# Vector cursors (the router's shard-aware RESULTS --since token)
# ----------------------------------------------------------------------

VECTOR_CURSOR_PREFIX = "v@"


def encode_vector_cursor(entries: dict[str, int]) -> str:
    """``{shard: last_solve_index}`` as the opaque ``--since`` token.

    Shard names are percent-encoded (no safe characters) so commas,
    colons, or whitespace in a name cannot break the framing; entries
    are sorted so the token is deterministic.
    """
    return VECTOR_CURSOR_PREFIX + ",".join(
        f"{urllib.parse.quote(str(shard), safe='')}:{int(index)}"
        for shard, index in sorted(entries.items())
    )


def parse_since(token: str) -> int | dict[str, int]:
    """A ``--since`` argument: plain integer or decoded vector cursor.

    Raises :class:`ProtocolError` for anything else.
    """
    if token.startswith(VECTOR_CURSOR_PREFIX):
        entries: dict[str, int] = {}
        body = token[len(VECTOR_CURSOR_PREFIX):]
        for part in filter(None, body.split(",")):
            shard, _, index = part.rpartition(":")
            try:
                entries[urllib.parse.unquote(shard)] = int(index)
            except ValueError:
                raise ProtocolError(
                    f"malformed vector cursor entry {part!r}"
                ) from None
        return entries
    try:
        return int(token)
    except ValueError:
        raise ProtocolError(
            f"--since takes an integer or a vector cursor, got {token!r}"
        ) from None


def cursor_since(since: int | dict[str, int]) -> int:
    """The effective resume point of a parsed ``--since`` value.

    Solve indices are stream-global and survive migration (the importing
    shard adopts the stream's full history), so the highest index seen
    from *any* shard is the correct high-water mark.
    """
    if isinstance(since, dict):
        return max(since.values(), default=-1)
    return since


def merge_vector_cursor(
    since: int | dict[str, int], shard: str, last_solve_index: int
) -> dict[str, int]:
    """Fold a shard's RESULTS page into the client's vector cursor.

    Prior entries for other shards are carried through; the serving
    shard's entry advances to the page's last solve index (never
    backwards).
    """
    entries = dict(since) if isinstance(since, dict) else {}
    previous = entries.get(shard, -1)
    entries[shard] = max(previous, int(last_solve_index), cursor_since(since))
    return entries


# ----------------------------------------------------------------------
# Result serialization
# ----------------------------------------------------------------------


def estimate_key(key: ArrivalKey) -> str:
    """``ArrivalKey`` as the wire key ``"source:seqno:hop"``."""
    return f"{key.packet_id.source}:{key.packet_id.seqno}:{key.hop}"


def parse_estimate_key(text: str) -> tuple[int, int, int]:
    """Wire key back to ``(source, seqno, hop)``."""
    try:
        source, seqno, hop = (int(part) for part in text.split(":"))
    except ValueError:
        raise ProtocolError(f"malformed estimate key {text!r}") from None
    return source, seqno, hop


def arrival_key_of(text: str) -> ArrivalKey:
    """Wire key back to a real :class:`ArrivalKey`."""
    source, seqno, hop = parse_estimate_key(text)
    return ArrivalKey(PacketId(source, seqno), hop)


def committed_window_to_json(cw) -> dict:
    """One :class:`~repro.stream.engine.CommittedWindow` as a RESULTS row.

    Floats serialize via ``repr`` (shortest round-trip), so the decoded
    estimates compare bit-for-bit equal to the in-process values.
    """
    return {
        "solve_index": cw.solve_index,
        "grid_index": cw.grid_index,
        "start_ms": cw.window.start_ms,
        "end_ms": cw.window.end_ms,
        "num_estimates": cw.num_estimates,
        "estimates": {
            estimate_key(key): value for key, value in cw.estimates.items()
        },
    }
