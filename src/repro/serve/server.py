"""The asyncio reconstruction server: many sockets in, one solver pool.

Architecture (one box per concurrency domain)::

    TCP / unix listeners          asyncio event loop        worker threads
    ─────────────────────         ──────────────────        ──────────────
    conn reader ──parse──▶ per-stream asyncio.Queue ──▶ pump ──▶ session.ingest
    conn reader ──parse──▶        (bounded)           ──▶ pump ──▶ session.ingest
         │                                                     │
         └── commands ◀── strict-JSON replies                  └─▶ SharedSolverPool

The listener/connection half (readers, line parsing, strict-JSON
replies, signal wiring, orderly close) lives in
:class:`~repro.serve.core.LineProtocolServer`; this module is the
serving core — what a parsed line *means*:

* **Readers** (one coroutine per connection) enqueue records onto their
  stream's bounded queue. A full queue blocks the ``put``, which stops
  the reader, which stops reading the socket, which fills the kernel
  buffers, which blocks the client's ``send`` — backpressure is the
  transport's own flow control, so an overloaded server slows producers
  down instead of buffering without bound or dropping accepted records.
* **Pumps** (one per stream) batch records off the queue and run
  ``session.ingest`` in a worker thread (``asyncio.to_thread``) under
  the stream's asyncio lock, so the event loop never blocks on a solve
  and each engine only ever sees one call at a time.
* **Solves** are multiplexed over one shared
  :class:`~repro.serve.pool.SharedSolverPool` with round-robin fairness
  across streams.
* **Migration** (``EXPORT``/``IMPORT``, driven by the router in
  :mod:`repro.serve.router`): EXPORT quiesces a stream behind its queue
  barrier and hands its full durable state document to the caller,
  retiring the local session; IMPORT adopts such a document bit-exactly
  and anchors a fresh WAL with an adoption snapshot.
* **Shutdown** (SIGTERM/SIGINT or ``request_shutdown``) drains in
  order: stop accepting, close readers, flush the queues through the
  pumps, final-flush every session (sealing and committing every open
  window), close the pool, then write the ``domo.run_report/1`` with
  every session's and the pool's metrics merged in.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import threading

from repro.core.pipeline import DomoConfig
from repro.obs.registry import isolated_registry
from repro.obs.report import RunReport, build_run_report, write_run_report
from repro.obs.spans import span
from repro.serve.core import LineProtocolServer
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    CommandLine,
    ProtocolError,
    RecordLine,
    cursor_since,
    error_response,
    parse_since,
)
from repro.serve.durability import DurabilityConfig
from repro.serve.session import (
    BackendMismatchError,
    SessionLimitError,
    SessionManager,
    StreamSession,
)

__all__ = ["ReconstructionServer", "ServerHandle", "run_in_thread"]


class _StreamLane:
    """Event-loop-side plumbing of one stream: queue, pump, engine lock."""

    def __init__(self, session: StreamSession, capacity: int) -> None:
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.lock = asyncio.Lock()
        self.pump: asyncio.Task | None = None
        self.stopping = False
        #: set (on the event loop) the moment an eviction flush or an
        #: EXPORT starts, so records racing the worker-thread drain are
        #: rejected up front instead of being ingested into a drained
        #: (or departed) engine.
        self.draining = False
        #: first ingest failure (e.g. a strict-validation rejection);
        #: once set, the pump discards instead of ingesting and new
        #: records are refused with an error naming this reason.
        self.failed: str | None = None


class ReconstructionServer(LineProtocolServer):
    """Line-protocol reconstruction service over TCP and/or unix sockets.

    Args:
        config: reconstruction configuration shared by every stream.
        socket_path: serve on this unix-domain socket (optional).
        host/port: serve on TCP (optional; ``port=0`` picks a free port,
            readable afterwards from :attr:`endpoints`).
        max_sessions: admission limit on concurrently active streams.
        lateness_ms: watermark allowance passed to every engine;
            ``inf`` (the default) defers all sealing to FLUSH/shutdown,
            which makes served results bit-identical to the batch
            pipeline regardless of how clients shard or interleave.
        chunk: max records per engine ingest call.
        queue_capacity: bound of each stream's ingest queue — the
            backpressure high-watermark.
        metrics_out: write the shutdown RunReport here.
        durability: WAL + snapshot configuration; when set, every
            stream's ingest is write-ahead-logged and :meth:`run`
            recovers all persisted streams before the listeners come
            up (see :mod:`repro.serve.durability`).
        adoption_grace_s: how long an orphaned stream waits for
            adoption before its eviction flush becomes the point of no
            return. A concurrent feeder whose first record lost a
            scheduling race to another connection's disconnect gets
            this window to adopt the stream; afterwards records are
            refused (with an error line) rather than racing the drain.
            Shutdown skips the grace entirely.
        max_line_bytes: per-connection readline limit. A shard behind a
            router raises this to ``MAX_ADMIN_LINE_BYTES`` so IMPORT
            lines (a whole exported stream) fit on the internal socket.
    """

    def __init__(
        self,
        config: DomoConfig | None = None,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        max_sessions: int = 64,
        lateness_ms: float = float("inf"),
        chunk: int = 256,
        queue_capacity: int = 1024,
        metrics_out: str | None = None,
        durability: DurabilityConfig | None = None,
        adoption_grace_s: float = 0.25,
        argv: list[str] | None = None,
        on_ready=None,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        super().__init__(
            socket_path=socket_path,
            host=host,
            port=port,
            max_line_bytes=max_line_bytes,
            on_ready=on_ready,
        )
        if chunk < 1 or queue_capacity < 1:
            raise ValueError("chunk and queue_capacity must be >= 1")
        self.config = config or DomoConfig()
        self.chunk = chunk
        self.queue_capacity = queue_capacity
        self.metrics_out = metrics_out
        self.argv = list(argv or [])
        self.manager = SessionManager(
            self.config,
            lateness_ms=lateness_ms,
            max_sessions=max_sessions,
            durability=durability,
            adoption_grace_s=adoption_grace_s,
        )
        #: per-stream recovery summary, populated by :meth:`run` when
        #: durability is configured (also surfaced under STATS).
        self.recovery: dict = {}
        #: the shutdown RunReport, populated when :meth:`run` returns.
        self.report: RunReport | None = None

        self._lanes: dict[str, _StreamLane] = {}
        # Guards _lanes itself (not lane internals): mutations happen on
        # the event loop, but stats() snapshots the map from arbitrary
        # threads (a router health poller, tests).
        self._lanes_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle (the serving core run by LineProtocolServer.run)
    # ------------------------------------------------------------------

    async def _run_core(self) -> RunReport:
        """Recover, serve until shutdown, drain, build the run report."""
        with isolated_registry() as registry:
            with span("run"):
                with span("recover"):
                    # Before any listener: recovered sessions must
                    # exist before a client can query or feed them.
                    self.recovery = await asyncio.to_thread(
                        self.manager.recover_all
                    )
                with span("serve"):
                    await self._serve_until_shutdown()
                with span("drain"):
                    await self._drain()
            registry.merge(self.manager.merged_registry().snapshot())
            self.report = build_run_report(
                "serve",
                argv=self.argv,
                config=self.config,
                stats=self.stats(),
                registry=registry,
            )
        if self.metrics_out:
            write_run_report(self.metrics_out, self.report)
        return self.report

    async def _drain(self) -> None:
        """The graceful-shutdown sequence (see module docstring)."""
        # Disconnect-triggered evictions need the pumps alive (they wait
        # on queue.join()), so _close_connections settles them before we
        # stop the pumps.
        await self._close_connections()
        with self._lanes_lock:
            lanes = list(self._lanes.values())
        for lane in lanes:
            await lane.queue.put(None)
        pumps = [lane.pump for lane in lanes if lane.pump]
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
        # Everything queued is ingested; seal/solve/commit every open
        # window and shut the solver pool down.
        await asyncio.to_thread(self.manager.close)

    def on_disconnect(self, conn_id: int) -> None:
        for session in self.manager.disconnect(conn_id):
            self._spawn(self._evict_when_drained(session))

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    async def handle_record(
        self, conn_id: int, record: RecordLine, writer
    ) -> None:
        try:
            lane = self._lane(record.stream, backend=record.backend)
        except (SessionLimitError, ValueError) as exc:
            # ValueError covers an unknown backend name and a
            # BackendMismatchError (a live stream asked to switch).
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    str(exc), stream=record.stream, **{"async": True}
                ),
            )
            return
        # ``draining`` covers the gap between the eviction/export
        # decision (on this loop) and ``drained`` flipping at the end of
        # the flush on a worker thread — records landing in that gap
        # must be refused, not accepted and then silently lost to a
        # drained engine.
        if lane.draining or lane.session.drained:
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    f"stream {record.stream!r} is drained",
                    stream=record.stream,
                    **{"async": True},
                ),
            )
            return
        if lane.failed is not None:
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    f"stream {record.stream!r} failed: {lane.failed}",
                    stream=record.stream,
                    **{"async": True},
                ),
            )
            return
        lane.session.add_owner(conn_id)
        # The backpressure point: a full queue parks this reader (and
        # thereby the client's sends) until the pump catches up.
        await lane.queue.put(record.packet)
        self._records_accepted += 1

    def _lane(
        self, stream_id: str, backend: str | None = None
    ) -> _StreamLane:
        lane = self._lanes.get(stream_id)
        if lane is not None:
            if backend is not None and backend != lane.session.backend:
                raise BackendMismatchError(
                    f"stream {stream_id!r} runs backend "
                    f"{lane.session.backend!r}; cannot switch to {backend!r}"
                )
            return lane
        session = self.manager.get_or_create(stream_id, backend=backend)
        lane = _StreamLane(session, self.queue_capacity)
        # Pumps live outside _bg_tasks: _drain settles the short-
        # lived background work (evictions) *before* stopping the
        # pumps, because evictions wait on queues only pumps empty.
        lane.pump = asyncio.get_running_loop().create_task(
            self._pump(lane)
        )
        with self._lanes_lock:
            self._lanes[stream_id] = lane
        return lane

    # ------------------------------------------------------------------
    # Pumps and eviction
    # ------------------------------------------------------------------

    async def _pump(self, lane: _StreamLane) -> None:
        """Batch records off the stream queue into the engine.

        An ingest that raises (e.g. a strict-validation rejection) must
        not kill the pump: the lane is marked failed and the pump keeps
        draining — discarding — so ``queue.join()``, eviction, and the
        shutdown drain still complete instead of wedging behind a full
        queue nobody consumes.
        """
        while not lane.stopping:
            item = await lane.queue.get()
            if item is None:
                lane.queue.task_done()
                return
            if lane.failed is not None:
                self._records_dropped += 1
                lane.queue.task_done()
                continue
            batch = [item]
            while len(batch) < self.chunk:
                try:
                    extra = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    lane.stopping = True
                    lane.queue.task_done()
                    break
                batch.append(extra)
            try:
                async with lane.lock:
                    # Re-check under the lock: an eviction flush may
                    # have drained the engine while this batch waited.
                    if lane.session.drained:
                        self._records_dropped += len(batch)
                    else:
                        await asyncio.to_thread(lane.session.ingest, batch)
            except Exception as exc:  # noqa: BLE001 - any engine error
                lane.failed = f"{type(exc).__name__}: {exc}"
                lane.session.mark_failed(lane.failed)
                self._records_dropped += len(batch)
            finally:
                # task_done only after ingest: queue.join() == "every
                # record queued so far has reached the engine".
                for _ in batch:
                    lane.queue.task_done()

    async def _evict_when_drained(self, session: StreamSession) -> None:
        """Last feeder left: flush once its queued records are ingested."""
        lane = self._lanes.get(session.stream_id)
        if lane is not None and lane.session is not session:
            lane = None  # stream migrated away and back; not our lane
        if lane is not None:
            await lane.queue.join()
        # Adoption grace: another connection may be about to feed this
        # stream (its first record merely lost a scheduling race to the
        # disconnect that orphaned it). Shutdown cuts the grace short.
        if self._shutdown is not None and not self._shutdown.is_set():
            try:
                await asyncio.wait_for(
                    self._shutdown.wait(), self.manager.adoption_grace_s
                )
            except asyncio.TimeoutError:
                pass
        # A new connection may have adopted the stream while we waited,
        # or an EXPORT may have retired it.
        if session.num_owners or session.drained:
            return
        if self.manager.get(session.stream_id) is not session:
            return  # exported (or replaced by an import) while waiting
        if lane is not None:
            # No await between the owner re-check and this flag, so no
            # record can slip in between: everything arriving from here
            # on is refused in handle_record instead of racing the
            # worker-thread flush below (which only sets ``drained`` at
            # the very end).
            lane.draining = True
            async with lane.lock:
                await asyncio.to_thread(self.manager.evict, session)
        else:
            await asyncio.to_thread(self.manager.evict, session)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    async def handle_command(self, cmd: CommandLine) -> dict:
        try:
            if cmd.verb == "HEALTH":
                return {
                    "ok": True,
                    "status": "serving",
                    "sessions": len(self.manager._sessions),
                    "active_sessions": self.manager.active_sessions,
                }
            if cmd.verb == "STATS":
                return {"ok": True, **self.stats()}
            if cmd.verb == "RESULTS":
                return await self._cmd_results(cmd.args)
            if cmd.verb == "FLUSH":
                return await self._cmd_flush(cmd.args)
            if cmd.verb == "EXPORT":
                return await self._cmd_export(cmd.args)
            if cmd.verb == "IMPORT":
                return await self._cmd_import(cmd.args)
            if cmd.verb == "QUIT":
                return {"ok": True, "bye": True}
            return error_response(f"unknown command {cmd.verb!r}")
        except ProtocolError as exc:
            return error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - one bad command must
            # never take the server down; the client gets the reason.
            return error_response(f"{type(exc).__name__}: {exc}")

    async def _cmd_results(self, args: tuple[str, ...]) -> dict:
        if not args:
            raise ProtocolError("RESULTS needs a stream id")
        stream_id = args[0]
        since = -1
        rest = list(args[1:])
        while rest:
            flag = rest.pop(0)
            if flag == "--since" and rest:
                # Accept the router's vector cursor too: a shard serves
                # from the effective high-water mark (see parse_since).
                since = cursor_since(parse_since(rest.pop(0)))
            else:
                raise ProtocolError(f"unknown RESULTS argument {flag!r}")
        session = self.manager.get(stream_id)
        if session is None:
            return error_response(
                f"unknown stream {stream_id!r}", stream=stream_id
            )
        windows = session.results_since(since)
        return {
            "ok": True,
            "stream": stream_id,
            "since": since,
            "count": len(windows),
            "last_solve_index": (
                windows[-1]["solve_index"] if windows else since
            ),
            "drained": session.drained,
            # The resume offset: records safely in the WAL. A client
            # reconnecting after a crash resends its trace from here —
            # nothing lost, nothing double-ingested.
            "records_durable": session.records_durable,
            "windows": windows,
        }

    async def _cmd_flush(self, args: tuple[str, ...]) -> dict:
        if len(args) != 1:
            raise ProtocolError("FLUSH needs exactly one stream id")
        stream_id = args[0]
        lane = self._lanes.get(stream_id)
        session = self.manager.get(stream_id)
        if session is None:
            return error_response(
                f"unknown stream {stream_id!r}", stream=stream_id
            )
        if lane is not None and lane.failed is not None:
            return error_response(
                f"stream {stream_id!r} failed: {lane.failed}",
                stream=stream_id,
            )
        if session.drained:
            # Already flushed by eviction/shutdown; the engine's solver
            # lane is released, so don't flush again — just report.
            return {
                "ok": True,
                "stream": stream_id,
                "new_commits": 0,
                "windows_committed": len(session.results),
                "drained": True,
            }
        if lane is not None:
            # Everything enqueued before this FLUSH reaches the engine
            # first, so the flush covers it.
            await lane.queue.join()
            async with lane.lock:
                # An eviction may have drained the session while this
                # command waited for the lock.
                if session.drained:
                    new_commits = 0
                else:
                    new_commits = await asyncio.to_thread(session.flush)
        else:
            new_commits = await asyncio.to_thread(session.flush)
        return {
            "ok": True,
            "stream": stream_id,
            "new_commits": new_commits,
            "windows_committed": len(session.results),
            "drained": session.drained,
        }

    # ------------------------------------------------------------------
    # Migration (EXPORT / IMPORT — driven by the router)
    # ------------------------------------------------------------------

    async def _cmd_export(self, args: tuple[str, ...]) -> dict:
        """Quiesce a stream and hand its durable state to the caller.

        The command line arrives *after* any records the caller
        pipelined on the same connection, and the queue barrier below
        covers records from every other connection that were accepted
        before the export decision — so the exported document reflects
        every record the server ever acknowledged for this stream. The
        local session is retired: its solver lane, WAL directory, and
        session-map entry are gone when the reply is written, and any
        record that arrives later recreates the stream from scratch
        (the router prevents that by re-homing the stream first).
        """
        if len(args) != 1:
            raise ProtocolError("EXPORT needs exactly one stream id")
        stream_id = args[0]
        if self.manager.get(stream_id) is None:
            return error_response(
                f"unknown stream {stream_id!r}", stream=stream_id
            )
        lane = self._lanes.get(stream_id)
        if lane is not None:
            if lane.failed is not None:
                return error_response(
                    f"stream {stream_id!r} failed: {lane.failed}",
                    stream=stream_id,
                )
            # Refuse new records from here on; then the barrier: every
            # record accepted before this command is ingested before the
            # engine state is exported.
            lane.draining = True
            await lane.queue.join()
            async with lane.lock:
                document = await asyncio.to_thread(
                    self.manager.export_stream, stream_id
                )
            # The stream no longer lives here: stop the pump and drop
            # the lane so a later re-import starts from a clean slate.
            lane.stopping = True
            await lane.queue.put(None)
            with self._lanes_lock:
                if self._lanes.get(stream_id) is lane:
                    del self._lanes[stream_id]
        else:
            document = await asyncio.to_thread(
                self.manager.export_stream, stream_id
            )
        return {"ok": True, "stream": stream_id, "state": document}

    async def _cmd_import(self, args: tuple[str, ...]) -> dict:
        """Adopt a stream exported by another shard, bit-exactly."""
        if len(args) != 2:
            raise ProtocolError("IMPORT needs a stream id and a base64 document")
        stream_id, blob = args
        try:
            document = json.loads(base64.b64decode(blob, validate=True))
        except (ValueError, binascii.Error) as exc:
            raise ProtocolError(
                f"IMPORT document is not base64-encoded JSON: {exc}"
            )
        # A stale lane from a previous tenancy of this stream must not
        # keep feeding the replaced session.
        lane = self._lanes.get(stream_id)
        if lane is not None:
            lane.draining = True
            await lane.queue.join()
            lane.stopping = True
            await lane.queue.put(None)
            with self._lanes_lock:
                if self._lanes.get(stream_id) is lane:
                    del self._lanes[stream_id]
        session = await asyncio.to_thread(
            self.manager.import_stream, stream_id, document
        )
        return {
            "ok": True,
            "stream": stream_id,
            "records_durable": session.records_durable,
            "windows_committed": len(session.results),
            "drained": session.drained,
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        stats = self.manager.stats()
        with self._lanes_lock:
            lanes = list(self._lanes.items())
        for stream_id, lane in lanes:
            entry = stats["streams"].get(stream_id)
            if entry is not None:
                entry["queue_depth"] = lane.queue.qsize()
                entry["queue_capacity"] = self.queue_capacity
                # lane.failed (pump-side) and the session's own failed
                # (drain-side) record the same condition from different
                # threads; surface whichever fired first.
                entry["failed"] = lane.failed or entry.get("failed")
        stats["server"] = {
            **self.connection_stats(),
            "chunk": self.chunk,
            "queue_capacity": self.queue_capacity,
        }
        if self.recovery:
            stats["recovery"] = self.recovery
        return stats


# ----------------------------------------------------------------------
# Thread-hosted server (tests, the in-process demo)
# ----------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread; ``stop()`` drains it."""

    def __init__(self, server: ReconstructionServer) -> None:
        self.server = server
        self._thread = threading.Thread(
            target=self._main, name="domo-serve", daemon=True
        )
        self._error: BaseException | None = None

    def _main(self) -> None:
        try:
            asyncio.run(self.server.run())
        except BaseException as exc:  # noqa: BLE001 - reported at stop()
            self._error = exc

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread.start()
        if not self.server.wait_ready(timeout):
            raise RuntimeError("server did not come up in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self, timeout: float = 60.0) -> RunReport | None:
        """Request the graceful drain and join the server thread."""
        self.server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not drain in time")
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error
        return self.server.report

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(server: ReconstructionServer) -> ServerHandle:
    """Start ``server`` on a daemon thread and wait for its listeners."""
    return ServerHandle(server).start()
