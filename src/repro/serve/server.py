"""The asyncio reconstruction server: many sockets in, one solver pool.

Architecture (one box per concurrency domain)::

    TCP / unix listeners          asyncio event loop        worker threads
    ─────────────────────         ──────────────────        ──────────────
    conn reader ──parse──▶ per-stream asyncio.Queue ──▶ pump ──▶ session.ingest
    conn reader ──parse──▶        (bounded)           ──▶ pump ──▶ session.ingest
         │                                                     │
         └── commands ◀── strict-JSON replies                  └─▶ SharedSolverPool

* **Readers** (one coroutine per connection) split lines, parse records
  and commands (:mod:`repro.serve.protocol`), and enqueue records onto
  their stream's bounded queue. A full queue blocks the ``put``, which
  stops the reader, which stops reading the socket, which fills the
  kernel buffers, which blocks the client's ``send`` — backpressure is
  the transport's own flow control, so an overloaded server slows
  producers down instead of buffering without bound or dropping
  accepted records.
* **Pumps** (one per stream) batch records off the queue and run
  ``session.ingest`` in a worker thread (``asyncio.to_thread``) under
  the stream's asyncio lock, so the event loop never blocks on a solve
  and each engine only ever sees one call at a time.
* **Solves** are multiplexed over one shared
  :class:`~repro.serve.pool.SharedSolverPool` with round-robin fairness
  across streams.
* **Shutdown** (SIGTERM/SIGINT or :meth:`request_shutdown`) drains in
  order: stop accepting, close readers, flush the queues through the
  pumps, final-flush every session (sealing and committing every open
  window), close the pool, then write the ``domo.run_report/1`` with
  every session's and the pool's metrics merged in.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading

from repro.core.pipeline import DomoConfig
from repro.obs.registry import isolated_registry
from repro.obs.report import RunReport, build_run_report, write_run_report
from repro.obs.spans import span
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    CommandLine,
    ProtocolError,
    RecordLine,
    encode_response,
    error_response,
    parse_line,
)
from repro.serve.durability import DurabilityConfig
from repro.serve.session import SessionLimitError, SessionManager, StreamSession

__all__ = ["ReconstructionServer", "ServerHandle", "run_in_thread"]


class _StreamLane:
    """Event-loop-side plumbing of one stream: queue, pump, engine lock."""

    def __init__(self, session: StreamSession, capacity: int) -> None:
        self.session = session
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.lock = asyncio.Lock()
        self.pump: asyncio.Task | None = None
        self.stopping = False
        #: set (on the event loop) the moment an eviction flush starts,
        #: so records racing the worker-thread drain are rejected up
        #: front instead of being ingested into a drained engine.
        self.draining = False
        #: first ingest failure (e.g. a strict-validation rejection);
        #: once set, the pump discards instead of ingesting and new
        #: records are refused with an error naming this reason.
        self.failed: str | None = None


class ReconstructionServer:
    """Line-protocol reconstruction service over TCP and/or unix sockets.

    Args:
        config: reconstruction configuration shared by every stream.
        socket_path: serve on this unix-domain socket (optional).
        host/port: serve on TCP (optional; ``port=0`` picks a free port,
            readable afterwards from :attr:`endpoints`).
        max_sessions: admission limit on concurrently active streams.
        lateness_ms: watermark allowance passed to every engine;
            ``inf`` (the default) defers all sealing to FLUSH/shutdown,
            which makes served results bit-identical to the batch
            pipeline regardless of how clients shard or interleave.
        chunk: max records per engine ingest call.
        queue_capacity: bound of each stream's ingest queue — the
            backpressure high-watermark.
        metrics_out: write the shutdown RunReport here.
        durability: WAL + snapshot configuration; when set, every
            stream's ingest is write-ahead-logged and :meth:`run`
            recovers all persisted streams before the listeners come
            up (see :mod:`repro.serve.durability`).
        adoption_grace_s: how long an orphaned stream waits for
            adoption before its eviction flush becomes the point of no
            return. A concurrent feeder whose first record lost a
            scheduling race to another connection's disconnect gets
            this window to adopt the stream; afterwards records are
            refused (with an error line) rather than racing the drain.
            Shutdown skips the grace entirely.
    """

    def __init__(
        self,
        config: DomoConfig | None = None,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        max_sessions: int = 64,
        lateness_ms: float = float("inf"),
        chunk: int = 256,
        queue_capacity: int = 1024,
        metrics_out: str | None = None,
        durability: DurabilityConfig | None = None,
        adoption_grace_s: float = 0.25,
        argv: list[str] | None = None,
        on_ready=None,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix socket path and/or a TCP port")
        if chunk < 1 or queue_capacity < 1:
            raise ValueError("chunk and queue_capacity must be >= 1")
        self.config = config or DomoConfig()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.chunk = chunk
        self.queue_capacity = queue_capacity
        self.metrics_out = metrics_out
        self.argv = list(argv or [])
        #: called with the server once the listeners are up (CLI banner).
        self.on_ready = on_ready
        self.manager = SessionManager(
            self.config,
            lateness_ms=lateness_ms,
            max_sessions=max_sessions,
            durability=durability,
            adoption_grace_s=adoption_grace_s,
        )
        #: per-stream recovery summary, populated by :meth:`run` when
        #: durability is configured (also surfaced under STATS).
        self.recovery: dict = {}
        #: "unix:<path>" / "tcp:<host>:<port>" actually listening.
        self.endpoints: list[str] = []
        #: the shutdown RunReport, populated when :meth:`run` returns.
        self.report: RunReport | None = None

        self._lanes: dict[str, _StreamLane] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._conn_tasks: set[asyncio.Task] = set()
        self._bg_tasks: set[asyncio.Task] = set()
        self._next_conn_id = 0
        self._records_accepted = 0
        self._records_rejected = 0
        self._records_dropped = 0
        self._connections_total = 0
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> RunReport:
        """Serve until SIGTERM/SIGINT/:meth:`request_shutdown`, drain,
        and return (and optionally write) the run report."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        handled_signals = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._shutdown.set)
                handled_signals.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # not the main thread, or platform without support
        try:
            with isolated_registry() as registry:
                with span("run"):
                    with span("recover"):
                        # Before any listener: recovered sessions must
                        # exist before a client can query or feed them.
                        self.recovery = await asyncio.to_thread(
                            self.manager.recover_all
                        )
                    with span("serve"):
                        await self._start_listeners()
                        self._ready.set()
                        if self.on_ready is not None:
                            self.on_ready(self)
                        await self._shutdown.wait()
                    with span("drain"):
                        await self._drain()
                for session in self.manager._sessions.values():
                    registry.merge(session.registry.snapshot())
                registry.merge(self.manager.pool.registry.snapshot())
                self.report = build_run_report(
                    "serve",
                    argv=self.argv,
                    config=self.config,
                    stats=self.stats(),
                    registry=registry,
                )
        finally:
            self._ready.set()  # never leave run_in_thread waiting
            for sig in handled_signals:
                self._loop.remove_signal_handler(sig)
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        if self.metrics_out:
            write_run_report(self.metrics_out, self.report)
        return self.report

    def request_shutdown(self) -> None:
        """Trigger the graceful drain (thread-safe, idempotent)."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the listeners are up (for out-of-thread callers)."""
        return self._ready.wait(timeout)

    async def _start_listeners(self) -> None:
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.socket_path,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(server)
            self.endpoints.append(f"unix:{self.socket_path}")
        if self.port is not None:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self.port,
                limit=MAX_LINE_BYTES,
            )
            self._servers.append(server)
            bound = server.sockets[0].getsockname()
            self.port = bound[1]
            self.endpoints.append(f"tcp:{self.host}:{bound[1]}")

    async def _drain(self) -> None:
        """The graceful-shutdown sequence (see module docstring)."""
        for server in self._servers:
            server.close()
            await server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        # Disconnect-triggered evictions need the pumps alive (they wait
        # on queue.join()), so settle them before stopping the pumps.
        if self._bg_tasks:
            await asyncio.gather(*self._bg_tasks, return_exceptions=True)
        for lane in self._lanes.values():
            await lane.queue.put(None)
        pumps = [lane.pump for lane in self._lanes.values() if lane.pump]
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
        # Everything queued is ingested; seal/solve/commit every open
        # window and shut the solver pool down.
        await asyncio.to_thread(self.manager.close)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self._connections_total += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._serve_connection(conn_id, reader, writer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass
            for session in self.manager.disconnect(conn_id):
                self._spawn(self._evict_when_drained(session))

    async def _send(self, writer, payload: dict) -> None:
        """Encode and write one response line, surviving bad payloads.

        Strict JSON (``allow_nan=False``) refuses non-finite floats; if
        a response ever contains one, the client must get an error line
        naming the problem, not a silently closed socket.
        """
        try:
            data = encode_response(payload)
        except ValueError as exc:
            data = encode_response(
                error_response(
                    f"response not serializable as strict JSON: {exc}"
                )
            )
        writer.write(data)
        await writer.drain()

    async def _serve_connection(self, conn_id: int, reader, writer) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # Line longer than MAX_LINE_BYTES: unrecoverable framing.
                await self._send(
                    writer, error_response("line too long", fatal=True)
                )
                return
            if not line:
                return  # EOF
            try:
                with span("parse"):
                    parsed = parse_line(
                        line.decode("utf-8", errors="replace"), conn_id
                    )
            except ProtocolError as exc:
                self._records_rejected += 1
                await self._send(
                    writer, error_response(str(exc), **{"async": True})
                )
                continue
            if parsed is None:
                continue
            if isinstance(parsed, RecordLine):
                await self._accept_record(conn_id, parsed, writer)
                continue
            response = await self._handle_command(parsed)
            await self._send(writer, response)
            if parsed.verb == "QUIT":
                return

    async def _accept_record(
        self, conn_id: int, record: RecordLine, writer
    ) -> None:
        try:
            lane = self._lane(record.stream)
        except SessionLimitError as exc:
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    str(exc), stream=record.stream, **{"async": True}
                ),
            )
            return
        # ``draining`` covers the gap between the eviction decision (on
        # this loop) and ``drained`` flipping at the end of the flush on
        # a worker thread — records landing in that gap must be refused,
        # not accepted and then silently lost to a drained engine.
        if lane.draining or lane.session.drained:
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    f"stream {record.stream!r} is drained",
                    stream=record.stream,
                    **{"async": True},
                ),
            )
            return
        if lane.failed is not None:
            self._records_rejected += 1
            await self._send(
                writer,
                error_response(
                    f"stream {record.stream!r} failed: {lane.failed}",
                    stream=record.stream,
                    **{"async": True},
                ),
            )
            return
        lane.session.add_owner(conn_id)
        # The backpressure point: a full queue parks this reader (and
        # thereby the client's sends) until the pump catches up.
        await lane.queue.put(record.packet)
        self._records_accepted += 1

    def _lane(self, stream_id: str) -> _StreamLane:
        lane = self._lanes.get(stream_id)
        if lane is None:
            session = self.manager.get_or_create(stream_id)
            lane = _StreamLane(session, self.queue_capacity)
            # Pumps live outside _bg_tasks: _drain settles the short-
            # lived background work (evictions) *before* stopping the
            # pumps, because evictions wait on queues only pumps empty.
            lane.pump = asyncio.get_running_loop().create_task(
                self._pump(lane)
            )
            self._lanes[stream_id] = lane
        return lane

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._bg_tasks.add(task)
        task.add_done_callback(self._bg_tasks.discard)
        return task

    # ------------------------------------------------------------------
    # Pumps and eviction
    # ------------------------------------------------------------------

    async def _pump(self, lane: _StreamLane) -> None:
        """Batch records off the stream queue into the engine.

        An ingest that raises (e.g. a strict-validation rejection) must
        not kill the pump: the lane is marked failed and the pump keeps
        draining — discarding — so ``queue.join()``, eviction, and the
        shutdown drain still complete instead of wedging behind a full
        queue nobody consumes.
        """
        while not lane.stopping:
            item = await lane.queue.get()
            if item is None:
                lane.queue.task_done()
                return
            if lane.failed is not None:
                self._records_dropped += 1
                lane.queue.task_done()
                continue
            batch = [item]
            while len(batch) < self.chunk:
                try:
                    extra = lane.queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    lane.stopping = True
                    lane.queue.task_done()
                    break
                batch.append(extra)
            try:
                async with lane.lock:
                    # Re-check under the lock: an eviction flush may
                    # have drained the engine while this batch waited.
                    if lane.session.drained:
                        self._records_dropped += len(batch)
                    else:
                        await asyncio.to_thread(lane.session.ingest, batch)
            except Exception as exc:  # noqa: BLE001 - any engine error
                lane.failed = f"{type(exc).__name__}: {exc}"
                lane.session.mark_failed(lane.failed)
                self._records_dropped += len(batch)
            finally:
                # task_done only after ingest: queue.join() == "every
                # record queued so far has reached the engine".
                for _ in batch:
                    lane.queue.task_done()

    async def _evict_when_drained(self, session: StreamSession) -> None:
        """Last feeder left: flush once its queued records are ingested."""
        lane = self._lanes.get(session.stream_id)
        if lane is not None:
            await lane.queue.join()
        # Adoption grace: another connection may be about to feed this
        # stream (its first record merely lost a scheduling race to the
        # disconnect that orphaned it). Shutdown cuts the grace short.
        if self._shutdown is not None and not self._shutdown.is_set():
            try:
                await asyncio.wait_for(
                    self._shutdown.wait(), self.manager.adoption_grace_s
                )
            except asyncio.TimeoutError:
                pass
        # A new connection may have adopted the stream while we waited.
        if session.num_owners or session.drained:
            return
        if lane is not None:
            # No await between the owner re-check and this flag, so no
            # record can slip in between: everything arriving from here
            # on is refused in _accept_record instead of racing the
            # worker-thread flush below (which only sets ``drained`` at
            # the very end).
            lane.draining = True
            async with lane.lock:
                await asyncio.to_thread(self.manager.evict, session)
        else:
            await asyncio.to_thread(self.manager.evict, session)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    async def _handle_command(self, cmd: CommandLine) -> dict:
        try:
            if cmd.verb == "HEALTH":
                return {
                    "ok": True,
                    "status": "serving",
                    "sessions": len(self.manager._sessions),
                    "active_sessions": self.manager.active_sessions,
                }
            if cmd.verb == "STATS":
                return {"ok": True, **self.stats()}
            if cmd.verb == "RESULTS":
                return await self._cmd_results(cmd.args)
            if cmd.verb == "FLUSH":
                return await self._cmd_flush(cmd.args)
            if cmd.verb == "QUIT":
                return {"ok": True, "bye": True}
            return error_response(f"unknown command {cmd.verb!r}")
        except ProtocolError as exc:
            return error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - one bad command must
            # never take the server down; the client gets the reason.
            return error_response(f"{type(exc).__name__}: {exc}")

    async def _cmd_results(self, args: tuple[str, ...]) -> dict:
        if not args:
            raise ProtocolError("RESULTS needs a stream id")
        stream_id = args[0]
        since = -1
        rest = list(args[1:])
        while rest:
            flag = rest.pop(0)
            if flag == "--since" and rest:
                try:
                    since = int(rest.pop(0))
                except ValueError:
                    raise ProtocolError("--since takes an integer")
            else:
                raise ProtocolError(f"unknown RESULTS argument {flag!r}")
        session = self.manager.get(stream_id)
        if session is None:
            return error_response(
                f"unknown stream {stream_id!r}", stream=stream_id
            )
        windows = session.results_since(since)
        return {
            "ok": True,
            "stream": stream_id,
            "since": since,
            "count": len(windows),
            "last_solve_index": (
                windows[-1]["solve_index"] if windows else since
            ),
            "drained": session.drained,
            # The resume offset: records safely in the WAL. A client
            # reconnecting after a crash resends its trace from here —
            # nothing lost, nothing double-ingested.
            "records_durable": session.records_durable,
            "windows": windows,
        }

    async def _cmd_flush(self, args: tuple[str, ...]) -> dict:
        if len(args) != 1:
            raise ProtocolError("FLUSH needs exactly one stream id")
        stream_id = args[0]
        lane = self._lanes.get(stream_id)
        session = self.manager.get(stream_id)
        if session is None:
            return error_response(
                f"unknown stream {stream_id!r}", stream=stream_id
            )
        if lane is not None and lane.failed is not None:
            return error_response(
                f"stream {stream_id!r} failed: {lane.failed}",
                stream=stream_id,
            )
        if session.drained:
            # Already flushed by eviction/shutdown; the engine's solver
            # lane is released, so don't flush again — just report.
            return {
                "ok": True,
                "stream": stream_id,
                "new_commits": 0,
                "windows_committed": len(session.results),
                "drained": True,
            }
        if lane is not None:
            # Everything enqueued before this FLUSH reaches the engine
            # first, so the flush covers it.
            await lane.queue.join()
            async with lane.lock:
                # An eviction may have drained the session while this
                # command waited for the lock.
                if session.drained:
                    new_commits = 0
                else:
                    new_commits = await asyncio.to_thread(session.flush)
        else:
            new_commits = await asyncio.to_thread(session.flush)
        return {
            "ok": True,
            "stream": stream_id,
            "new_commits": new_commits,
            "windows_committed": len(session.results),
            "drained": session.drained,
        }

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        stats = self.manager.stats()
        for stream_id, lane in self._lanes.items():
            entry = stats["streams"].get(stream_id)
            if entry is not None:
                entry["queue_depth"] = lane.queue.qsize()
                entry["queue_capacity"] = self.queue_capacity
                # lane.failed (pump-side) and the session's own failed
                # (drain-side) record the same condition from different
                # threads; surface whichever fired first.
                entry["failed"] = lane.failed or entry.get("failed")
        stats["server"] = {
            "endpoints": list(self.endpoints),
            "connections_total": self._connections_total,
            "connections_open": len(self._conn_tasks),
            "records_accepted": self._records_accepted,
            "records_rejected": self._records_rejected,
            "records_dropped": self._records_dropped,
            "chunk": self.chunk,
            "queue_capacity": self.queue_capacity,
        }
        if self.recovery:
            stats["recovery"] = self.recovery
        return stats


# ----------------------------------------------------------------------
# Thread-hosted server (tests, the in-process demo)
# ----------------------------------------------------------------------


class ServerHandle:
    """A server running on a background thread; ``stop()`` drains it."""

    def __init__(self, server: ReconstructionServer) -> None:
        self.server = server
        self._thread = threading.Thread(
            target=self._main, name="domo-serve", daemon=True
        )
        self._error: BaseException | None = None

    def _main(self) -> None:
        try:
            asyncio.run(self.server.run())
        except BaseException as exc:  # noqa: BLE001 - reported at stop()
            self._error = exc

    def start(self, timeout: float = 10.0) -> "ServerHandle":
        self._thread.start()
        if not self.server.wait_ready(timeout):
            raise RuntimeError("server did not come up in time")
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def stop(self, timeout: float = 60.0) -> RunReport | None:
        """Request the graceful drain and join the server thread."""
        self.server.request_shutdown()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server did not drain in time")
        if self._error is not None:
            raise RuntimeError("server crashed") from self._error
        return self.server.report

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(server: ReconstructionServer) -> ServerHandle:
    """Start ``server`` on a daemon thread and wait for its listeners."""
    return ServerHandle(server).start()
