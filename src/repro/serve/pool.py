"""One solver pool, many streams: fair multiplexing over a WindowExecutor.

A :class:`~repro.runtime.executor.WindowExecutor` is thread-safe but
deliberately unrouted — any drainer may receive any producer's result
(see its threading-model docstring). The serve layer needs the opposite:
every connected stream runs its own
:class:`~repro.stream.engine.StreamingReconstructor`, each engine indexes
its windows from zero, and each engine's ``drain`` must see exactly its
own windows back. :class:`SharedSolverPool` provides that routing layer:

* each session's submissions get a **globally unique ticket** before
  they reach the executor, so two streams' "window 0" never collide;
* tickets are dispatched **round-robin, one per session per rotation**,
  so a firehose stream cannot starve a trickle stream of solver slots;
* the number of tickets resident in the executor is capped
  (``max(2, 2 * workers)``), keeping the process pool busy while the
  remaining backlog waits in per-session queues where fairness is
  enforced — inside the executor, scheduling is FIFO and unfair;
* the pool is the executor's **only drainer**; whichever session thread
  happens to drain routes every returned result to its owning session's
  mailbox (restoring the engine-local window index), so
  ``SessionExecutor.drain`` has per-stream semantics again.

Solver-side metrics (QP histograms, ``executor.*`` counters, the
``solve`` span) are scoped to the pool's own registry rather than the
draining session's — a thread draining another stream's windows must not
book those solves against its stream. The server merges the pool
registry into the run report at shutdown.

Everything here is plain threads + locks (no asyncio): the server calls
into the pool from ``asyncio.to_thread`` workers, and tests can drive it
directly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace

from repro.obs.registry import MetricsRegistry, registry_scope
from repro.runtime.executor import WindowExecutor, WindowResult, WindowSolveSpec

__all__ = ["SessionExecutor", "SharedSolverPool"]

#: back-off while another thread's drain holds our completed results.
_POLL_SLEEP_S = 0.002


class _SessionLane:
    """One session's view of the pool: queued work and routed results."""

    def __init__(self, spec: WindowSolveSpec | None = None) -> None:
        #: built systems waiting for an executor slot: (local_index, ws).
        self.queued: deque = deque()
        #: tickets currently inside the executor.
        self.in_flight: set[int] = set()
        #: results routed back, local window indices restored.
        self.mailbox: list[WindowResult] = []
        #: per-stream solve-spec override (None = the pool's spec); how
        #: one shared pool runs different estimator backends per stream.
        self.spec = spec

    @property
    def outstanding(self) -> int:
        return len(self.queued) + len(self.in_flight)


class SharedSolverPool:
    """Fair, routed fan-in of many streaming engines onto one executor.

    Args:
        spec: solver spec shared by every stream (the serve layer runs
            one reconstruction configuration per server).
        parallel: run the underlying executor's process pool.
        max_workers: worker processes for the pool.
        registry: where solver-side metrics land; a private registry by
            default, merged into the server report at shutdown.
    """

    def __init__(
        self,
        spec: WindowSolveSpec,
        parallel: bool = False,
        max_workers: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._executor = WindowExecutor(
            spec, parallel=parallel, max_workers=max_workers
        )
        self._lock = threading.Lock()
        self._lanes: dict[str, _SessionLane] = {}
        #: round-robin order; rotated one step per dispatched ticket.
        self._rotation: deque[str] = deque()
        self._next_ticket = 0
        #: ticket -> (session_id, local_index).
        self._routes: dict[int, tuple[str, int]] = {}
        self._max_resident = max(2, 2 * self._executor.workers)
        self._closed = False

    # -- executor facts (proxied into engine stats) --------------------

    @property
    def mode(self) -> str:
        return self._executor.mode

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def fallback_reason(self) -> str | None:
        return self._executor.fallback_reason

    # -- session lifecycle ---------------------------------------------

    def session(
        self, session_id: str, spec: WindowSolveSpec | None = None
    ) -> "SessionExecutor":
        """Register ``session_id`` and return its executor facade.

        ``spec`` overrides the pool-wide solve spec for this session's
        windows only (per-stream estimator backends); ``None`` keeps
        the pool default.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("solver pool is closed")
            if session_id in self._lanes:
                raise ValueError(f"session {session_id!r} already registered")
            self._lanes[session_id] = _SessionLane(spec)
            self._rotation.append(session_id)
        return SessionExecutor(self, session_id)

    def release(self, session_id: str) -> None:
        """Drop a finished session's lane (must be fully drained)."""
        with self._lock:
            lane = self._lanes.get(session_id)
            if lane is None:
                return
            if lane.outstanding or lane.mailbox:
                raise RuntimeError(
                    f"session {session_id!r} released with "
                    f"{lane.outstanding} outstanding window(s)"
                )
            del self._lanes[session_id]
            self._rotation.remove(session_id)

    # -- submit / dispatch / drain -------------------------------------

    def submit(self, session_id: str, local_index: int, ws) -> None:
        """Queue one built window system for ``session_id``."""
        with self._lock:
            lane = self._lanes.get(session_id)
            if lane is None:
                raise RuntimeError(
                    f"session {session_id!r} is not registered with the "
                    f"pool (never created, or already released)"
                )
            lane.queued.append((local_index, ws))
        self._dispatch()

    def _take_dispatchable(self) -> list[tuple[int, object, object]]:
        """Pick the next round-robin batch of tickets (under the lock)."""
        batch: list[tuple[int, object, object]] = []
        with self._lock:
            resident = len(self._routes)
            # One full rotation with no dispatchable lane ends the scan.
            idle = 0
            while resident + len(batch) < self._max_resident and (
                idle < len(self._rotation)
            ):
                session_id = self._rotation[0]
                self._rotation.rotate(-1)
                lane = self._lanes[session_id]
                if not lane.queued:
                    idle += 1
                    continue
                idle = 0
                local_index, ws = lane.queued.popleft()
                ticket = self._next_ticket
                self._next_ticket += 1
                self._routes[ticket] = (session_id, local_index)
                lane.in_flight.add(ticket)
                batch.append((ticket, ws, lane.spec))
        return batch

    def _dispatch(self) -> None:
        """Move queued work into the executor up to the residency cap.

        Executor calls happen outside the pool lock — in serial mode
        ``submit`` solves inline, and that wall time must not block
        other sessions' bookkeeping.
        """
        while True:
            batch = self._take_dispatchable()
            if not batch:
                return
            with registry_scope(self.registry):
                for ticket, ws, spec in batch:
                    self._executor.submit(ticket, ws, spec)

    def _route(self, results: list[WindowResult]) -> None:
        with self._lock:
            for result in results:
                session_id, local_index = self._routes.pop(
                    result.window_index
                )
                lane = self._lanes[session_id]
                lane.in_flight.discard(result.window_index)
                lane.mailbox.append(
                    replace(result, window_index=local_index)
                )

    def poll(self, session_id: str, block: bool = False) -> list[WindowResult]:
        """Results for ``session_id`` (its local indices restored).

        ``block=True`` returns only once every window the session has
        submitted so far is back — the per-stream equivalent of
        ``WindowExecutor.drain(block=True)``. Whatever this thread
        drains for *other* sessions is routed to their mailboxes.
        """
        collected: list[WindowResult] = []
        while True:
            self._dispatch()
            with registry_scope(self.registry):
                drained = self._executor.drain(block=False)
            if drained:
                self._route(drained)
            with self._lock:
                lane = self._lanes[session_id]
                out, lane.mailbox = lane.mailbox, []
                done = not block or lane.outstanding == 0
            collected.extend(out)
            if done:
                return collected
            # Nothing for us yet: either our windows are still solving
            # (wait on the executor) or a concurrent drainer claimed
            # them and will route momentarily (back off briefly).
            with self._lock:
                waiting = bool(self._routes)
            if waiting:
                with registry_scope(self.registry):
                    drained = self._executor.drain(block=True)
                if drained:
                    self._route(drained)
                    continue
                # Tickets are resident but the executor had nothing
                # pending: a concurrent drainer claimed our results and
                # is still routing them. Back off instead of spinning.
            time.sleep(_POLL_SLEEP_S)

    def in_flight(self, session_id: str) -> int:
        with self._lock:
            lane = self._lanes.get(session_id)
            return lane.outstanding + len(lane.mailbox) if lane else 0

    def stats(self) -> dict:
        """Pool-level state for the STATS command."""
        with self._lock:
            return {
                "mode": self.mode,
                "workers": self.workers,
                "fallback_reason": self.fallback_reason,
                "sessions": len(self._lanes),
                "tickets_issued": self._next_ticket,
                "resident": len(self._routes),
                "queued": sum(
                    len(lane.queued) for lane in self._lanes.values()
                ),
            }

    def close(self) -> None:
        """Drain everything still resident, then shut the executor down."""
        while True:
            self._dispatch()
            with self._lock:
                busy = bool(self._routes) or any(
                    lane.queued for lane in self._lanes.values()
                )
                if not busy:
                    self._closed = True
            if not busy:
                break
            with registry_scope(self.registry):
                drained = self._executor.drain(block=True)
            if drained:
                self._route(drained)
            else:
                # A concurrent poller holds our results; don't spin.
                time.sleep(_POLL_SLEEP_S)
        with registry_scope(self.registry):
            self._executor.close()


class SessionExecutor:
    """One session's ``WindowExecutor``-shaped view of the shared pool.

    Injected into :class:`~repro.stream.engine.StreamingReconstructor`
    as its ``executor``: the engine submits engine-local window indices
    and drains exactly its own results back, while the actual solving is
    multiplexed (and kept fair) by the pool. ``close`` is a no-op — the
    pool owns the executor's lifetime; the session releases its lane via
    :meth:`SharedSolverPool.release` once drained.
    """

    def __init__(self, pool: SharedSolverPool, session_id: str) -> None:
        self._pool = pool
        self.session_id = session_id

    @property
    def mode(self) -> str:
        return self._pool.mode

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def fallback_reason(self) -> str | None:
        return self._pool.fallback_reason

    @property
    def in_flight(self) -> int:
        return self._pool.in_flight(self.session_id)

    def submit(self, window_index: int, ws) -> None:
        self._pool.submit(self.session_id, window_index, ws)

    def drain(self, block: bool = False) -> list[WindowResult]:
        return self._pool.poll(self.session_id, block=block)

    def close(self) -> None:  # pragma: no cover - engine never owns us
        pass
