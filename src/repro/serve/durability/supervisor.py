"""Supervised restart for the reconstruction server.

``domo serve --supervise`` runs the actual server in a *child* process
and keeps this parent as a tiny supervisor: restart the child when it
crashes (nonzero exit / signal death), with exponential backoff, and
give up with a named :class:`CrashLoopError` when the child keeps dying
faster than ``healthy_after_s`` — the circuit breaker that turns "the
WAL is poisoned and recovery raises on every boot" into one clear error
carrying the child's stderr tail instead of an infinite kill/restart
loop.

State machine::

            spawn
              │
              ▼
    ┌──── running ────────────────────────────┐
    │         │                               │
    │   exit 0 / stop requested         crash (uptime >= healthy)
    │         │                               │ restarts := 0
    │         ▼                               ▼
    │      stopped                    crash (uptime < healthy)
    │                                         │ restarts += 1
    │                                backoff = base * 2^restarts
    │                 restarts <= max ────────┤
    └───── sleep(backoff), spawn ◀────────────┘
                                              │ restarts > max
                                              ▼
                                       CrashLoopError

Address stability across restarts is the *caller's* job: the CLI
resolves ``--port 0`` to a concrete free port before the first spawn so
every incarnation rebinds the same address, and a unix socket path is
naturally stable (the child unlinks and rebinds it).

The supervisor also increments ``DOMO_CRASH_INCARNATION`` for every
spawn, so seeded crash points (:mod:`repro.serve.durability
.crashpoints`) fire in the incarnation they were aimed at and do not
re-kill every restarted child — a seeded test kill must not look like a
crash loop.
"""

from __future__ import annotations

import collections
import os
import signal
import subprocess
import sys
import threading
import time

__all__ = ["CrashLoopError", "Supervisor"]


class CrashLoopError(RuntimeError):
    """The supervised server died too many times in a row, too fast.

    The message names the exit status and carries the child's last
    stderr lines — for a poisoned WAL that is the
    ``WalCorruptionError`` recovery raised on every boot.
    """


class Supervisor:
    """Run a child command until it exits cleanly; restart on crash.

    Args:
        argv: full child command line (e.g. ``[sys.executable, "-m",
            "repro.cli", "serve", ...]`` without ``--supervise``).
        max_restarts: fast failures tolerated in a row before the
            circuit breaker trips.
        backoff_s: base restart delay; doubles per consecutive fast
            failure, capped at ``backoff_cap_s``.
        healthy_after_s: a child surviving this long counts as healthy
            and resets the breaker.
        stderr_tail_lines: how many child stderr lines to retain for
            the :class:`CrashLoopError` message (stderr is passed
            through to this process's stderr either way).
    """

    def __init__(
        self,
        argv: list[str],
        *,
        max_restarts: int = 5,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 10.0,
        healthy_after_s: float = 5.0,
        stderr_tail_lines: int = 50,
    ) -> None:
        if not argv:
            raise ValueError("supervisor needs a child command")
        if max_restarts < 0 or backoff_s < 0 or healthy_after_s < 0:
            raise ValueError(
                "max_restarts, backoff_s and healthy_after_s must be >= 0"
            )
        self.argv = list(argv)
        self.max_restarts = max_restarts
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.healthy_after_s = healthy_after_s
        self.restarts_total = 0
        self._tail: collections.deque[str] = collections.deque(
            maxlen=stderr_tail_lines
        )
        self._child: subprocess.Popen | None = None
        self._stop_requested = False

    # -- signal plumbing -------------------------------------------------

    def _forward(self, signum, frame) -> None:
        """Pass SIGTERM/SIGINT to the child; remember we are stopping
        so its exit is treated as shutdown, not a crash."""
        self.stop(signum)

    def stop(self, sig: int = signal.SIGTERM) -> None:
        """Programmatic stop (thread-safe): signal the child and treat
        its exit as shutdown, not a crash. The router uses this — its
        shard supervisors run on worker threads, where installing
        signal handlers is impossible."""
        self._stop_requested = True
        child = self._child
        if child is not None and child.poll() is None:
            try:
                child.send_signal(sig)
            except (ProcessLookupError, OSError):
                pass

    @property
    def child_pid(self) -> int | None:
        """PID of the live child, or ``None`` between incarnations.

        Exposed for fault-injection tests (SIGKILL a shard mid-stream)
        and operator tooling; the pid may be stale by the time it is
        used — that is inherent to pids.
        """
        child = self._child
        if child is None or child.poll() is not None:
            return None
        return child.pid

    def _tee_stderr(self, child: subprocess.Popen) -> threading.Thread:
        def pump() -> None:
            assert child.stderr is not None
            for raw in child.stderr:
                try:
                    sys.stderr.buffer.write(raw)
                    sys.stderr.buffer.flush()
                except (OSError, ValueError):
                    pass
                self._tail.append(
                    raw.decode("utf-8", errors="replace").rstrip("\n")
                )

        thread = threading.Thread(
            target=pump, name="domo-supervise-stderr", daemon=True
        )
        thread.start()
        return thread

    # -- main loop -------------------------------------------------------

    def run(self) -> int:
        """Supervise until clean exit; returns the final exit code.

        Raises :class:`CrashLoopError` when the breaker trips.
        """
        incarnation = 0
        fast_failures = 0
        installed = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                installed[sig] = signal.signal(sig, self._forward)
            except ValueError:
                pass  # not the main thread (tests drive run() directly)
        try:
            while True:
                env = dict(os.environ)
                env["DOMO_CRASH_INCARNATION"] = str(incarnation)
                started = time.monotonic()
                child = subprocess.Popen(
                    self.argv, stderr=subprocess.PIPE, env=env
                )
                self._child = child
                tee = self._tee_stderr(child)
                # A stop signal may have arrived between the previous
                # poll and the spawn; deliver it now rather than never.
                if self._stop_requested:
                    child.terminate()
                returncode = child.wait()
                tee.join(timeout=5.0)
                uptime = time.monotonic() - started
                incarnation += 1
                if returncode == 0 or self._stop_requested:
                    return returncode
                if uptime >= self.healthy_after_s:
                    fast_failures = 0
                fast_failures += 1
                if fast_failures > self.max_restarts:
                    tail = "\n".join(self._tail)
                    raise CrashLoopError(
                        f"server crashed {fast_failures} times in a row "
                        f"(last exit status {returncode}, uptime "
                        f"{uptime:.2f}s < healthy_after {self.healthy_after_s}s); "
                        f"giving up instead of crash-looping.\n"
                        f"--- child stderr tail ---\n{tail}"
                    )
                self.restarts_total += 1
                delay = min(
                    self.backoff_cap_s,
                    self.backoff_s * (2 ** (fast_failures - 1)),
                )
                print(
                    f"domo serve: child died (status {returncode}, uptime "
                    f"{uptime:.2f}s); restart {fast_failures}/"
                    f"{self.max_restarts} in {delay:.2f}s",
                    file=sys.stderr,
                    flush=True,
                )
                time.sleep(delay)
        finally:
            self._child = None
            for sig, previous in installed.items():
                signal.signal(sig, previous)
