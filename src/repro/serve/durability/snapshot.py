"""Atomic snapshot store for per-stream recovery state.

A snapshot is one strict-JSON document capturing everything a
:class:`~repro.stream.engine.StreamingReconstructor` session needs to
resume bit-exactly: the engine's exported state (open-window slots,
packet table, watermark, telemetry), the session's committed results,
and the WAL cursor the state is current *through*. Recovery loads the
newest valid snapshot and replays only the WAL suffix past its cursor.

Files are ``snap-<wal_cursor:012d>.json`` in the same per-stream
directory as the WAL segments. Writes are atomic — temp file in the
same directory, fsync, ``os.replace``, directory fsync — so a SIGKILL
at any instant leaves either the previous snapshot set intact or the
new file fully present; never a half-written ``snap-*.json``. Loading
skips unparseable or wrong-schema files (a leftover temp file or a
snapshot from a future format is ignored, not fatal) because the WAL,
not the snapshot, is the source of truth: the worst case of a lost
snapshot is a longer replay.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.serve.durability import crashpoints
from repro.serve.durability.wal import _fsync_dir

__all__ = [
    "SNAPSHOT_SCHEMA",
    "load_latest_snapshot",
    "prune_snapshots",
    "snapshot_name",
    "write_snapshot",
]

SNAPSHOT_SCHEMA = "domo.snapshot/1"

_PREFIX = "snap-"
_SUFFIX = ".json"


def snapshot_name(wal_cursor: int) -> str:
    return f"{_PREFIX}{wal_cursor:012d}{_SUFFIX}"


def snapshot_files(stream_dir: str | Path) -> list[tuple[int, Path]]:
    """``(wal_cursor, path)`` of every snapshot file, oldest first.

    Files whose name does not parse are ignored (e.g. an editor backup);
    they are not evidence of corruption the way a bad WAL segment is.
    """
    stream_dir = Path(stream_dir)
    found = []
    if not stream_dir.is_dir():
        return found
    for entry in stream_dir.iterdir():
        name = entry.name
        if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
            continue
        try:
            cursor = int(name[len(_PREFIX):-len(_SUFFIX)])
        except ValueError:
            continue
        found.append((cursor, entry))
    found.sort()
    return found


def write_snapshot(stream_dir: str | Path, document: dict) -> Path:
    """Atomically persist ``document`` as the snapshot at its WAL cursor.

    ``document`` must carry integer ``wal_cursor`` and the current
    ``schema`` tag (enforced here so every snapshot on disk is
    self-describing). The temp-write / rename split is also the
    harness's mid-snapshot kill point: dying between the two must leave
    recovery reading the *previous* snapshot generation.
    """
    stream_dir = Path(stream_dir)
    stream_dir.mkdir(parents=True, exist_ok=True)
    if document.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"snapshot document schema {document.get('schema')!r} != "
            f"{SNAPSHOT_SCHEMA!r}"
        )
    cursor = document["wal_cursor"]
    if not isinstance(cursor, int) or cursor < 0:
        raise ValueError(f"snapshot wal_cursor {cursor!r} must be an int >= 0")
    final = stream_dir / snapshot_name(cursor)
    temp = stream_dir / f".{snapshot_name(cursor)}.tmp"
    payload = json.dumps(
        document, allow_nan=False, separators=(",", ":"), sort_keys=True
    )
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    crashpoints.maybe_crash("snapshot")
    os.replace(temp, final)
    _fsync_dir(stream_dir)
    return final


def load_latest_snapshot(stream_dir: str | Path) -> dict | None:
    """Newest snapshot document that parses and matches the schema.

    Invalid candidates are skipped, newest-first, rather than raised:
    a torn temp file never reaches a ``snap-*`` name (rename is atomic),
    so an unreadable snapshot means external damage — and the correct
    response is to fall back to an older generation and replay more WAL.
    Returns ``None`` when no usable snapshot exists.
    """
    for cursor, path in reversed(snapshot_files(stream_dir)):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if (
            isinstance(document, dict)
            and document.get("schema") == SNAPSHOT_SCHEMA
            and document.get("wal_cursor") == cursor
        ):
            return document
    return None


def prune_snapshots(stream_dir: str | Path, keep: int = 2) -> int:
    """Delete all but the newest ``keep`` snapshots; returns how many.

    Two generations are kept by default so a crash *during* pruning (or
    an externally damaged newest file) still leaves a fallback.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    files = snapshot_files(stream_dir)
    removed = 0
    for _, path in files[:-keep] if len(files) > keep else []:
        path.unlink()
        removed += 1
    return removed
