"""Per-stream durability handle and the WAL record vocabulary.

:class:`StreamDurability` is what a live session holds: the stream's
:class:`~repro.serve.durability.wal.WalWriter`, the snapshot cadence
bookkeeping, and the durable-record counter clients use to resume
(``RESULTS`` reports ``records_durable``; after a server restart a
client resends its trace from that offset and nothing is lost or
double-ingested).

The WAL carries two record types, both JSON:

``{"t": "batch", "packets": [...]}``
    one accepted ingest batch, in the JSONL trace-record shape. Batches
    are logged **as batches**, not per packet, because replay must
    re-ingest with the exact same chunking: the engine's S(p)-budget
    validation judges each chunk against a running prefix-min t0
    reference, so different batching could validate differently and
    break bit-exact recovery.

``{"t": "flush"}``
    a flush boundary (client FLUSH, eviction, or shutdown drain),
    logged *before* the engine flush executes — write-ahead — so replay
    re-seals windows at the identical record boundary.

Recovery itself lives on
:meth:`repro.serve.session.SessionManager.recover_all`, which rebuilds
each stream from its newest valid snapshot plus the replayed WAL
suffix; this module supplies the pieces (decode, config signature,
errors) that both sides share.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.serve.durability import DurabilityConfig, stream_state_dir
from repro.serve.durability.snapshot import (
    prune_snapshots,
    snapshot_files,
    write_snapshot,
)
from repro.serve.durability.wal import WalCorruptionError, WalWriter, iter_wal

__all__ = [
    "RecoveryError",
    "SnapshotConfigMismatchError",
    "StreamDurability",
    "config_signature",
    "decode_wal_record",
    "iter_wal_batches",
]

BATCH_RECORD = "batch"
FLUSH_RECORD = "flush"


class RecoveryError(RuntimeError):
    """Crash recovery cannot proceed (the message names why)."""


class SnapshotConfigMismatchError(RecoveryError):
    """A snapshot was taken under a different reconstruction config.

    Restoring it would resume solving with constraints the snapshot's
    open windows were not built for; the operator must either restore
    the original config or clear the stream's state directory.
    """


def config_signature(config, lateness_ms: float) -> str:
    """Stable digest of everything that shapes a stream's results.

    Snapshots embed this; recovery refuses a snapshot whose signature
    differs from the serving config instead of silently mixing
    incompatible solver settings into half-restored state.
    """
    blob = json.dumps(
        {"config": asdict(config), "lateness_ms": repr(float(lateness_ms))},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def decode_wal_record(payload: bytes, index: int) -> dict:
    """One WAL payload back to its record dict (validating the shape)."""
    try:
        record = json.loads(payload)
    except ValueError as exc:
        raise WalCorruptionError(
            f"WAL record {index} is not valid JSON: {exc}"
        ) from exc
    kind = record.get("t") if isinstance(record, dict) else None
    if kind not in (BATCH_RECORD, FLUSH_RECORD):
        raise WalCorruptionError(
            f"WAL record {index} has unknown type {kind!r}"
        )
    return record


def iter_wal_batches(stream_dir, start_index: int = 0):
    """Yield ``(index, record_dict)`` for replay, decoded and validated."""
    for index, payload in iter_wal(stream_dir, start_index):
        yield index, decode_wal_record(payload, index)


class StreamDurability:
    """One stream's write-ahead log + snapshot cadence bookkeeping."""

    def __init__(
        self,
        config: DurabilityConfig,
        stream_id: str,
        config_sig: str,
    ) -> None:
        from repro.sim.io import packet_to_json

        self._packet_to_json = packet_to_json
        self.config = config
        self.stream_id = stream_id
        self.config_sig = config_sig
        self.stream_dir = stream_state_dir(config.wal_dir, stream_id)
        # Opening the writer validates the log and truncates a torn
        # tail; mid-log corruption raises here, before any serving.
        self.wal = WalWriter(
            self.stream_dir,
            fsync=config.fsync,
            fsync_interval_s=config.fsync_interval_s,
            segment_bytes=config.segment_bytes,
        )
        #: WAL cursor of the newest snapshot (cadence reference).
        self.last_snapshot_cursor = 0
        #: packets whose batch record is in the WAL — the resume offset
        #: clients read back as ``records_durable``.
        self.records_durable = 0

    @property
    def wal_cursor(self) -> int:
        """WAL records written so far (the next record's index)."""
        return self.wal.next_index

    # -- write-ahead logging (live path) --------------------------------

    def log_batch(self, packets) -> None:
        payload = json.dumps(
            {
                "t": BATCH_RECORD,
                "packets": [self._packet_to_json(p) for p in packets],
            },
            separators=(",", ":"),
        ).encode("utf-8")
        self.wal.append(payload)
        self.records_durable += len(packets)

    def log_flush(self) -> None:
        payload = json.dumps({"t": FLUSH_RECORD}).encode("utf-8")
        self.wal.append(payload)
        # A flush boundary is a promise about results clients may read
        # immediately after; make it durable regardless of fsync cadence
        # (the "never" policy opts out of fsync entirely, even here).
        if self.config.fsync != "never":
            self.wal.sync(force=True)

    # -- snapshots -------------------------------------------------------

    def due_for_snapshot(self) -> bool:
        interval = self.config.snapshot_interval
        return (
            interval > 0
            and self.wal_cursor - self.last_snapshot_cursor >= interval
        )

    def save_snapshot(self, document: dict) -> None:
        """Persist a snapshot at the current WAL cursor and prune.

        The WAL is fsynced first so the snapshot never claims to be
        current through records the kernel still holds in page cache;
        then older snapshot generations beyond ``keep_snapshots`` are
        dropped and WAL segments wholly before the *oldest retained*
        snapshot (still needed as its replay base) are deleted.
        """
        if self.config.fsync != "never":
            self.wal.sync(force=True)
        write_snapshot(self.stream_dir, document)
        self.last_snapshot_cursor = document["wal_cursor"]
        prune_snapshots(self.stream_dir, keep=self.config.keep_snapshots)
        kept = snapshot_files(self.stream_dir)
        if kept:
            self.wal.prune_through(kept[0][0])

    def close(self) -> None:
        self.wal.close()
