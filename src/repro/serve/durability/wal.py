"""Append-only per-stream write-ahead log with CRC-checked records.

Wire format — a WAL lives in one directory per stream and consists of
numbered segment files::

    wal-000000000000.seg        first record index 0
    wal-000000000137.seg        first record index 137
    ...

Each segment is a plain concatenation of records; each record is::

    +--------------+--------------+----------------+
    | length  (u32 | crc32   (u32 | payload        |
    |  big-endian) |  of payload) | (length bytes) |
    +--------------+--------------+----------------+

Records carry opaque payload bytes (the durability layer stores one JSON
document per record: an ingest batch or a flush marker). Writes are
append-only and a record is written in a single ``write`` call, so the
only states a SIGKILL can leave behind are "record fully present" or
"record cut short at the end of the last segment" — the **torn tail**.

Read-side contract (what recovery relies on):

* a short or cut-off record at the end of the *last* segment is a clean
  stop — :func:`iter_wal` simply ends there (the write never completed,
  so the record was never durable and its data is the sender's to
  resend);
* a CRC mismatch on a complete record, a cut-off record that is *not*
  at the tail, or a gap in the record numbering is **corruption** and
  raises :class:`WalCorruptionError` — replaying past silently lost or
  altered history would fabricate results, so the server must refuse to
  start and let the supervisor's circuit breaker surface the log path.

Write-side, :class:`WalWriter` truncates any torn tail when it reopens
an existing log (so new appends never land behind garbage), rotates to
a new segment once the current one exceeds ``segment_bytes``, and
offers three fsync policies: ``always`` (fsync every append — maximum
durability, slowest), ``interval`` (fsync when at least
``fsync_interval_s`` elapsed since the last one — bounded data loss),
and ``never`` (leave flushing to the OS — crash-safe against process
death like SIGKILL, but not against power loss).
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from pathlib import Path

from repro.serve.durability import crashpoints

__all__ = [
    "FSYNC_POLICIES",
    "WalCorruptionError",
    "WalWriter",
    "iter_wal",
    "wal_segments",
]

FSYNC_POLICIES = ("always", "interval", "never")

_HEADER = struct.Struct(">II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"

#: sanity cap on a single record; a length prefix above this is treated
#: as corruption rather than an instruction to wait for 4 GiB of tail.
MAX_RECORD_BYTES = 64 << 20


class WalCorruptionError(ValueError):
    """The log's *middle* is damaged (bad CRC, gap, mid-log tear)."""


def segment_name(first_index: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_index:012d}{_SEGMENT_SUFFIX}"


def wal_segments(stream_dir: str | Path) -> list[tuple[int, Path]]:
    """``(first_record_index, path)`` of every segment, in index order."""
    stream_dir = Path(stream_dir)
    segments = []
    if not stream_dir.is_dir():
        return segments
    for entry in stream_dir.iterdir():
        name = entry.name
        if not (
            name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        ):
            continue
        digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            first = int(digits)
        except ValueError:
            raise WalCorruptionError(
                f"unparseable WAL segment name {name!r} in {stream_dir}"
            ) from None
        segments.append((first, entry))
    segments.sort()
    return segments


def _scan_segment(raw: bytes, path: Path) -> tuple[list[bytes], int, str]:
    """Parse one segment: ``(payloads, valid_end_offset, tail_reason)``.

    ``tail_reason`` is empty when the segment ends exactly on a record
    boundary, else a description of the incomplete tail record (whose
    bytes start at ``valid_end_offset``). A complete record with a bad
    CRC raises :class:`WalCorruptionError` outright — that is damage,
    not an interrupted append.
    """
    payloads: list[bytes] = []
    offset = 0
    total = len(raw)
    while offset < total:
        if total - offset < _HEADER.size:
            return payloads, offset, (
                f"torn record header ({total - offset} of "
                f"{_HEADER.size} bytes) at offset {offset} of {path.name}"
            )
        length, crc = _HEADER.unpack_from(raw, offset)
        if length > MAX_RECORD_BYTES:
            raise WalCorruptionError(
                f"record at offset {offset} of {path} declares "
                f"{length} bytes (cap {MAX_RECORD_BYTES}); "
                f"the length prefix is corrupt"
            )
        body_start = offset + _HEADER.size
        if body_start + length > total:
            return payloads, offset, (
                f"torn record payload ({total - body_start} of {length} "
                f"bytes) at offset {offset} of {path.name}"
            )
        payload = raw[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError(
                f"CRC mismatch in record #{len(payloads)} at offset "
                f"{offset} of {path}: the log is damaged mid-history "
                f"and cannot be replayed truthfully"
            )
        payloads.append(payload)
        offset = body_start + length
    return payloads, offset, ""


def iter_wal(stream_dir: str | Path, start_index: int = 0):
    """Yield ``(record_index, payload)`` from ``start_index`` onward.

    Stops cleanly at a torn tail of the last segment; raises
    :class:`WalCorruptionError` on any damage before that point,
    including record-index gaps between segments.
    """
    segments = wal_segments(stream_dir)
    expected = None
    for position, (first, path) in enumerate(segments):
        last = position == len(segments) - 1
        if expected is not None and first != expected:
            raise WalCorruptionError(
                f"WAL segment {path.name} starts at record {first}, "
                f"expected {expected}: a segment is missing or renamed"
            )
        payloads, _, tail_reason = _scan_segment(path.read_bytes(), path)
        if tail_reason and not last:
            raise WalCorruptionError(
                f"{tail_reason} — but {path.name} is not the final "
                f"segment, so this is mid-log damage, not a torn tail"
            )
        for offset, payload in enumerate(payloads):
            index = first + offset
            if index >= start_index:
                yield index, payload
        expected = first + len(payloads)


class WalWriter:
    """Appender for one stream's WAL directory.

    Reopening an existing log truncates a torn tail (the incomplete
    record a crashed predecessor left behind) so the next append starts
    on a clean record boundary, and continues the record numbering where
    the valid history ends.
    """

    def __init__(
        self,
        stream_dir: str | Path,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.05,
        segment_bytes: int = 4 << 20,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy {fsync!r} not in {FSYNC_POLICIES}"
            )
        if fsync_interval_s < 0.0 or segment_bytes < 1:
            raise ValueError(
                "fsync_interval_s must be >= 0 and segment_bytes >= 1"
            )
        self.stream_dir = Path(stream_dir)
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self.segment_bytes = int(segment_bytes)
        self.records_truncated = 0
        self._last_sync = time.monotonic()
        self._file = None
        self._segment_size = 0
        self.stream_dir.mkdir(parents=True, exist_ok=True)
        self._next_index = self._recover_tail()

    # -- construction-time recovery ------------------------------------

    def _recover_tail(self) -> int:
        """Validate existing segments, truncate a torn tail, and return
        the next record index. Raises on mid-log corruption."""
        segments = wal_segments(self.stream_dir)
        expected = 0
        if not segments:
            return 0
        expected = None
        for position, (first, path) in enumerate(segments):
            last = position == len(segments) - 1
            if expected is not None and first != expected:
                raise WalCorruptionError(
                    f"WAL segment {path.name} starts at record {first}, "
                    f"expected {expected}: a segment is missing or renamed"
                )
            raw = path.read_bytes()
            payloads, valid_end, tail_reason = _scan_segment(raw, path)
            if tail_reason:
                if not last:
                    raise WalCorruptionError(
                        f"{tail_reason} — but {path.name} is not the "
                        f"final segment, so this is mid-log damage"
                    )
                # Clean tear: drop the incomplete record so appends
                # never land behind garbage bytes.
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                    handle.flush()
                    os.fsync(handle.fileno())
                self.records_truncated += 1
            expected = first + len(payloads)
            if last:
                self._open_segment(path, valid_end)
        return expected

    # -- segment management --------------------------------------------

    def _open_segment(self, path: Path, size: int) -> None:
        self._file = open(path, "ab")
        self._segment_size = size

    def _rotate(self) -> None:
        if self._file is not None:
            self.sync(force=self.fsync_policy != "never")
            self._file.close()
        path = self.stream_dir / segment_name(self._next_index)
        self._file = open(path, "ab")
        self._segment_size = 0
        if self.fsync_policy != "never":
            _fsync_dir(self.stream_dir)

    # -- appending ------------------------------------------------------

    @property
    def next_index(self) -> int:
        """Record index the next :meth:`append` will occupy."""
        return self._next_index

    def append(self, payload: bytes) -> int:
        """Append one record; returns its index. Durability follows the
        configured fsync policy (call :meth:`sync` to force)."""
        if self._file is None or self._segment_size >= self.segment_bytes:
            self._rotate()
        data = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        if crashpoints.fire("wal_torn"):
            # Crash-harness tear: persist half the record, then die the
            # hard way. Recovery must treat this record as never written.
            self._file.write(data[: max(1, len(data) // 2)])
            self._file.flush()
            os.fsync(self._file.fileno())
            crashpoints.die()
        crashpoints.maybe_crash("wal_append")
        self._file.write(data)
        # Always push to the kernel: process death (SIGKILL, crash) must
        # never lose an appended record to a userspace buffer. The fsync
        # policy only governs the page-cache-to-disk step below.
        self._file.flush()
        self._segment_size += len(data)
        index = self._next_index
        self._next_index += 1
        if self.fsync_policy == "always" or (
            self.fsync_policy == "interval"
            and time.monotonic() - self._last_sync >= self.fsync_interval_s
        ):
            self.sync(force=True)
        return index

    def sync(self, force: bool = True) -> None:
        """Flush Python and (unless ``force=False``) kernel buffers."""
        if self._file is None:
            return
        self._file.flush()
        if force:
            os.fsync(self._file.fileno())
            self._last_sync = time.monotonic()

    def prune_through(self, index: int) -> int:
        """Delete whole segments whose records all precede ``index``.

        Called after a snapshot at WAL cursor ``index``: anything before
        the cursor is re-creatable from the snapshot, so the disk
        footprint stays bounded by snapshot cadence, not stream length.
        Returns the number of segments removed.
        """
        segments = wal_segments(self.stream_dir)
        removed = 0
        for position, (first, path) in enumerate(segments):
            nxt = (
                segments[position + 1][0]
                if position + 1 < len(segments)
                else self._next_index
            )
            if nxt <= index and position + 1 < len(segments):
                path.unlink()
                removed += 1
        return removed

    def close(self) -> None:
        if self._file is not None:
            self.sync(force=self.fsync_policy != "never")
            self._file.close()
            self._file = None


def _fsync_dir(path: Path) -> None:
    """Persist directory metadata (new segment / renamed snapshot)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
