"""Seeded SIGKILL fault injection for the durability crash harness.

A *crash point* is a named call site inside the durability layer (WAL
append, engine ingest, snapshot rename, ...). The crash harness arms
points through the environment and the server process SIGKILLs *itself*
when an armed point's invocation counter hits its seed — a real crash,
not an exception: no ``finally`` blocks run, no buffers flush, no
graceful drain happens. Recovery has to cope with exactly what was on
disk at that instant.

Environment contract::

    DOMO_CRASHPOINTS      semicolon-separated groups, one per process
                          incarnation; each group is a comma-separated
                          list of ``name:n`` entries ("kill the process
                          at the n-th invocation of point ``name``").
    DOMO_CRASH_INCARNATION  which group applies to this process
                          (0-based; the supervisor increments it on
                          every restart so a crash seeded for the first
                          incarnation does not re-fire forever and turn
                          a seeded kill into a crash loop).

An incarnation beyond the group list (or an unset variable) disarms
everything, so production processes pay one dict lookup per point.
"""

from __future__ import annotations

import os
import signal
import time

__all__ = ["armed", "die", "fire", "maybe_crash", "reset"]

_spec: dict[str, int] | None = None
_counts: dict[str, int] = {}


def _parse_env() -> dict[str, int]:
    raw = os.environ.get("DOMO_CRASHPOINTS", "")
    if not raw.strip():
        return {}
    groups = raw.split(";")
    try:
        incarnation = int(os.environ.get("DOMO_CRASH_INCARNATION", "0"))
    except ValueError:
        incarnation = 0
    if incarnation < 0 or incarnation >= len(groups):
        return {}
    spec: dict[str, int] = {}
    for entry in groups[incarnation].split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count = entry.partition(":")
        try:
            spec[name.strip()] = max(1, int(count))
        except ValueError:
            raise ValueError(
                f"malformed DOMO_CRASHPOINTS entry {entry!r} "
                f"(expected 'name:n')"
            ) from None
    return spec


def _load() -> dict[str, int]:
    global _spec
    if _spec is None:
        _spec = _parse_env()
    return _spec


def reset() -> None:
    """Re-read the environment and zero the counters (tests only)."""
    global _spec
    _spec = None
    _counts.clear()


def armed(name: str) -> bool:
    """Whether ``name`` is armed for this process incarnation."""
    return name in _load()


def fire(name: str) -> bool:
    """Count one invocation of ``name``; True when this one is the seed.

    The caller decides what "crashing here" means — :func:`maybe_crash`
    just dies, while the WAL's torn-tail point writes half a record
    first so the on-disk state is a genuine mid-append tear.
    """
    target = _load().get(name)
    if target is None:
        return False
    _counts[name] = _counts.get(name, 0) + 1
    return _counts[name] == target


def die() -> None:
    """SIGKILL this process. Never returns."""
    os.kill(os.getpid(), signal.SIGKILL)
    while True:  # pragma: no cover - the signal always wins
        time.sleep(1.0)


def maybe_crash(name: str) -> None:
    """SIGKILL the process when this is the seeded invocation of ``name``."""
    if fire(name):
        die()
