"""Durability layer for the serve tier: WAL, snapshots, supervision.

The contract, end to end:

1. every accepted ingest batch (and every flush boundary) is appended
   to a per-stream write-ahead log *before* it touches the engine
   (:mod:`repro.serve.durability.wal`);
2. periodically the quiesced engine + session state is snapshotted
   atomically with the WAL cursor it is current through
   (:mod:`repro.serve.durability.snapshot`);
3. after a crash, recovery loads the newest valid snapshot and replays
   the WAL suffix with identical batching and flush boundaries,
   reproducing the pre-crash results bit-exactly
   (:mod:`repro.serve.durability.recovery`);
4. a parent-process supervisor restarts the server on crash with
   exponential backoff and a crash-loop circuit breaker
   (:mod:`repro.serve.durability.supervisor`);
5. the whole stack is tested by SIGKILLing real server processes at
   seeded fault points (:mod:`repro.serve.durability.crashpoints`,
   driven by ``tests/serve/crash_harness.py``).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from pathlib import Path

from repro.serve.durability.snapshot import (
    SNAPSHOT_SCHEMA,
    load_latest_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.serve.durability.wal import (
    FSYNC_POLICIES,
    WalCorruptionError,
    WalWriter,
    iter_wal,
)

__all__ = [
    "FSYNC_POLICIES",
    "SNAPSHOT_SCHEMA",
    "DurabilityConfig",
    "WalCorruptionError",
    "WalWriter",
    "iter_wal",
    "load_latest_snapshot",
    "prune_snapshots",
    "stream_state_dir",
    "write_snapshot",
]


@dataclass(frozen=True)
class DurabilityConfig:
    """Operator-facing knobs for the serve tier's durability layer."""

    #: root directory holding one state subdirectory per stream.
    wal_dir: Path
    #: WAL fsync policy: "always", "interval" or "never".
    fsync: str = "interval"
    #: minimum seconds between fsyncs under the "interval" policy.
    fsync_interval_s: float = 0.05
    #: rotate WAL segments once they exceed this many bytes.
    segment_bytes: int = 4 << 20
    #: snapshot every N WAL records (0 disables periodic snapshots;
    #: one is still taken at graceful drain).
    snapshot_interval: int = 256
    #: snapshot generations retained per stream.
    keep_snapshots: int = 2

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy {self.fsync!r} not in {FSYNC_POLICIES}"
            )
        if self.snapshot_interval < 0:
            raise ValueError("snapshot_interval must be >= 0")
        if self.keep_snapshots < 1:
            raise ValueError("keep_snapshots must be >= 1")
        object.__setattr__(self, "wal_dir", Path(self.wal_dir))


def stream_state_dir(wal_dir: str | Path, stream_id: str) -> Path:
    """Filesystem directory holding one stream's WAL + snapshots.

    Stream ids are client-chosen strings; percent-encoding (with no
    safe characters) makes any id a single flat path component, so
    ``../`` or ``/`` in an id cannot escape the WAL root.
    """
    return Path(wal_dir) / urllib.parse.quote(stream_id, safe="")
