"""Per-stream sessions and the manager that demultiplexes onto them.

A **session** is one stream id's reconstruction state: a
:class:`~repro.stream.engine.StreamingReconstructor` wired to the shared
solver pool, a private :class:`~repro.obs.registry.MetricsRegistry`
(installed around every engine call so per-stream counters stay
per-stream even though calls run on changing worker threads), and the
serialized rows of every committed window so RESULTS can be answered
long after the windows were evicted from the engine.

The **manager** maps stream ids to sessions, enforces the
``max_sessions`` admission limit (counting *active* sessions — drained
ones keep answering queries but no longer occupy a slot), and tracks
which connections feed each stream so the last disconnect triggers
eviction: flush the engine, commit everything, release the solver lane,
keep the results queryable.

Everything here is synchronous and asyncio-free: the server calls in
from ``asyncio.to_thread`` workers (serialized per session by an
asyncio lock on its side), and unit tests drive sessions directly.

With a :class:`~repro.serve.durability.DurabilityConfig`, every session
write-ahead-logs its ingest batches and flush boundaries, snapshots its
quiesced state on a record cadence, and :meth:`SessionManager
.recover_all` rebuilds every stream after a crash from snapshot +
WAL-suffix replay — reproducing the pre-crash committed results
bit-exactly (see :mod:`repro.serve.durability`).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import urllib.parse
from dataclasses import replace

from repro.core.pipeline import DomoConfig
from repro.obs.registry import MetricsRegistry, registry_scope
from repro.obs.spans import span
from repro.serve.durability import (
    DurabilityConfig,
    load_latest_snapshot,
    stream_state_dir,
)
from repro.serve.durability import crashpoints
from repro.serve.durability.recovery import (
    BATCH_RECORD,
    RecoveryError,
    SnapshotConfigMismatchError,
    StreamDurability,
    config_signature,
    iter_wal_batches,
)
from repro.serve.durability.snapshot import SNAPSHOT_SCHEMA
from repro.serve.pool import SharedSolverPool
from repro.serve.protocol import committed_window_to_json
from repro.stream.engine import StreamingReconstructor

__all__ = [
    "BackendMismatchError",
    "SessionLimitError",
    "SessionManager",
    "StreamSession",
]

#: per-stream metadata persisted next to the WAL so a crash *before the
#: first snapshot* still recovers the stream under its chosen backend.
BACKEND_META_FILE = "backend.json"


class SessionLimitError(RuntimeError):
    """Admission control refused to create another session."""


class BackendMismatchError(ValueError):
    """A record asked a live stream to switch estimator backends."""


class StreamSession:
    """One stream's engine, metrics scope, and committed-result log."""

    def __init__(
        self,
        stream_id: str,
        config: DomoConfig,
        lateness_ms: float,
        pool: SharedSolverPool,
        durability: StreamDurability | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.registry = MetricsRegistry()
        #: the stream's *effective* config (the manager folds a
        #: per-stream backend choice in before constructing the session).
        self.config = config
        self.backend = config.backend
        self._pool = pool
        self._executor = pool.session(stream_id, spec=config.solve_spec())
        self._durability = durability
        self.engine = StreamingReconstructor(
            config, lateness_ms=lateness_ms, executor=self._executor
        )
        #: serialized RESULTS rows of every committed window, in commit
        #: (== solve-index) order; survives engine eviction and drain.
        self.results: list[dict] = []
        #: records accepted into the engine (ingest calls may batch).
        self.records_in = 0
        self.drained = False
        #: first engine failure (ingest or flush raising), if any; a
        #: failed session keeps its committed results queryable but
        #: accepts no further records.
        self.failed: str | None = None
        #: connections currently feeding this stream.
        self._owners: set[int] = set()

    # -- engine calls (always under the session registry) ---------------

    def ingest(self, packets) -> None:
        """Feed one batch of records; collect any windows that committed.

        With durability, the batch is appended to the WAL *before* it
        touches the engine — an accepted record is a durable record —
        and a snapshot is taken when the configured cadence is due.
        """
        packets = list(packets)
        if self._durability is not None and self.failed is None:
            self._durability.log_batch(packets)
            crashpoints.maybe_crash("ingest")
        self._ingest(packets)
        if self._durability is not None and self._durability.due_for_snapshot():
            self.snapshot()

    def _ingest(self, packets) -> None:
        """Engine-side half of ingest (shared by the live path and
        recovery replay, which must not re-log what it reads back)."""
        with registry_scope(self.registry):
            with span("session"):
                self.engine.ingest(packets)
                committed = self.engine.poll()
        self.records_in += len(packets)
        self._absorb(committed)

    def flush(self) -> int:
        """Seal/solve/commit everything buffered; new committed count.

        The flush boundary is WAL-logged *before* the engine flush runs
        (write-ahead), so a crash mid-solve replays the flush at the
        identical record boundary and commits the same windows.
        """
        if self._durability is not None and self.failed is None:
            self._durability.log_flush()
            crashpoints.maybe_crash("solve")
        return self._flush()

    def _flush(self) -> int:
        with registry_scope(self.registry):
            with span("session"):
                committed = self.engine.flush()
        self._absorb(committed)
        return len(committed)

    def snapshot(self) -> bool:
        """Quiesce the engine and persist a recovery snapshot.

        Skipped (returns False) without durability or on a failed
        session — a failed engine's state is not trustworthy, and its
        WAL alone reproduces the failure deterministically.
        """
        if self._durability is None or self.failed is not None:
            return False
        with registry_scope(self.registry):
            with span("snapshot"):
                self.engine.quiesce()
                committed = self.engine.poll()
        self._absorb(committed)
        document = {
            "schema": SNAPSHOT_SCHEMA,
            "stream": self.stream_id,
            "wal_cursor": self._durability.wal_cursor,
            "records_durable": self._durability.records_durable,
            "config_sig": self._durability.config_sig,
            "backend": self.backend,
            "session": {
                "results": self.results,
                "records_in": self.records_in,
                "failed": self.failed,
                "drained": self.drained,
            },
            "engine": self.engine.export_state(),
        }
        self._durability.save_snapshot(document)
        return True

    def export_document(self, config_sig: str) -> dict:
        """Quiesce and capture this stream's full state for migration.

        Unlike :meth:`snapshot` this is a *handoff*, not a checkpoint:
        the caller is expected to retire this session afterwards and
        import the document elsewhere. Open windows stay open (quiesce
        only drains in-flight solves — no seals are forced), so the
        importing shard commits exactly the windows this one would
        have. A failed session refuses to export: its state is not
        trustworthy and migrating it would launder the failure.
        """
        if self.failed is not None:
            raise RuntimeError(
                f"stream {self.stream_id!r} failed ({self.failed}); "
                f"refusing to export unreliable state"
            )
        if not self.drained:
            with registry_scope(self.registry):
                with span("export"):
                    self.engine.quiesce()
                    committed = self.engine.poll()
            self._absorb(committed)
        return {
            "schema": SNAPSHOT_SCHEMA,
            "stream": self.stream_id,
            "wal_cursor": (
                self._durability.wal_cursor
                if self._durability is not None
                else 0
            ),
            "records_durable": self.records_durable,
            "config_sig": config_sig,
            "backend": self.backend,
            "session": {
                "results": self.results,
                "records_in": self.records_in,
                "failed": self.failed,
                "drained": self.drained,
            },
            "engine": self.engine.export_state(),
        }

    def drain(self) -> None:
        """Final flush + release of the solver lane (results kept).

        A broken engine (e.g. after a strict-validation rejection mid-
        ingest) must not wedge the drain: the failure is recorded and
        the session still ends up ``drained`` so eviction and shutdown
        complete; the pool sweeps any leftover lane residue at close.
        With durability, the drained state is snapshotted and the WAL
        closed, so a later restart restores the stream as a queryable,
        already-drained session without replaying anything.
        """
        if self.drained:
            return
        try:
            self.flush()
        except Exception as exc:  # noqa: BLE001 - record, keep draining
            self.mark_failed(f"{type(exc).__name__}: {exc}")
        self.engine.close()  # no-op on the injected executor, by design
        try:
            self._pool.release(self.stream_id)
        except RuntimeError:
            if self.failed is None:
                raise
        self.drained = True
        if self._durability is not None:
            try:
                self.snapshot()
            except Exception as exc:  # noqa: BLE001 - a failed final
                # snapshot must not wedge shutdown; the WAL still
                # recovers this stream, just with a longer replay.
                self.mark_failed(f"{type(exc).__name__}: {exc}")
            self._durability.close()

    def mark_failed(self, reason: str) -> None:
        """Record the first engine failure (later ones keep the first)."""
        if self.failed is None:
            self.failed = reason

    def _absorb(self, committed) -> None:
        for cw in committed:
            self.results.append(committed_window_to_json(cw))

    # -- ownership (which connections feed this stream) ------------------

    def add_owner(self, connection_id: int) -> None:
        self._owners.add(connection_id)

    def remove_owner(self, connection_id: int) -> bool:
        """Detach a connection; True when this was the last owner."""
        self._owners.discard(connection_id)
        return not self._owners

    @property
    def num_owners(self) -> int:
        return len(self._owners)

    # -- queries ---------------------------------------------------------

    @property
    def records_durable(self) -> int:
        """Records safely in the WAL — the client's resume offset.

        Without durability this degrades to the engine-accepted count,
        so the RESULTS field is always present and monotone.
        """
        if self._durability is not None:
            return self._durability.records_durable
        return self.records_in

    def results_since(self, since: int = -1) -> list[dict]:
        """Committed rows with ``solve_index > since`` (all by default)."""
        return [row for row in self.results if row["solve_index"] > since]

    def stats(self) -> dict:
        # Deliberately reads only scalar engine state (no
        # ``engine.stats()``): STATS runs on the event loop while the
        # session's pump thread may be mid-ingest, and scalar reads are
        # safe where iterating the engine's dicts would not be.
        return {
            "backend": self.backend,
            "records_in": self.records_in,
            "records_durable": self.records_durable,
            "windows_committed": len(self.results),
            "backlog": self.engine.backlog,
            "resident_packets": self.engine.resident_packets,
            "quarantined": self.engine.report.num_quarantined,
            "drained": self.drained,
            "failed": self.failed,
            "owners": self.num_owners,
        }


class SessionManager:
    """Stream-id -> session map with admission control and eviction."""

    def __init__(
        self,
        config: DomoConfig | None = None,
        lateness_ms: float = float("inf"),
        max_sessions: int = 64,
        pool: SharedSolverPool | None = None,
        durability: DurabilityConfig | None = None,
        adoption_grace_s: float = 0.25,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if adoption_grace_s < 0.0:
            raise ValueError(
                f"adoption_grace_s must be >= 0, got {adoption_grace_s}"
            )
        self.config = config or DomoConfig()
        self.lateness_ms = lateness_ms
        self.max_sessions = max_sessions
        self.durability = durability
        #: how long an orphaned stream waits for adoption before its
        #: eviction flush becomes the point of no return (the server
        #: reads this; crash tests shrink it to make evictions prompt).
        self.adoption_grace_s = float(adoption_grace_s)
        self._config_sig = config_signature(self.config, lateness_ms)
        self.pool = pool or SharedSolverPool(
            self.config.solve_spec(),
            parallel=self.config.parallel,
            max_workers=self.config.max_workers,
        )
        self._lock = threading.Lock()
        self._sessions: dict[str, StreamSession] = {}
        self.sessions_rejected = 0
        self.sessions_evicted = 0
        self.sessions_exported = 0
        self.sessions_imported = 0

    # -- lookup / admission ----------------------------------------------

    def _active_locked(self) -> int:
        """Active-session count; caller must hold :attr:`_lock`."""
        return sum(1 for s in self._sessions.values() if not s.drained)

    @property
    def active_sessions(self) -> int:
        with self._lock:
            return self._active_locked()

    def get(self, stream_id: str) -> StreamSession | None:
        return self._sessions.get(stream_id)

    def _effective_config(self, backend: str | None) -> DomoConfig:
        """The per-stream config a backend choice implies.

        ``None`` (no choice on the wire) and the server's own backend
        both collapse to the shared default config object, so default
        streams stay byte-identical to the pre-backend server.
        """
        if backend is None or backend == self.config.backend:
            return self.config
        # replace() re-runs DomoConfig validation, so an unknown backend
        # name raises ValueError here — the server turns that into an
        # async error line instead of opening the stream.
        return replace(self.config, backend=backend)

    def _sig_for(self, config: DomoConfig) -> str:
        return config_signature(config, self.lateness_ms)

    def get_or_create(
        self, stream_id: str, backend: str | None = None
    ) -> StreamSession:
        """The stream's session, admitting a new one if allowed.

        ``backend`` is the record's estimator-backend choice: honored
        when it opens the stream, a no-op when it matches the live
        session, and a :class:`BackendMismatchError` when it conflicts
        with one. Raises :class:`SessionLimitError` when
        ``max_sessions`` *active* sessions already exist — drained
        sessions stay queryable but do not hold an admission slot.
        """
        with self._lock:
            session = self._sessions.get(stream_id)
            if session is not None:
                if backend is not None and session.backend != backend:
                    raise BackendMismatchError(
                        f"stream {stream_id!r} is running backend "
                        f"{session.backend!r}; cannot switch to "
                        f"{backend!r} on a live stream"
                    )
                return session
            if self._active_locked() >= self.max_sessions:
                self.sessions_rejected += 1
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions} active); "
                    f"stream {stream_id!r} refused"
                )
            config = self._effective_config(backend)
            durability = self._durability_for(
                stream_id, self._sig_for(config)
            )
            self._write_backend_meta(durability, config.backend)
            session = StreamSession(
                stream_id,
                config,
                self.lateness_ms,
                self.pool,
                durability=durability,
            )
            self._sessions[stream_id] = session
            return session

    def _durability_for(
        self, stream_id: str, config_sig: str | None = None
    ) -> StreamDurability | None:
        if self.durability is None:
            return None
        return StreamDurability(
            self.durability,
            stream_id,
            config_sig=config_sig if config_sig is not None
            else self._config_sig,
        )

    @staticmethod
    def _write_backend_meta(
        durability: StreamDurability | None, backend: str
    ) -> None:
        """Persist the stream's backend choice next to its WAL.

        Written at session creation (before any snapshot exists), so a
        crash at any point recovers the stream under the backend it was
        opened with. The write is atomic (tmp + rename) — a torn meta
        file must not take recovery down.
        """
        if durability is None:
            return
        path = durability.stream_dir / BACKEND_META_FILE
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({"backend": backend}))
        os.replace(tmp, path)

    @staticmethod
    def _read_backend_meta(stream_dir) -> str | None:
        """The backend a stream directory was opened with (None = default
        or pre-backend layout; unreadable files degrade to None too)."""
        path = stream_dir / BACKEND_META_FILE
        try:
            return json.loads(path.read_text())["backend"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- crash recovery ----------------------------------------------------

    def recover_all(self) -> dict:
        """Rebuild every stream found under the WAL root; per-stream
        summary keyed by stream id.

        Called once at server startup, before listeners come up, so
        recovered sessions exist before any client can reach them.
        Recovered streams bypass the admission cap (refusing to recover
        durable state because of a limit meant for *new* streams would
        turn a restart into data loss). WAL corruption and snapshot
        config mismatches raise — a server must not come up pretending
        to have state it cannot truthfully rebuild; the supervisor's
        circuit breaker surfaces the named error after repeated failures.
        """
        summary: dict[str, dict] = {}
        if self.durability is None:
            return summary
        root = self.durability.wal_dir
        if not root.is_dir():
            return summary
        for entry in sorted(root.iterdir()):
            if not entry.is_dir():
                continue
            stream_id = urllib.parse.unquote(entry.name)
            with self._lock:
                if stream_id in self._sessions:
                    continue
                summary[stream_id] = self._recover_stream(stream_id)
        return summary

    def _recover_stream(self, stream_id: str) -> dict:
        """Rebuild one stream: newest valid snapshot + WAL-suffix replay.

        Engine-level replay failures (e.g. a strict-validation rejection
        that also failed the live run) are contained exactly like the
        live pump contains them — the session is marked failed, its
        committed results stay queryable — while WAL corruption stays
        fatal (raised from the writer's open or the replay iterator).
        """
        state_dir = stream_state_dir(self.durability.wal_dir, stream_id)
        config = self._effective_config(self._read_backend_meta(state_dir))
        config_sig = self._sig_for(config)
        durability = StreamDurability(
            self.durability, stream_id, config_sig=config_sig
        )
        snapshot = load_latest_snapshot(durability.stream_dir)
        cursor = 0
        if snapshot is not None:
            if snapshot.get("config_sig") != config_sig:
                raise SnapshotConfigMismatchError(
                    f"stream {stream_id!r}: snapshot at WAL cursor "
                    f"{snapshot.get('wal_cursor')} was taken under config "
                    f"signature {snapshot.get('config_sig')!r}, server is "
                    f"running {config_sig!r}; restore the original "
                    f"config or clear {durability.stream_dir}"
                )
            cursor = snapshot["wal_cursor"]
        session = StreamSession(
            stream_id,
            config,
            self.lateness_ms,
            self.pool,
            durability=durability,
        )
        if snapshot is not None:
            session.engine = StreamingReconstructor.from_state(
                snapshot["engine"],
                config,
                lateness_ms=self.lateness_ms,
                executor=session._executor,
            )
            session.results = list(snapshot["session"]["results"])
            session.records_in = snapshot["session"]["records_in"]
            session.failed = snapshot["session"]["failed"]
            durability.records_durable = snapshot["records_durable"]
            durability.last_snapshot_cursor = cursor
        replayed_records = 0
        replayed_packets = 0
        from repro.sim.io import packet_from_json

        for index, record in iter_wal_batches(durability.stream_dir, cursor):
            replayed_records += 1
            if record["t"] == BATCH_RECORD:
                packets = [
                    packet_from_json(item, index)
                    for item in record["packets"]
                ]
                durability.records_durable += len(packets)
                replayed_packets += len(packets)
                if session.failed is None:
                    try:
                        session._ingest(packets)
                    except Exception as exc:  # noqa: BLE001 - contained
                        session.mark_failed(f"{type(exc).__name__}: {exc}")
            else:
                if session.failed is None:
                    try:
                        session._flush()
                    except Exception as exc:  # noqa: BLE001 - contained
                        session.mark_failed(f"{type(exc).__name__}: {exc}")
        if snapshot is not None and snapshot["session"].get("drained"):
            # The stream finished its life before the crash: restore it
            # as the queryable, lane-free shell it was.
            session.drained = True
            session.engine.close()
            try:
                self.pool.release(stream_id)
            except RuntimeError:
                pass
            durability.close()
        self._sessions[stream_id] = session
        return {
            "snapshot_cursor": cursor if snapshot is not None else None,
            "wal_records_replayed": replayed_records,
            "packets_replayed": replayed_packets,
            "records_durable": durability.records_durable,
            "windows_committed": len(session.results),
            "torn_records_truncated": durability.wal.records_truncated,
            "drained": session.drained,
            "failed": session.failed,
        }

    # -- migration (quiesce-export-import) ---------------------------------

    def export_stream(self, stream_id: str) -> dict:
        """Hand one stream's full state over and retire it here.

        The returned document (same shape as a recovery snapshot) is
        what :meth:`import_stream` on another shard adopts. After a
        successful export this manager forgets the stream entirely —
        lane released, WAL closed and its state directory deleted (the
        WAL handoff: durability responsibility moves with the stream).
        """
        with self._lock:
            session = self._sessions.get(stream_id)
        if session is None:
            raise KeyError(f"unknown stream {stream_id!r}")
        document = session.export_document(self._sig_for(session.config))
        self._retire(session)
        self.sessions_exported += 1
        return document

    def _retire(self, session: StreamSession) -> None:
        """Drop an exported session: lane, WAL dir, and the map entry."""
        if not session.drained:
            session.drained = True
            session.engine.close()
            try:
                self.pool.release(session.stream_id)
            except RuntimeError:
                pass  # lane already swept (e.g. drained concurrently)
        durability = session._durability
        if durability is not None:
            durability.close()
            shutil.rmtree(durability.stream_dir, ignore_errors=True)
        with self._lock:
            self._sessions.pop(session.stream_id, None)

    def import_stream(self, stream_id: str, document: dict) -> StreamSession:
        """Adopt a stream exported by another shard.

        Rebuilds the engine bit-exactly from the document's state codec,
        continues ``records_durable`` where the exporter left off, and —
        with durability — anchors a fresh WAL with an adoption snapshot
        so a crash right after the import still recovers the stream.
        Stale state from a previous life of this stream on this shard is
        superseded (deleted) by the imported document.
        """
        if document.get("schema") != SNAPSHOT_SCHEMA:
            raise RecoveryError(
                f"import of stream {stream_id!r}: document schema "
                f"{document.get('schema')!r} != {SNAPSHOT_SCHEMA!r}"
            )
        config = self._effective_config(document.get("backend"))
        config_sig = self._sig_for(config)
        if document.get("config_sig") != config_sig:
            raise SnapshotConfigMismatchError(
                f"import of stream {stream_id!r}: exported under config "
                f"signature {document.get('config_sig')!r}, this server "
                f"is running {config_sig!r}"
            )
        with self._lock:
            existing = self._sessions.get(stream_id)
            if existing is not None and not existing.drained:
                raise RuntimeError(
                    f"stream {stream_id!r} is already live here; "
                    f"refusing to overwrite it with an import"
                )
        durability = None
        if self.durability is not None:
            state_dir = stream_state_dir(self.durability.wal_dir, stream_id)
            if state_dir.exists():
                shutil.rmtree(state_dir)
            durability = StreamDurability(
                self.durability, stream_id, config_sig=config_sig
            )
            self._write_backend_meta(durability, config.backend)
        session = StreamSession(
            stream_id,
            config,
            self.lateness_ms,
            self.pool,
            durability=durability,
        )
        session.engine = StreamingReconstructor.from_state(
            document["engine"],
            config,
            lateness_ms=self.lateness_ms,
            executor=session._executor,
        )
        session.results = list(document["session"]["results"])
        session.records_in = document["session"]["records_in"]
        session.failed = document["session"]["failed"]
        if durability is not None:
            durability.records_durable = document["records_durable"]
            anchor = dict(document)
            anchor["wal_cursor"] = durability.wal_cursor
            durability.save_snapshot(anchor)
        if document["session"].get("drained"):
            session.drained = True
            session.engine.close()
            try:
                self.pool.release(stream_id)
            except RuntimeError:
                pass
            if durability is not None:
                durability.close()
        with self._lock:
            self._sessions[stream_id] = session
        self.sessions_imported += 1
        return session

    # -- eviction ----------------------------------------------------------

    def disconnect(self, connection_id: int) -> list[StreamSession]:
        """Detach a closed connection everywhere; return sessions whose
        last feeder just left (the server drains them off-loop)."""
        orphaned = []
        with self._lock:
            for session in self._sessions.values():
                if session.drained:
                    continue
                had = connection_id in session._owners
                if had and session.remove_owner(connection_id):
                    orphaned.append(session)
        return orphaned

    def evict(self, session: StreamSession) -> None:
        """Drain one orphaned session (flush, release lane, keep results)."""
        if not session.drained:
            session.drain()
            self.sessions_evicted += 1

    def drain_all(self) -> int:
        """Flush every active session (shutdown path); windows committed."""
        committed = 0
        for session in list(self._sessions.values()):
            if not session.drained:
                before = len(session.results)
                session.drain()
                committed += len(session.results) - before
        return committed

    # -- aggregate views ---------------------------------------------------

    def merged_registry(self) -> MetricsRegistry:
        """All session registries + the pool registry, merged."""
        merged = MetricsRegistry()
        for session in self._sessions.values():
            merged.merge(session.registry.snapshot())
        merged.merge(self.pool.registry.snapshot())
        return merged

    def stats(self) -> dict:
        # One locked snapshot of the session map, then lock-free scalar
        # reads: stats() must be safe to call from any thread (a router
        # health poller, tests) while sessions are being admitted,
        # imported, or exported concurrently.
        with self._lock:
            sessions = sorted(self._sessions.items())
            active = self._active_locked()
        streams = {
            stream_id: session.stats() for stream_id, session in sessions
        }
        return {
            "sessions": len(streams),
            "active_sessions": active,
            "max_sessions": self.max_sessions,
            "sessions_rejected": self.sessions_rejected,
            "sessions_evicted": self.sessions_evicted,
            "sessions_exported": self.sessions_exported,
            "sessions_imported": self.sessions_imported,
            "pool": self.pool.stats(),
            "streams": streams,
        }

    def close(self) -> None:
        self.drain_all()
        self.pool.close()
